//! The TCP service: readiness-driven reactor (or classic thread-per-
//! connection accept loop), bounded worker pool, graceful shutdown.
//!
//! Architecture (std networking only):
//!
//! ```text
//!  clients ──TCP──▶ reactor (poll) ──try_send──▶ bounded job queue
//!                        ▲                             │
//!                        └── per-conn outbox ◀── worker pool (N threads)
//!                                                      │
//!                                             RwLock<ServerState>
//!                                              (ShardedPipeline, dedup)
//! ```
//!
//! On Linux a single reactor thread ([`crate::reactor`]) owns every
//! request/reply connection: it polls readiness, parses newline-delimited
//! JSON (protocol ≤6) or `rl-wire` binary frames (protocol v7, after a
//! [`Request::Upgrade`] handshake), and enqueues jobs; workers deliver
//! responses into a per-connection outbox that the reactor drains. Idle
//! connections therefore cost no threads, and a binary connection may
//! have many requests in flight at once (pipelining, correlated by
//! request id). Streaming verbs (`FetchCheckpoint`, `Subscribe`,
//! `SubscribeMatches`) detach the connection to a dedicated blocking
//! thread. Elsewhere (and with [`ServerConfig::reactor`] off) every
//! connection gets its own thread, as before.
//!
//! When the bounded queue is full the request is rejected immediately
//! with a typed [`ErrorCode::Backpressure`] error rather than blocking
//! the socket. Workers execute jobs against the shared state — probes
//! under a read lock (concurrent), index/stream under a write lock.
//! `Shutdown` stops the accept loop, finishes in-flight requests, drains
//! the queue, and joins the workers.

use crate::metrics::{ReqType, ServerMetrics};
use crate::protocol::{
    wire, ErrorCode, ReplStatusReply, Reply, Request, RequestError, Response, ShardMapReply,
    StatsReply, PROTOCOL_VERSION,
};
use crate::repl::{ApplyError, ReplRole, ReplState};
use crate::snapshot::{Snapshot, SnapshotError};
use crate::subs::SubHub;
use cbv_hb::dedup::UnionFind;
use cbv_hb::sharded::{ReshardDriver, ShardedPipeline};
use cbv_hb::Record;
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use parking_lot::{Mutex, RwLock};
use rl_reshard::ReshardOp;
use rl_store::{Checkpoint, Store, StoreOptions, SyncPolicy, WalOp};
use rl_wire::FrameReader;
use std::io::{BufRead, BufReader, Cursor, ErrorKind, Read, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Durable-mode configuration: where the data directory lives and how
/// aggressively it is synced and checkpointed.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding the checkpoint and WAL segments (created if
    /// missing). One server per directory.
    pub data_dir: PathBuf,
    /// fsync cadence for WAL appends (see [`SyncPolicy`]).
    pub sync: SyncPolicy,
    /// Background checkpoint cadence. `None` disables the checkpointer
    /// (the WAL grows until a restart replays it).
    pub checkpoint_every: Option<Duration>,
}

impl DurabilityConfig {
    /// Durability at `data_dir` with the safe defaults: fsync every
    /// append, checkpoint every 60 seconds.
    pub fn new(data_dir: impl Into<PathBuf>) -> Self {
        Self {
            data_dir: data_dir.into(),
            sync: SyncPolicy::Always,
            checkpoint_every: Some(Duration::from_secs(60)),
        }
    }
}

/// Tuning knobs for [`Server::spawn`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (use port 0 for an ephemeral port).
    pub addr: String,
    /// Worker threads executing requests.
    pub workers: usize,
    /// Bounded job-queue capacity; beyond it requests are rejected with
    /// [`ErrorCode::Backpressure`].
    pub queue_capacity: usize,
    /// Where `Snapshot` requests persist the index by default, and where
    /// the server snapshots once more during shutdown.
    pub snapshot_path: Option<PathBuf>,
    /// Requests slower end-to-end (queue wait + execution) than this are
    /// logged with their latency split and counted in
    /// `rl_slow_requests_total`. `None` disables slow-request logging.
    pub slow_request_threshold: Option<Duration>,
    /// When set, the server runs durably: every mutation is write-ahead
    /// logged before the reply, and startup recovers from the data
    /// directory (only honored via [`Server::spawn_durable`]).
    pub durability: Option<DurabilityConfig>,
    /// The node's replication role. Anything but
    /// [`ReplRole::Standalone`] requires durability (the WAL is what gets
    /// shipped). See `docs/REPLICATION.md`.
    pub repl_role: ReplRole,
    /// Most `SubscribeMatches` streams served at once (protocol v6); the
    /// next subscribe is rejected with [`ErrorCode::Unavailable`]. Each
    /// subscription costs a connection thread, a compiled blocking plan,
    /// and a bounded event queue.
    pub max_subscriptions: usize,
    /// Serve request/reply connections from the readiness-driven reactor
    /// (protocol v7; Linux only, silently falls back to thread-per-
    /// connection elsewhere). Off forces the classic blocking loop, which
    /// still negotiates the binary protocol but serves one request at a
    /// time per connection.
    pub reactor: bool,
    /// Lease duration granted to followers on every subscription
    /// heartbeat (protocol v8), in milliseconds. A follower running with
    /// `--auto-failover` elects a new primary once a granted lease
    /// expires without stream progress. 0 disables lease grants.
    pub lease_ms: u64,
    /// Hold each mutation reply until this many followers confirm the
    /// frame durable (protocol v8 quorum acks). 0 replies after local
    /// durability only (the pre-v8 behaviour).
    pub sync_replicas: usize,
    /// Bounded wait for the quorum acks before a typed
    /// [`ErrorCode::QuorumTimeout`] reply (the mutation is still durable
    /// locally).
    pub quorum_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_capacity: 64,
            snapshot_path: None,
            slow_request_threshold: Some(Duration::from_secs(1)),
            durability: None,
            repl_role: ReplRole::Standalone,
            max_subscriptions: 64,
            reactor: true,
            lease_ms: 0,
            sync_replicas: 0,
            quorum_timeout: Duration::from_secs(2),
        }
    }
}

/// Everything a request can touch, behind one lock.
pub(crate) struct ServerState {
    pipeline: ShardedPipeline,
    /// Union-find over stream-matched record ids (the dedup view).
    dedup: UnionFind,
    /// Pairs feeding `dedup`, kept for snapshots.
    stream_pairs: Vec<(u64, u64)>,
    streamed: u64,
}

/// A unit of work: the parsed request plus where to send the response.
pub(crate) struct Job {
    pub(crate) request: Request,
    pub(crate) completion: Completion,
    /// When the connection handler enqueued the job; the gap to worker
    /// pickup is the queue-wait phase of the latency split.
    pub(crate) enqueued: Instant,
}

/// Where a worker delivers a finished response.
pub(crate) enum Completion {
    /// Blocking dispatch: the connection thread waits on this channel
    /// (classic loop, detached streaming connections).
    Channel(Sender<Response>),
    /// Reactor dispatch: serialize into the connection's outbox and wake
    /// the reactor. `binary` and `id` are captured at enqueue time, so a
    /// response always matches the protocol mode its request arrived in.
    Outbox {
        conn: Arc<ConnShared>,
        id: u64,
        binary: bool,
    },
}

impl Completion {
    pub(crate) fn deliver(self, response: Response) {
        match self {
            Completion::Channel(tx) => {
                let _ = tx.send(response);
            }
            Completion::Outbox { conn, id, binary } => conn.complete(id, binary, &response),
        }
    }
}

/// The worker-visible half of a reactor connection: response bytes go
/// into `outbox`, `in_flight` gates pipelining/ordering and close, and
/// `wake` pokes the reactor's poll loop so it notices the new bytes.
pub(crate) struct ConnShared {
    pub(crate) outbox: Mutex<Vec<u8>>,
    pub(crate) in_flight: AtomicUsize,
    wake: Box<dyn Fn() + Send + Sync>,
}

impl ConnShared {
    pub(crate) fn new(wake: Box<dyn Fn() + Send + Sync>) -> Self {
        Self {
            outbox: Mutex::new(Vec::new()),
            in_flight: AtomicUsize::new(0),
            wake,
        }
    }

    /// Appends one serialized response (JSON line or binary frame) to the
    /// outbox and wakes the reactor.
    pub(crate) fn push_response(&self, id: u64, binary: bool, response: &Response) {
        let bytes = encode_response_bytes(id, binary, response);
        self.outbox.lock().extend_from_slice(&bytes);
        (self.wake)();
    }

    /// [`Self::push_response`] plus the in-flight decrement, in that
    /// order: the reactor only closes a drained connection once
    /// `in_flight` is zero AND the outbox is empty, so the response bytes
    /// must be visible before the counter drops.
    fn complete(&self, id: u64, binary: bool, response: &Response) {
        let bytes = encode_response_bytes(id, binary, response);
        self.outbox.lock().extend_from_slice(&bytes);
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
        (self.wake)();
    }
}

/// One response as wire bytes: a newline-terminated JSON line (protocol
/// ≤6) or an id-enveloped `rl-wire` frame (protocol v7).
pub(crate) fn encode_response_bytes(id: u64, binary: bool, response: &Response) -> Vec<u8> {
    if binary {
        let mut payload = Vec::new();
        if wire::encode_response(id, response, &mut payload).is_err() {
            let fallback = Response::Err(RequestError::new(ErrorCode::Parse, "encode"));
            let _ = wire::encode_response(id, &fallback, &mut payload);
        }
        let mut frame = Vec::with_capacity(payload.len() + rl_wire::HEADER_LEN);
        rl_wire::encode_frame_into(wire::TAG_RESPONSE, &payload, &mut frame);
        frame
    } else {
        let mut json = serde_json::to_string(response)
            .unwrap_or_else(|_| "{\"Err\":{\"code\":\"Parse\",\"message\":\"encode\"}}".into());
        json.push('\n');
        json.into_bytes()
    }
}

/// A connection's write half, protocol-mode aware. Streaming handlers
/// (`repl`, `subs`) write through this so one code path serves both JSON
/// lines and binary frames.
pub(crate) enum ConnWriter {
    /// Newline-delimited JSON responses (protocol ≤6).
    Json(TcpStream),
    /// `rl-wire` frames (protocol v7). `id` is the originating request's
    /// id: every response (including stream pushes) carries it, so a
    /// pipelining client can attribute stream lines to the subscribe
    /// call that opened them.
    Binary {
        stream: TcpStream,
        id: u64,
        payload: Vec<u8>,
        frame: Vec<u8>,
    },
}

impl ConnWriter {
    pub(crate) fn binary(stream: TcpStream, id: u64) -> Self {
        ConnWriter::Binary {
            stream,
            id,
            payload: Vec::new(),
            frame: Vec::new(),
        }
    }

    /// The underlying socket (for timeout configuration).
    pub(crate) fn stream(&self) -> &TcpStream {
        match self {
            ConnWriter::Json(s) => s,
            ConnWriter::Binary { stream, .. } => stream,
        }
    }

    /// Unwraps the write stream (for re-entering [`json_conn_loop`]).
    fn into_json(self) -> TcpStream {
        match self {
            ConnWriter::Json(s) => s,
            ConnWriter::Binary { stream, .. } => stream,
        }
    }

    /// Retargets binary responses at a new request id (no-op for JSON).
    pub(crate) fn set_id(&mut self, new_id: u64) {
        if let ConnWriter::Binary { id, .. } = self {
            *id = new_id;
        }
    }

    /// Writes one response in the connection's protocol mode.
    pub(crate) fn write_response(&mut self, response: &Response) -> std::io::Result<()> {
        match self {
            ConnWriter::Json(stream) => write_response(stream, response),
            ConnWriter::Binary {
                stream,
                id,
                payload,
                frame,
            } => {
                if wire::encode_response(*id, response, payload).is_err() {
                    let fallback = Response::Err(RequestError::new(ErrorCode::Parse, "encode"));
                    let _ = wire::encode_response(*id, &fallback, payload);
                }
                frame.clear();
                rl_wire::encode_frame_into(wire::TAG_RESPONSE, payload, frame);
                stream.write_all(frame)?;
                stream.flush()
            }
        }
    }

    /// The socket when the connection is in binary mode (the ack read
    /// half of a v8 subscription), `None` on JSON.
    pub(crate) fn binary_stream(&self) -> Option<&TcpStream> {
        match self {
            ConnWriter::Json(_) => None,
            ConnWriter::Binary { stream, .. } => Some(stream),
        }
    }

    /// Ships one replicated WAL op: a JSON `WalFrame` line, or a compact
    /// [`wire::TAG_WAL`] / [`wire::TAG_WAL_E`] frame carrying the binary
    /// op encoding. Epoch-0 frames keep the pre-v8 tag so v7 followers
    /// decode unchanged history.
    pub(crate) fn write_wal(&mut self, seq: u64, op: &WalOp, epoch: u64) -> std::io::Result<()> {
        match self {
            ConnWriter::Json(stream) => write_response(
                stream,
                &Response::Ok(Reply::WalFrame {
                    seq,
                    op: op.clone(),
                    epoch,
                }),
            ),
            ConnWriter::Binary {
                stream,
                payload,
                frame,
                ..
            } => {
                let tag = if epoch == 0 {
                    wire::encode_wal(seq, op, payload);
                    wire::TAG_WAL
                } else {
                    wire::encode_wal_epoch(seq, epoch, op, payload);
                    wire::TAG_WAL_E
                };
                frame.clear();
                rl_wire::encode_frame_into(tag, payload, frame);
                stream.write_all(frame)?;
                stream.flush()
            }
        }
    }

    /// Ships one checkpoint chunk: base64 inside a JSON `CheckpointChunk`
    /// line (protocol v5), or the raw bytes in a [`wire::TAG_CHUNK`]
    /// frame — no base64, no JSON, which is what makes the v7 bootstrap
    /// transfer fast.
    pub(crate) fn write_chunk(&mut self, index: u64, data: &[u8]) -> std::io::Result<()> {
        match self {
            ConnWriter::Json(stream) => write_response(
                stream,
                &Response::Ok(Reply::CheckpointChunk {
                    index,
                    data: crate::repl::b64::encode(data),
                }),
            ),
            ConnWriter::Binary { stream, frame, .. } => {
                frame.clear();
                rl_wire::encode_frame_into(wire::TAG_CHUNK, data, frame);
                stream.write_all(frame)?;
                stream.flush()
            }
        }
    }
}

pub(crate) struct Inner {
    state: RwLock<ServerState>,
    pub(crate) config: ServerConfig,
    pub(crate) shutdown: AtomicBool,
    started: Instant,
    requests_served: AtomicU64,
    pub(crate) rejected_backpressure: AtomicU64,
    local_addr: SocketAddr,
    pub(crate) metrics: Arc<ServerMetrics>,
    /// The durability layer (WAL + checkpoints); `None` without a data
    /// dir. Lock order: `state` before `repl.role` before `store` —
    /// mutations append under the state write lock, the checkpointer
    /// rotates under a state read lock, promote flips the role under the
    /// state write lock, so none can deadlock another.
    pub(crate) store: Option<Mutex<Store>>,
    /// Replication role and lag counters (see [`crate::repl`]).
    pub(crate) repl: ReplState,
    /// Live match subscriptions (protocol v6; see [`crate::subs`]).
    pub(crate) subs: SubHub,
    /// The background migrator serving the in-flight `Reshard`, if any
    /// (protocol v10). A finished thread's handle stays here until the
    /// next reshard (or shutdown) joins it.
    reshard_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

/// A running linkage service. Dropping the handle does not stop the
/// server; send a `Shutdown` request (or call [`Server::shutdown`]) and
/// then [`Server::wait`].
pub struct Server {
    inner: Arc<Inner>,
    jobs: Sender<Job>,
    accept_handle: Option<std::thread::JoinHandle<()>>,
    worker_handles: Vec<std::thread::JoinHandle<()>>,
    checkpoint_handle: Option<std::thread::JoinHandle<()>>,
    wal_sync_handle: Option<std::thread::JoinHandle<()>>,
    compact_handle: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds the listener, spawns the worker pool and the accept loop, and
    /// returns immediately. `pipeline` may be freshly built or restored
    /// from a snapshot ([`crate::snapshot::Snapshot`]).
    ///
    /// # Errors
    /// Returns I/O errors from binding the address.
    pub fn spawn(pipeline: ShardedPipeline, config: ServerConfig) -> std::io::Result<Self> {
        Self::spawn_with_history(pipeline, Vec::new(), 0, config)
    }

    /// Like [`Self::spawn`], but seeds the dedup union-find and stream
    /// counter from a restored snapshot.
    ///
    /// # Errors
    /// Returns I/O errors from binding the address.
    pub fn spawn_with_history(
        pipeline: ShardedPipeline,
        stream_pairs: Vec<(u64, u64)>,
        streamed: u64,
        config: ServerConfig,
    ) -> std::io::Result<Self> {
        Self::spawn_core(pipeline, stream_pairs, streamed, config, None)
    }

    /// Spawns a **durable** server from `config.durability` (which must be
    /// set): opens the data directory, loads the latest checkpoint,
    /// replays the WAL tail (truncating a torn final frame with a warning,
    /// never refusing to start), and then serves with every mutation
    /// write-ahead logged before its reply. `fresh` builds the pipeline
    /// only when the directory has no checkpoint yet (first boot).
    ///
    /// # Errors
    /// Returns I/O errors from binding the address, opening the data
    /// directory, or a corrupt checkpoint (a torn WAL tail is NOT an
    /// error), and any error from `fresh`.
    pub fn spawn_durable<F>(fresh: F, config: ServerConfig) -> std::io::Result<Self>
    where
        F: FnOnce() -> std::io::Result<ShardedPipeline>,
    {
        let Some(durability) = config.durability.clone() else {
            return Err(std::io::Error::new(
                ErrorKind::InvalidInput,
                "spawn_durable requires config.durability",
            ));
        };
        let (store, recovery) = Store::open(
            &durability.data_dir,
            StoreOptions {
                sync: durability.sync,
            },
        )
        .map_err(|e| std::io::Error::other(e.to_string()))?;

        let mut state = match recovery.snapshot {
            Some(snap) => {
                let pipeline = ShardedPipeline::from_state(snap.state)
                    .map_err(|e| std::io::Error::other(e.to_string()))?;
                let mut dedup = UnionFind::new();
                for &(a, b) in &snap.stream_pairs {
                    dedup.union(a, b);
                }
                ServerState {
                    pipeline,
                    dedup,
                    stream_pairs: snap.stream_pairs,
                    streamed: snap.streamed,
                }
            }
            None => ServerState {
                pipeline: fresh()?,
                dedup: UnionFind::new(),
                stream_pairs: Vec::new(),
                streamed: 0,
            },
        };
        for op in &recovery.ops {
            apply_op(&mut state, op).map_err(|e| std::io::Error::other(e.to_string()))?;
        }
        let report = recovery.report;
        if report.checkpoint_seq.is_some() || report.replayed_ops > 0 {
            eprintln!(
                "rl-server: recovered from {}: checkpoint covering wal seq {:?}, \
                 {} op(s) replayed from {} segment(s), {} torn byte(s) truncated, in {:.1}ms",
                durability.data_dir.display(),
                report.checkpoint_seq,
                report.replayed_ops,
                report.segments_replayed,
                report.truncated_bytes,
                report.duration.as_secs_f64() * 1e3,
            );
        }
        let ServerState {
            pipeline,
            stream_pairs,
            streamed,
            ..
        } = state;
        let server = Self::spawn_core(pipeline, stream_pairs, streamed, config, Some(store))?;
        server
            .inner
            .metrics
            .replayed_ops
            .set(report.replayed_ops as i64);
        server
            .inner
            .metrics
            .replay_duration_ms
            .set(report.duration.as_millis() as i64);
        Ok(server)
    }

    fn spawn_core(
        mut pipeline: ShardedPipeline,
        stream_pairs: Vec<(u64, u64)>,
        streamed: u64,
        config: ServerConfig,
        store: Option<Store>,
    ) -> std::io::Result<Self> {
        if config.repl_role != ReplRole::Standalone && store.is_none() {
            return Err(std::io::Error::new(
                ErrorKind::InvalidInput,
                "replication roles require durability (the WAL is what gets shipped); \
                 start with a data directory",
            ));
        }
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let mut dedup = UnionFind::new();
        for &(a, b) in &stream_pairs {
            dedup.union(a, b);
        }
        let metrics = ServerMetrics::new();
        pipeline.attach_metrics(Arc::clone(&metrics.pipeline));
        metrics.indexed_records.set(pipeline.indexed_len() as i64);
        metrics.streamed_records.set(streamed as i64);
        if let Some(store) = &store {
            metrics.wal_bytes.set(store.wal_bytes() as i64);
        }
        let workers = config.workers.max(1);
        let queue_capacity = config.queue_capacity.max(1);
        let repl = ReplState::new(
            config.repl_role.clone(),
            store.as_ref().map(Store::op_seq).unwrap_or(0),
            store.as_ref().map(Store::epoch).unwrap_or(0),
        );
        let subs = SubHub::new(
            pipeline.schema().clone(),
            pipeline.classifier(),
            config.max_subscriptions,
        );
        let inner = Arc::new(Inner {
            state: RwLock::new(ServerState {
                pipeline,
                dedup,
                stream_pairs,
                streamed,
            }),
            config,
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
            requests_served: AtomicU64::new(0),
            rejected_backpressure: AtomicU64::new(0),
            local_addr,
            metrics,
            store: store.map(Mutex::new),
            repl,
            subs,
            reshard_thread: Mutex::new(None),
        });

        let (job_tx, job_rx) = bounded::<Job>(queue_capacity);
        let worker_handles = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                let rx: Receiver<Job> = job_rx.clone();
                std::thread::Builder::new()
                    .name(format!("rl-worker-{i}"))
                    .spawn(move || worker_loop(&inner, &rx))
                    .expect("spawn worker")
            })
            .collect();
        drop(job_rx);

        let accept_handle = {
            let inner = Arc::clone(&inner);
            let job_tx = job_tx.clone();
            std::thread::Builder::new()
                .name("rl-accept".into())
                .spawn(move || {
                    #[cfg(target_os = "linux")]
                    if inner.config.reactor {
                        crate::reactor::run(&inner, listener, &job_tx);
                        return;
                    }
                    accept_loop(&inner, &listener, &job_tx);
                })
                .expect("spawn accept loop")
        };

        let checkpoint_handle = match (
            &inner.store,
            inner
                .config
                .durability
                .as_ref()
                .and_then(|d| d.checkpoint_every),
        ) {
            (Some(_), Some(every)) => {
                let inner = Arc::clone(&inner);
                Some(
                    std::thread::Builder::new()
                        .name("rl-checkpoint".into())
                        .spawn(move || checkpoint_loop(&inner, every))
                        .expect("spawn checkpointer"),
                )
            }
            _ => None,
        };

        let wal_sync_handle = match inner.config.durability.as_ref().map(|d| d.sync) {
            Some(SyncPolicy::GroupCommit(interval)) if inner.store.is_some() => {
                let inner = Arc::clone(&inner);
                Some(
                    std::thread::Builder::new()
                        .name("rl-wal-sync".into())
                        .spawn(move || wal_sync_loop(&inner, interval))
                        .expect("spawn wal sync"),
                )
            }
            _ => None,
        };

        // Blocking-store compaction runs on its own thread, off the
        // checkpoint path: merging delta overlays only needs a state read
        // lock (shard workers serialize the actual store mutation), so it
        // no longer stalls mutations behind a write lock before every
        // checkpoint. Same trigger as the checkpointer — compaction
        // matters when checkpoints export the overlay it bounds.
        let compact_handle = match (
            &inner.store,
            inner
                .config
                .durability
                .as_ref()
                .and_then(|d| d.checkpoint_every),
        ) {
            (Some(_), Some(every)) => {
                let inner = Arc::clone(&inner);
                Some(
                    std::thread::Builder::new()
                        .name("rl-compact".into())
                        .spawn(move || compact_loop(&inner, every))
                        .expect("spawn compactor"),
                )
            }
            _ => None,
        };

        Ok(Self {
            inner,
            jobs: job_tx,
            accept_handle: Some(accept_handle),
            worker_handles,
            checkpoint_handle,
            wal_sync_handle,
            compact_handle,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.local_addr
    }

    /// A cloneable handle for replication drivers (the `rl-repl` crate's
    /// follower loop): apply streamed ops, reset to a checkpoint, read
    /// and publish replication lag.
    pub fn repl_handle(&self) -> ReplHandle {
        ReplHandle {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Requests shutdown from the owning process (equivalent to a client
    /// sending `Shutdown`).
    pub fn shutdown(&self) {
        begin_shutdown(&self.inner);
    }

    /// Blocks until the accept loop has stopped and all queued requests
    /// have drained through the workers. Takes a final snapshot if a
    /// snapshot path is configured.
    pub fn wait(mut self) {
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        // Closing the job channel lets workers finish the backlog and exit.
        drop(self.jobs);
        for handle in self.worker_handles.drain(..) {
            let _ = handle.join();
        }
        if let Some(handle) = self.checkpoint_handle.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.wal_sync_handle.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.compact_handle.take() {
            let _ = handle.join();
        }
        // The migrator observes the shutdown flag and aborts its copy (the
        // un-committed migration deterministically never happened); join it
        // before the final snapshot so the exported state is settled.
        if let Some(handle) = self.inner.reshard_thread.lock().take() {
            let _ = handle.join();
        }
        // Group-commit mode may hold acknowledged-but-unsynced frames;
        // make the clean-shutdown boundary durable.
        if let Some(store) = &self.inner.store {
            if let Err(e) = store.lock().sync() {
                eprintln!("rl-server: final WAL sync failed: {e}");
            }
        }
        if let Some(path) = self.inner.config.snapshot_path.clone() {
            let state = self.inner.state.read();
            if let Err(e) = write_snapshot(&state, &path) {
                eprintln!("rl-server: shutdown snapshot failed: {e}");
            }
        }
    }
}

pub(crate) fn begin_shutdown(inner: &Inner) {
    if inner.shutdown.swap(true, Ordering::SeqCst) {
        return;
    }
    // Wake the accept loop: it blocks in accept(), so poke it with a
    // throwaway connection to make it observe the flag. A wildcard bind
    // address (0.0.0.0 / ::) is not connectable on every platform, so
    // poke loopback on the bound port instead.
    let mut addr = inner.local_addr;
    if addr.ip().is_unspecified() {
        addr.set_ip(match addr.ip() {
            IpAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
            IpAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
        });
    }
    let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(250));
}

pub(crate) fn accept_loop(inner: &Arc<Inner>, listener: &TcpListener, job_tx: &Sender<Job>) {
    let mut conn_handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if inner.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let inner = Arc::clone(inner);
        let job_tx = job_tx.clone();
        conn_handles.retain(|h| !h.is_finished());
        let handle = std::thread::Builder::new()
            .name("rl-conn".into())
            .spawn(move || handle_connection(&inner, stream, &job_tx))
            .expect("spawn connection handler");
        conn_handles.push(handle);
    }
    for handle in conn_handles {
        let _ = handle.join();
    }
}

fn handle_connection(inner: &Arc<Inner>, stream: TcpStream, job_tx: &Sender<Job>) {
    // A short read timeout lets idle connections notice server shutdown
    // without disturbing active clients (timeouts just re-poll the flag).
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    json_conn_loop(inner, job_tx, BufReader::new(box_reader(stream)), writer);
}

pub(crate) type ConnReader = Box<dyn Read + Send>;

pub(crate) fn box_reader<R: Read + Send + 'static>(r: R) -> ConnReader {
    Box::new(r)
}

/// Whether the connection loop should keep reading after a request.
pub(crate) enum ConnFlow {
    Continue,
    Close,
}

/// Serves a streaming request inline on a (blocking) connection thread:
/// these answer with many lines/frames and so cannot round-trip through
/// the one-reply job queue. `Close` means the stream consumed the
/// connection.
pub(crate) fn serve_streaming(
    inner: &Arc<Inner>,
    writer: &mut ConnWriter,
    request: Request,
) -> ConnFlow {
    match request {
        Request::FetchCheckpoint => {
            inner.metrics.record_streaming(ReqType::FetchCheckpoint);
            match crate::repl::serve_fetch_checkpoint(inner, writer) {
                Ok(()) => ConnFlow::Continue,
                Err(_) => ConnFlow::Close,
            }
        }
        Request::Subscribe { from_seq, epoch } => {
            inner.metrics.record_streaming(ReqType::Subscribe);
            crate::repl::serve_subscribe(inner, writer, from_seq, epoch);
            // A subscription consumes the connection: when the stream
            // ends (either side went away) there is no framing left to
            // resynchronize on, so close.
            ConnFlow::Close
        }
        Request::SubscribeMatches {
            rule,
            window,
            late,
            cap,
        } => {
            inner.metrics.record_streaming(ReqType::SubscribeMatches);
            // `false` means the subscription was refused with a single
            // error line and the connection is still usable.
            if crate::subs::serve_subscribe_matches(inner, writer, &rule, window, late, cap) {
                ConnFlow::Close
            } else {
                ConnFlow::Continue
            }
        }
        _ => ConnFlow::Continue,
    }
}

/// True for the verbs [`serve_streaming`] handles.
pub(crate) fn is_streaming(request: &Request) -> bool {
    matches!(
        request,
        Request::FetchCheckpoint | Request::Subscribe { .. } | Request::SubscribeMatches { .. }
    )
}

/// Answers a [`Request::Upgrade`] negotiation: the agreed version is the
/// lower of what both sides speak, and only v7+ switches the connection
/// to binary frames. Returns the version to reply with and whether to
/// switch.
pub(crate) fn negotiate_upgrade(max_version: u32) -> (u32, bool) {
    let version = max_version.min(PROTOCOL_VERSION);
    (version, version >= crate::protocol::FIRST_BINARY_VERSION)
}

/// The classic blocking JSON loop (protocol ≤6 framing). Also the
/// fallback when the reactor is off, and the tail of a detached
/// streaming connection. Switches itself to [`binary_conn_loop`] when
/// the client negotiates protocol v7.
pub(crate) fn json_conn_loop(
    inner: &Arc<Inner>,
    job_tx: &Sender<Job>,
    mut reader: BufReader<ConnReader>,
    writer_stream: TcpStream,
) {
    let mut writer = ConnWriter::Json(writer_stream);
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => {
                // Client closed. Answer a trailing request that was sent
                // without a final newline before hanging up.
                if !line.trim().is_empty() {
                    let _ = serve_line(inner, job_tx, &mut writer, line.trim());
                }
                return;
            }
            // A line without '\n' means EOF mid-line; the next read
            // returns Ok(0) and the branch above dispatches it.
            Ok(_) if !line.ends_with('\n') => continue,
            Ok(_) => {}
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                // read_line keeps partial bytes it already consumed in
                // `line`; leave them so a request split across TCP
                // segments resumes on the next read instead of being
                // truncated.
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            line.clear();
            continue;
        }
        match serve_line(inner, job_tx, &mut writer, trimmed) {
            ConnFlow::Continue => line.clear(),
            ConnFlow::Close => return,
        }
        if matches!(writer, ConnWriter::Binary { .. }) {
            // The Upgrade handshake switched modes. Bytes the BufReader
            // already pulled off the socket belong to the binary stream;
            // hand them over so nothing is lost.
            let leftover = reader.buffer().to_vec();
            let raw = reader.into_inner();
            let chained = box_reader(Cursor::new(leftover).chain(raw));
            return binary_conn_loop(inner, job_tx, FrameReader::new(chained), writer);
        }
    }
}

/// Serves one request line on the connection thread.
fn serve_line(
    inner: &Arc<Inner>,
    job_tx: &Sender<Job>,
    writer: &mut ConnWriter,
    line: &str,
) -> ConnFlow {
    let response = match serde_json::from_str::<Request>(line) {
        Ok(request) if is_streaming(&request) => return serve_streaming(inner, writer, request),
        Ok(Request::Upgrade { max_version }) => {
            inner.metrics.record_streaming(ReqType::Upgrade);
            let (version, binary) = negotiate_upgrade(max_version);
            // The acknowledgement goes out in the *old* mode — the
            // client reads it as a JSON line before sending any frame.
            if writer
                .write_response(&Response::Ok(Reply::Upgraded { version }))
                .is_err()
            {
                return ConnFlow::Close;
            }
            if binary {
                let Ok(cloned) = writer.stream().try_clone() else {
                    return ConnFlow::Close;
                };
                *writer = ConnWriter::binary(cloned, wire::PUSH_ID);
            }
            return ConnFlow::Continue;
        }
        Ok(request) => dispatch_request(inner, job_tx, request),
        Err(e) => Response::Err(RequestError::new(
            ErrorCode::Parse,
            format!("bad request: {e}"),
        )),
    };
    let is_shutdown_ack = matches!(response, Response::Ok(Reply::ShuttingDown));
    if writer.write_response(&response).is_err() || is_shutdown_ack {
        return ConnFlow::Close;
    }
    ConnFlow::Continue
}

/// The blocking binary-frame loop (protocol v7). One request at a time —
/// pipelining depth beyond 1 needs the reactor — but every byte saved:
/// requests and responses travel as id-enveloped `rl-wire` frames.
/// [`FrameReader`] is resumable across the 200 ms read timeout, so a
/// frame split across TCP segments is reassembled, not truncated.
pub(crate) fn binary_conn_loop(
    inner: &Arc<Inner>,
    job_tx: &Sender<Job>,
    mut frames: FrameReader<ConnReader>,
    mut writer: ConnWriter,
) {
    loop {
        let (id, request) = match frames.read_frame() {
            Ok(None) => return,
            Ok(Some((tag, payload))) => {
                if tag != wire::TAG_REQUEST {
                    // A client must only send requests; anything else is
                    // a framing bug with no way to resynchronize.
                    return;
                }
                match wire::decode_request(payload) {
                    Ok(pair) => pair,
                    Err(e) => {
                        writer.set_id(wire::PUSH_ID);
                        let _ = writer.write_response(&Response::Err(RequestError::new(
                            ErrorCode::Parse,
                            format!("bad request: {e}"),
                        )));
                        continue;
                    }
                }
            }
            Err(e) if e.is_would_block() => {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            // Corrupt, oversized, or truncated frames: the stream cannot
            // be resynchronized, close.
            Err(_) => return,
        };
        writer.set_id(id);
        if is_streaming(&request) {
            if let ConnFlow::Close = serve_streaming(inner, &mut writer, request) {
                return;
            }
            continue;
        }
        let response = match request {
            Request::Upgrade { max_version } => {
                inner.metrics.record_streaming(ReqType::Upgrade);
                let (version, _) = negotiate_upgrade(max_version);
                // Already binary; re-upgrading is an idempotent ack.
                Response::Ok(Reply::Upgraded { version })
            }
            request => dispatch_request(inner, job_tx, request),
        };
        let is_shutdown_ack = matches!(response, Response::Ok(Reply::ShuttingDown));
        if writer.write_response(&response).is_err() || is_shutdown_ack {
            return;
        }
    }
}

/// Entry point for a connection the reactor detached for a streaming
/// verb: serve the stream on this dedicated thread, then keep serving
/// requests in the classic blocking way (the connection never returns to
/// the reactor). `leftover` is whatever the reactor had read past the
/// streaming request.
pub(crate) fn serve_detached(
    inner: Arc<Inner>,
    job_tx: Sender<Job>,
    stream: TcpStream,
    leftover: Vec<u8>,
    binary: bool,
    request: Request,
    id: u64,
) {
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let Ok(wstream) = stream.try_clone() else {
        return;
    };
    let mut writer = if binary {
        ConnWriter::binary(wstream, id)
    } else {
        ConnWriter::Json(wstream)
    };
    if let ConnFlow::Close = serve_streaming(&inner, &mut writer, request) {
        return;
    }
    let reader = box_reader(Cursor::new(leftover).chain(stream));
    if binary {
        binary_conn_loop(&inner, &job_tx, FrameReader::new(reader), writer);
    } else if let ConnWriter::Json(_) = writer {
        json_conn_loop(&inner, &job_tx, BufReader::new(reader), writer.into_json());
    }
}

pub(crate) fn write_response(writer: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    let mut json = serde_json::to_string(response)
        .unwrap_or_else(|_| "{\"Err\":{\"code\":\"Parse\",\"message\":\"encode\"}}".into());
    json.push('\n');
    writer.write_all(json.as_bytes())?;
    writer.flush()
}

fn dispatch_request(inner: &Arc<Inner>, job_tx: &Sender<Job>, request: Request) -> Response {
    // Shutdown only flips an atomic — handle it inline so it can never be
    // rejected with Backpressure by a saturated job queue.
    if matches!(request, Request::Shutdown) {
        begin_shutdown(inner);
        return Response::Ok(Reply::ShuttingDown);
    }
    if inner.shutdown.load(Ordering::SeqCst) {
        return Response::Err(RequestError::new(
            ErrorCode::ShuttingDown,
            "server is shutting down",
        ));
    }
    let (reply_tx, reply_rx) = bounded(1);
    let job = Job {
        request,
        completion: Completion::Channel(reply_tx),
        enqueued: Instant::now(),
    };
    match job_tx.try_send(job) {
        Ok(()) => {}
        Err(TrySendError::Full(_)) => {
            inner.rejected_backpressure.fetch_add(1, Ordering::Relaxed);
            inner.metrics.rejected_backpressure.inc();
            return Response::Err(RequestError::new(
                ErrorCode::Backpressure,
                format!(
                    "work queue full ({} pending); retry later",
                    inner.config.queue_capacity
                ),
            ));
        }
        Err(TrySendError::Disconnected(_)) => {
            return Response::Err(RequestError::new(
                ErrorCode::ShuttingDown,
                "worker pool stopped",
            ));
        }
    }
    match reply_rx.recv() {
        Ok(response) => response,
        Err(_) => Response::Err(RequestError::new(
            ErrorCode::ShuttingDown,
            "worker dropped the request during shutdown",
        )),
    }
}

fn worker_loop(inner: &Arc<Inner>, rx: &Receiver<Job>) {
    while let Ok(job) = rx.recv() {
        let queue_wait = job.enqueued.elapsed();
        let rtype = ReqType::of(&job.request);
        let t0 = Instant::now();
        let response = execute(inner, job.request);
        let exec = t0.elapsed();
        inner.requests_served.fetch_add(1, Ordering::Relaxed);
        inner
            .metrics
            .record_request(rtype, queue_wait, exec, matches!(response, Response::Ok(_)));
        if let Some(threshold) = inner.config.slow_request_threshold {
            let total = queue_wait + exec;
            if total >= threshold {
                inner.metrics.slow_requests.inc();
                eprintln!(
                    "rl-server: slow request type={} total={:.1}ms queue_wait={:.1}ms exec={:.1}ms",
                    rtype.label(),
                    total.as_secs_f64() * 1e3,
                    queue_wait.as_secs_f64() * 1e3,
                    exec.as_secs_f64() * 1e3,
                );
            }
        }
        job.completion.deliver(response);
    }
}

fn execute(inner: &Arc<Inner>, request: Request) -> Response {
    match request {
        // `Insert` (protocol v4) is `Index` with the durability intent
        // spelled out; both hit the WAL before the reply when a data dir
        // is configured.
        Request::Index { records } | Request::Insert { records } => {
            let mut state = inner.state.write();
            if let Some(err) = reject_if_follower(inner) {
                return Response::Err(err);
            }
            let mut applied_seq = 0;
            if inner.store.is_some() {
                // Validate before logging so the WAL never holds an op
                // that will fail again at replay.
                if let Err(e) = state.pipeline.schema().embed_all(&records) {
                    return Response::Err(RequestError::new(ErrorCode::Linkage, e.to_string()));
                }
                let ops: Vec<WalOp> = records.iter().cloned().map(WalOp::Insert).collect();
                match log_mutation(inner, &ops) {
                    Ok(seq) => applied_seq = seq,
                    Err(e) => return Response::Err(e),
                }
            }
            match state.pipeline.index(&records) {
                Ok(()) => {
                    let total_indexed = state.pipeline.indexed_len();
                    inner.metrics.indexed_records.set(total_indexed as i64);
                    // Fan out to match subscriptions while still holding
                    // the state write lock, so event order across
                    // connections matches mutation order.
                    for record in &records {
                        inner.subs.observe(&inner.metrics, record);
                    }
                    // Quorum waits happen after the lock is released:
                    // acks arrive independently, and other requests must
                    // not stall behind the bounded wait.
                    drop(state);
                    if let Err(e) = crate::repl::await_quorum(inner, applied_seq) {
                        return Response::Err(e);
                    }
                    Response::Ok(Reply::Indexed {
                        accepted: records.len(),
                        total_indexed,
                        applied_seq,
                    })
                }
                Err(e) => Response::Err(RequestError::new(ErrorCode::Linkage, e.to_string())),
            }
        }
        Request::Delete { ids } => {
            let mut state = inner.state.write();
            if let Some(err) = reject_if_follower(inner) {
                return Response::Err(err);
            }
            let mut applied_seq = 0;
            if inner.store.is_some() {
                let ops: Vec<WalOp> = ids.iter().map(|&id| WalOp::Delete(id)).collect();
                match log_mutation(inner, &ops) {
                    Ok(seq) => applied_seq = seq,
                    Err(e) => return Response::Err(e),
                }
            }
            match state.pipeline.delete(&ids) {
                Ok(removed) => {
                    let total_indexed = state.pipeline.indexed_len();
                    inner.metrics.indexed_records.set(total_indexed as i64);
                    for &id in &ids {
                        inner.subs.remove(id);
                    }
                    drop(state);
                    if let Err(e) = crate::repl::await_quorum(inner, applied_seq) {
                        return Response::Err(e);
                    }
                    Response::Ok(Reply::Deleted {
                        removed,
                        total_indexed,
                        applied_seq,
                    })
                }
                Err(e) => Response::Err(RequestError::new(ErrorCode::Linkage, e.to_string())),
            }
        }
        Request::Probe { records } => {
            let state = inner.state.read();
            match state.pipeline.link(&records) {
                Ok((pairs, stats)) => {
                    let notes = crate::protocol::truncation_notes(&stats);
                    Response::Ok(Reply::Matches {
                        pairs,
                        stats,
                        notes,
                    })
                }
                Err(e) => Response::Err(RequestError::new(ErrorCode::Linkage, e.to_string())),
            }
        }
        Request::Stream { record } => {
            let mut state = inner.state.write();
            if let Some(err) = reject_if_follower(inner) {
                return Response::Err(err);
            }
            let mut applied_seq = 0;
            if inner.store.is_some() {
                if let Err(e) = state.pipeline.schema().embed(&record) {
                    return Response::Err(RequestError::new(ErrorCode::Linkage, e.to_string()));
                }
                // Logged as `Observe` (not `Insert`): replay re-runs the
                // match-then-index round, rebuilding the stream pairs and
                // the dedup forest deterministically.
                match log_mutation(inner, &[WalOp::Observe(record.clone())]) {
                    Ok(seq) => applied_seq = seq,
                    Err(e) => return Response::Err(e),
                }
            }
            let t0 = Instant::now();
            match observe(&mut state, &record) {
                Ok(matches) => {
                    // Same histogram StreamMatcher::observe records into:
                    // one streaming round (match + index), whatever engine
                    // runs it.
                    inner
                        .metrics
                        .pipeline
                        .observe
                        .observe_duration(t0.elapsed());
                    inner.metrics.streamed_records.set(state.streamed as i64);
                    inner
                        .metrics
                        .indexed_records
                        .set(state.pipeline.indexed_len() as i64);
                    inner.subs.observe(&inner.metrics, &record);
                    drop(state);
                    if let Err(e) = crate::repl::await_quorum(inner, applied_seq) {
                        return Response::Err(e);
                    }
                    Response::Ok(Reply::Observed {
                        matches,
                        applied_seq,
                    })
                }
                Err(e) => Response::Err(RequestError::new(ErrorCode::Linkage, e.to_string())),
            }
        }
        Request::DedupStatus => {
            let mut state = inner.state.write();
            let clusters = state.dedup.clusters(2);
            Response::Ok(Reply::DedupStatus {
                linked_records: clusters.iter().map(Vec::len).sum(),
                clusters,
            })
        }
        Request::Stats => {
            let state = inner.state.read();
            let blocking = state.pipeline.blocking_stats().unwrap_or_default();
            inner.metrics.update_block_gauges(&blocking);
            Response::Ok(Reply::Stats(StatsReply {
                protocol_version: PROTOCOL_VERSION,
                shards: state.pipeline.num_shards(),
                workers: inner.config.workers.max(1),
                queue_capacity: inner.config.queue_capacity.max(1),
                indexed: state.pipeline.indexed_len(),
                streamed: state.streamed,
                requests_served: inner.requests_served.load(Ordering::Relaxed),
                rejected_backpressure: inner.rejected_backpressure.load(Ordering::Relaxed),
                uptime_secs: inner.started.elapsed().as_secs(),
                blocking,
                shard_map_epoch: state.pipeline.shard_map().epoch(),
                shard_records: state
                    .pipeline
                    .shard_record_counts()
                    .map(|counts| counts.into_iter().map(|c| c as u64).collect())
                    .unwrap_or_default(),
            }))
        }
        Request::Metrics => Response::Ok(Reply::Metrics(inner.metrics.snapshot())),
        Request::Snapshot { path } => {
            let target = path
                .map(PathBuf::from)
                .or_else(|| inner.config.snapshot_path.clone());
            let Some(target) = target else {
                return Response::Err(RequestError::new(
                    ErrorCode::Unavailable,
                    "no snapshot path configured; pass one in the request or start \
                     the server with --snapshot",
                ));
            };
            let state = inner.state.read();
            match write_snapshot(&state, &target) {
                Ok(indexed) => Response::Ok(Reply::Snapshotted {
                    path: target.to_string_lossy().into_owned(),
                    indexed,
                }),
                Err(e) => Response::Err(RequestError::new(ErrorCode::Snapshot, e.to_string())),
            }
        }
        Request::ReplStatus => {
            let role = inner.repl.role.lock().clone();
            let applied = inner.store.as_ref().map(|s| s.lock().op_seq()).unwrap_or(0);
            let (head_seq, lag_bytes, primary_addr) = match &role {
                ReplRole::Follower { primary_addr } => (
                    // The stream's head can trail reality between
                    // heartbeats; never report a head behind what we
                    // have already applied.
                    inner.repl.head_seq.load(Ordering::SeqCst).max(applied),
                    inner.repl.lag_bytes.load(Ordering::SeqCst),
                    Some(primary_addr.clone()),
                ),
                _ => (applied, 0, None),
            };
            Response::Ok(Reply::ReplStatus(ReplStatusReply {
                role: role.label().to_string(),
                primary_addr,
                applied_seq: applied,
                head_seq,
                lag_frames: head_seq.saturating_sub(applied),
                lag_bytes: if head_seq > applied { lag_bytes } else { 0 },
                followers: inner.repl.followers.load(Ordering::SeqCst),
                reconnects: inner.repl.reconnects.load(Ordering::SeqCst),
                epoch: inner.repl.epoch(),
                lease_ms: inner.config.lease_ms,
            }))
        }
        Request::Promote => {
            // The state write lock fences in-flight mutations and apply
            // calls; the role lock then makes the flip atomic with
            // respect to every role check (lock order state → role →
            // store).
            let _state = inner.state.write();
            let mut role = inner.repl.role.lock();
            match role.clone() {
                ReplRole::Follower { .. } => {
                    // A follower mid-bootstrap has an incomplete store —
                    // promoting it would crown a primary with a torn
                    // checkpoint. Typed refusal; retry once resync ends.
                    if inner.repl.resyncing.load(Ordering::SeqCst) {
                        return Response::Err(RequestError::new(
                            ErrorCode::Unavailable,
                            "promote refused: a checkpoint bootstrap/resync is in \
                             flight; retry once the follower is caught up",
                        ));
                    }
                    let Some(store) = &inner.store else {
                        return Response::Err(RequestError::new(
                            ErrorCode::Unavailable,
                            "promote requires a data directory",
                        ));
                    };
                    let mut store = store.lock();
                    // Start the new primary's write era: bump the epoch
                    // and persist the marker on a fresh segment in one
                    // durable step, so a restart (or the fenced old
                    // primary's frames) can never roll the era back. The
                    // follower's WAL mirrors the old primary's frames, so
                    // op sequencing continues seamlessly.
                    let epoch = match store.bump_epoch() {
                        Ok(e) => e,
                        Err(e) => {
                            return Response::Err(RequestError::new(
                                ErrorCode::Storage,
                                format!("promote failed: {e}"),
                            ));
                        }
                    };
                    let head_seq = store.op_seq();
                    *role = ReplRole::Primary;
                    inner.repl.epoch.store(epoch, Ordering::SeqCst);
                    inner.metrics.repl_lag_frames.set(0);
                    inner.metrics.repl_lag_bytes.set(0);
                    eprintln!(
                        "rl-server: promoted to primary at op seq {head_seq} (epoch {epoch})"
                    );
                    Response::Ok(Reply::Promoted {
                        head_seq,
                        was_follower: true,
                        epoch,
                    })
                }
                ReplRole::Primary => Response::Ok(Reply::Promoted {
                    head_seq: inner.store.as_ref().map(|s| s.lock().op_seq()).unwrap_or(0),
                    was_follower: false,
                    epoch: inner.repl.epoch(),
                }),
                ReplRole::Standalone => Response::Err(RequestError::new(
                    ErrorCode::Unavailable,
                    "promote only applies to replicated servers (follower, or primary \
                     started with --allow-replicas)",
                )),
            }
        }
        Request::Unsubscribe { sub_id } => {
            let removed = inner.subs.unsubscribe(sub_id);
            Response::Ok(Reply::Unsubscribed { removed })
        }
        Request::GetShardMap => {
            let state = inner.state.read();
            let map = state.pipeline.shard_map();
            let records = match state.pipeline.shard_record_counts() {
                Ok(counts) => counts.into_iter().map(|c| c as u64).collect(),
                Err(e) => {
                    return Response::Err(RequestError::new(ErrorCode::Linkage, e.to_string()))
                }
            };
            Response::Ok(Reply::ShardMap(ShardMapReply {
                epoch: map.epoch(),
                num_shards: map.num_shards(),
                ranges: map.assignments().to_vec(),
                records,
                migration: state.pipeline.migration_status(),
            }))
        }
        Request::MigrationStatus => {
            let state = inner.state.read();
            Response::Ok(Reply::Migration(state.pipeline.migration_status()))
        }
        Request::Reshard { op } => {
            let mut state = inner.state.write();
            // Only a primary (or standalone) may change the shard map —
            // followers receive the change as a replicated cutover frame.
            if let Some(err) = reject_if_follower(inner) {
                return Response::Err(err);
            }
            match state.pipeline.begin_reshard(op) {
                Ok(driver) => {
                    let status = state.pipeline.migration_status();
                    inner.metrics.reshard_state.set(1);
                    inner.metrics.reshard_migrated.set(0);
                    inner.metrics.reshard_lag.set(status.total as i64);
                    drop(state);
                    // At most one migration runs (begin_reshard enforces
                    // it), so any previous migrator has finished — join it
                    // before the new thread takes the slot.
                    let mut slot = inner.reshard_thread.lock();
                    if let Some(handle) = slot.take() {
                        let _ = handle.join();
                    }
                    let migrator = Arc::clone(inner);
                    *slot = Some(
                        std::thread::Builder::new()
                            .name("rl-reshard-migrate".into())
                            .spawn(move || reshard_migrate_loop(&migrator, driver))
                            .expect("spawn reshard migrator"),
                    );
                    Response::Ok(Reply::ReshardStarted {
                        kind: op.kind().to_string(),
                        source: status.source,
                        target: status.target,
                        total: status.total,
                    })
                }
                Err(e) => Response::Err(RequestError::new(ErrorCode::Linkage, e.to_string())),
            }
        }
        // Streaming requests and the protocol negotiation are served
        // inline on the connection (see `serve_streaming` and the conn
        // loops); reaching a worker means a misrouted job.
        Request::FetchCheckpoint
        | Request::Subscribe { .. }
        | Request::SubscribeMatches { .. }
        | Request::Upgrade { .. } => Response::Err(RequestError::new(
            ErrorCode::Unavailable,
            "streaming requests are handled on the connection",
        )),
        Request::Shutdown => {
            begin_shutdown(inner);
            Response::Ok(Reply::ShuttingDown)
        }
    }
}

/// Rejects a mutation on a follower with a typed redirect. Called with
/// the state write lock held, so a concurrent promote (which also takes
/// it) cannot interleave with the check-then-mutate sequence.
fn reject_if_follower(inner: &Inner) -> Option<RequestError> {
    let role = inner.repl.role.lock();
    if let ReplRole::Follower { primary_addr } = &*role {
        Some(
            RequestError::new(
                ErrorCode::NotPrimary,
                "read-only follower; send mutations to the primary",
            )
            .with_primary(primary_addr.clone()),
        )
    } else {
        None
    }
}

/// Streaming observe against the sharded index: probe the single record,
/// record matched pairs in the dedup forest, then index it.
fn observe(state: &mut ServerState, record: &Record) -> cbv_hb::error::Result<Vec<u64>> {
    let batch = std::slice::from_ref(record).to_vec();
    let (pairs, _) = state.pipeline.link(&batch)?;
    let matches: Vec<u64> = pairs.into_iter().map(|(a, _)| a).collect();
    state.pipeline.index(&batch)?;
    for &a in &matches {
        state.dedup.union(a, record.id);
        state.stream_pairs.push((a, record.id));
    }
    state.streamed += 1;
    Ok(matches)
}

/// Appends mutation ops to the WAL ahead of applying them. Called under
/// the state write lock; on failure the mutation must be rejected, not
/// applied (acknowledge-after-durable). The batch is logged
/// all-or-nothing, so a Storage error means NO record of a multi-record
/// request is durable — never a silent prefix that resurfaces at replay.
/// Returns the op sequence of the batch's last frame (the reply's
/// `applied_seq`), 0 without a store.
fn log_mutation(inner: &Inner, ops: &[WalOp]) -> Result<u64, RequestError> {
    let Some(store) = &inner.store else {
        return Ok(0);
    };
    let mut store = store.lock();
    if let Err(e) = store.append_batch(ops) {
        return Err(RequestError::new(
            ErrorCode::Storage,
            format!("wal append failed; mutation not applied: {e}"),
        ));
    }
    inner.metrics.wal_appends.add(ops.len() as u64);
    inner.metrics.wal_bytes.set(store.wal_bytes() as i64);
    Ok(store.op_seq())
}

/// Applies one recovered WAL op to the state, with the same semantics the
/// original request had.
fn apply_op(state: &mut ServerState, op: &WalOp) -> cbv_hb::error::Result<()> {
    match op {
        WalOp::Insert(record) => state.pipeline.index(std::slice::from_ref(record)),
        WalOp::Observe(record) => observe(state, record).map(|_| ()),
        WalOp::Delete(id) => state.pipeline.delete(&[*id]).map(|_| ()),
        // A cutover commit replays as a synchronous reshard at the same
        // position in the op stream it was logged at: planning is
        // deterministic, so the recomputed plan (and a split's recomputed
        // target id) matches what the primary executed.
        WalOp::Reshard {
            merge,
            source,
            target,
        } => {
            let op = if *merge {
                ReshardOp::Merge {
                    source: *source as usize,
                    target: *target as usize,
                }
            } else {
                ReshardOp::Split {
                    source: *source as usize,
                }
            };
            state.pipeline.reshard_sync(op).map(|_| ())
        }
    }
}

/// Background group-commit flusher: fsyncs the WAL on the group-commit
/// cadence even when traffic stops. Appends only check the interval
/// inline, so without this an idle server would hold the last burst of
/// acknowledged writes unsynced indefinitely — the "at most one interval
/// lost to power failure" bound would only hold under continuous traffic.
/// [`rl_store::Wal::sync`] is a no-op when nothing is pending, so the
/// idle cost is a lock acquisition per interval.
fn wal_sync_loop(inner: &Arc<Inner>, interval: Duration) {
    let tick = interval
        .min(Duration::from_millis(25))
        .max(Duration::from_millis(1));
    let mut last = Instant::now();
    while !inner.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(tick);
        if last.elapsed() < interval {
            continue;
        }
        last = Instant::now();
        if let Some(store) = &inner.store {
            if let Err(e) = store.lock().sync() {
                eprintln!("rl-server: background WAL sync failed: {e}");
            }
        }
    }
}

/// The background migrator for an online reshard: streams the source
/// shard's moved records into the target in bounded batches (no state
/// lock held — the shard workers serialize each batch against concurrent
/// mutations, which are dual-applied to both shards meanwhile), then
/// commits the cutover under the state write lock: WAL-log the
/// `Reshard` frame *first* (the commit is the only durable trace of the
/// migration — a crash before it replays to a world where the migration
/// never started), then install the new map and purge the source.
/// Shutdown or a copy failure aborts: the target's partial copy is
/// purged and the old map stays in force.
fn reshard_migrate_loop(inner: &Arc<Inner>, mut driver: ReshardDriver) {
    const BATCH: usize = 512;
    loop {
        if inner.shutdown.load(Ordering::SeqCst) {
            abort_migration(inner, "shutdown requested");
            return;
        }
        match driver.copy_batch(BATCH) {
            Ok(true) => break,
            Ok(false) => {
                let migrated = driver.migrated();
                inner.metrics.reshard_migrated.set(migrated as i64);
                let total = inner.state.read().pipeline.migration_status().total;
                inner
                    .metrics
                    .reshard_lag
                    .set(total.saturating_sub(migrated) as i64);
            }
            Err(e) => {
                eprintln!("rl-server: reshard copy failed: {e}; aborting the migration");
                abort_migration(inner, "copy failed");
                return;
            }
        }
    }
    inner.metrics.reshard_state.set(2);
    let mut state = inner.state.write();
    let status = state.pipeline.migration_status();
    let mut applied_seq = 0;
    if inner.store.is_some() {
        let commit = WalOp::Reshard {
            merge: status.kind == "merge",
            source: status.source as u64,
            target: status.target as u64,
        };
        match log_mutation(inner, &[commit]) {
            Ok(seq) => applied_seq = seq,
            Err(e) => {
                drop(state);
                eprintln!(
                    "rl-server: reshard cutover not durable ({}); aborting the migration",
                    e.message
                );
                abort_migration(inner, "cutover append failed");
                return;
            }
        }
    }
    match state.pipeline.finish_reshard(&driver) {
        Ok(epoch) => {
            inner.metrics.reshard_migrated.set(driver.migrated() as i64);
            inner.metrics.reshard_lag.set(0);
            inner.metrics.reshard_state.set(0);
            drop(state);
            if let Err(e) = crate::repl::await_quorum(inner, applied_seq) {
                eprintln!(
                    "rl-server: reshard cutover committed locally (epoch {epoch}) but the \
                     replica quorum timed out: {}",
                    e.message
                );
            }
            eprintln!(
                "rl-server: reshard {} of shard {} into {} complete: {} record(s) moved, \
                 shard map epoch {epoch}",
                status.kind, status.source, status.target, status.migrated
            );
        }
        Err(e) => {
            // The commit frame (if any) is already durable: recovery will
            // replay the reshard even though this process could not apply
            // it. Surface loudly; the index stays serving on the old map.
            drop(state);
            eprintln!("rl-server: reshard cutover failed to apply: {e}");
            abort_migration(inner, "cutover apply failed");
        }
    }
}

/// Rolls the in-flight migration back (purges the target's partial copy,
/// keeps the current map) and clears the reshard gauges.
fn abort_migration(inner: &Arc<Inner>, why: &str) {
    let mut state = inner.state.write();
    match state.pipeline.abort_reshard() {
        Ok(()) => eprintln!("rl-server: migration aborted ({why})"),
        Err(e) => eprintln!("rl-server: migration abort ({why}) failed: {e}"),
    }
    drop(state);
    inner.metrics.reshard_state.set(0);
    inner.metrics.reshard_lag.set(0);
}

/// Background blocking-store compactor: on the checkpoint cadence, merge
/// each disk-resident structure's delta overlay into a fresh generation
/// and scrub tombstones. Runs under a state *read* lock — the shard
/// workers serialize the store mutation — so probes and mutations keep
/// flowing; the checkpointer no longer does this inline.
fn compact_loop(inner: &Arc<Inner>, every: Duration) {
    let mut last = Instant::now();
    while !inner.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(25));
        if last.elapsed() < every {
            continue;
        }
        last = Instant::now();
        let state = inner.state.read();
        if let Err(e) = state.pipeline.compact_stores() {
            eprintln!("rl-server: blocking-store compaction failed: {e}");
        } else {
            inner.metrics.compactions.inc();
        }
    }
}

/// The background checkpointer: every `every`, rotate the WAL, export the
/// index, and commit a checkpoint that lets recovery skip the pruned log.
fn checkpoint_loop(inner: &Arc<Inner>, every: Duration) {
    let mut last = Instant::now();
    while !inner.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(25));
        if last.elapsed() < every {
            continue;
        }
        last = Instant::now();
        if let Err(e) = run_checkpoint(inner) {
            // A failed checkpoint costs replay time, never durability:
            // the WAL it failed to prune still holds every mutation.
            eprintln!("rl-server: checkpoint failed: {e}");
        }
    }
}

pub(crate) fn run_checkpoint(inner: &Inner) -> Result<(), rl_store::StoreError> {
    let Some(store) = &inner.store else {
        return Ok(());
    };
    // The state read lock excludes mutations (which hold write) for the
    // rotate + export window, so the exported snapshot covers exactly the
    // segments up to the rotation watermark. (Blocking-store compaction,
    // which used to run here inline, moved to its own thread — see
    // `compact_loop`.)
    let state = inner.state.read();
    // Mid-migration, moved records transiently live on two shards; an
    // exported snapshot would duplicate them forever. The lock ordering
    // makes this check stable: cutover needs the state write lock, which
    // this read lock excludes until the export is done. Skipping costs
    // replay time, never durability.
    if state.pipeline.migration_status().active {
        return Ok(());
    }
    let covered = store.lock().begin_checkpoint()?;
    let exported = state.pipeline.export_state().map_err(|e| {
        rl_store::StoreError::Snapshot(SnapshotError::Format {
            path: None,
            msg: e.to_string(),
        })
    })?;
    let snapshot = Snapshot::new(exported, state.stream_pairs.clone(), state.streamed)
        .map_err(rl_store::StoreError::Snapshot)?;
    drop(state);
    let mut store = store.lock();
    store.commit_checkpoint(snapshot, covered)?;
    inner.metrics.wal_bytes.set(store.wal_bytes() as i64);
    inner.metrics.checkpoints.inc();
    Ok(())
}

/// The follower-side driver interface: everything the `rl-repl` apply
/// loop needs from a running server, without exposing its internals.
/// Cloneable and thread-safe; holding one does not keep the server
/// running.
#[derive(Clone)]
pub struct ReplHandle {
    inner: Arc<Inner>,
}

impl ReplHandle {
    /// The node's current replication role.
    pub fn role(&self) -> ReplRole {
        self.inner.repl.role()
    }

    /// True once shutdown has begun (the apply loop should exit).
    pub fn is_shutdown(&self) -> bool {
        self.inner.shutdown.load(Ordering::SeqCst)
    }

    /// The global op sequence applied locally — what to resume a
    /// subscription from (`Subscribe { from_seq: op_seq() }`).
    pub fn op_seq(&self) -> u64 {
        self.inner
            .store
            .as_ref()
            .map(|s| s.lock().op_seq())
            .unwrap_or(0)
    }

    /// Applies one streamed WAL frame: validated, sequence-checked,
    /// write-ahead logged to the follower's own WAL (so restarts resume
    /// without re-bootstrapping), then applied to the index.
    ///
    /// # Errors
    /// [`ApplyError::Retry`] means drop the subscription and resubscribe
    /// from [`Self::op_seq`]; [`ApplyError::Resync`] means the local WAL
    /// and index disagree and the caller must re-bootstrap via
    /// [`Self::resync`]; [`ApplyError::StaleEpoch`] means the frame was
    /// written by a fenced (demoted) primary and the session must end —
    /// reconnecting to the same node will keep failing until it stands
    /// down or catches up past the current epoch.
    pub fn apply(&self, seq: u64, op: &WalOp, epoch: u64) -> Result<(), ApplyError> {
        let inner = &self.inner;
        let mut state = inner.state.write();
        if !inner.repl.role.lock().is_follower() {
            return Err(ApplyError::Retry(
                "not a follower (promoted or standalone)".into(),
            ));
        }
        let Some(store) = &inner.store else {
            return Err(ApplyError::Retry("no data directory".into()));
        };
        // Epoch fencing: a frame from an older era than this follower has
        // observed comes from a demoted primary that does not yet know it
        // lost — refusing it is what makes failover safe against split
        // brain. A newer era is legitimate news (a promotion happened);
        // adopt it durably before the frame lands in the local WAL.
        let known = inner.repl.epoch();
        if epoch < known {
            return Err(ApplyError::StaleEpoch(format!(
                "frame {seq} carries epoch {epoch} but this follower has \
                 observed epoch {known}; the sender is a fenced ex-primary"
            )));
        }
        if epoch > known {
            store
                .lock()
                .observe_epoch(epoch)
                .map_err(|e| ApplyError::Retry(format!("epoch adoption failed: {e}")))?;
            inner.repl.epoch.store(epoch, Ordering::SeqCst);
        }
        // Validate before logging (the primary's own pattern): a record
        // the local schema cannot embed must never enter the local WAL,
        // where it would fail again at every replay.
        if let WalOp::Insert(record) | WalOp::Observe(record) = op {
            if let Err(e) = state.pipeline.schema().embed(record) {
                return Err(ApplyError::Resync(format!(
                    "frame {seq} rejected by the local schema: {e}"
                )));
            }
        }
        {
            let mut store = store.lock();
            let expected = store.op_seq() + 1;
            if seq != expected {
                return Err(ApplyError::Retry(format!(
                    "sequence gap: expected op {expected}, got {seq}"
                )));
            }
            store
                .append(op)
                .map_err(|e| ApplyError::Retry(format!("wal append failed: {e}")))?;
            inner.metrics.wal_appends.add(1);
            inner.metrics.wal_bytes.set(store.wal_bytes() as i64);
        }
        // The op is durable locally from here on: resubscribing from
        // `op_seq` would skip it in memory forever (it only resurfaces at
        // a restart replay), so a failure now is not reconnectable.
        apply_op(&mut state, op)
            .map_err(|e| ApplyError::Resync(format!("apply of durable op {seq} failed: {e}")))?;
        // Followers serve match subscriptions off the replicated stream.
        match op {
            WalOp::Insert(record) | WalOp::Observe(record) => {
                inner.subs.observe(&inner.metrics, record);
            }
            WalOp::Delete(id) => inner.subs.remove(*id),
            // A reshard moves records between shards without changing the
            // record set, so subscriptions see nothing.
            WalOp::Reshard { .. } => {}
        }
        inner
            .metrics
            .indexed_records
            .set(state.pipeline.indexed_len() as i64);
        inner.metrics.streamed_records.set(state.streamed as i64);
        drop(state);
        inner.repl.applied_seq.store(seq, Ordering::SeqCst);
        let head = inner.repl.head_seq.load(Ordering::SeqCst).max(seq);
        inner
            .metrics
            .repl_lag_frames
            .set(head.saturating_sub(seq) as i64);
        Ok(())
    }

    /// Replaces the follower's entire state with a primary checkpoint
    /// (bootstrap, or a `ResyncRequired` answer): validates it, rebuilds
    /// the in-memory index from its snapshot, and resets the local data
    /// directory so the WAL resumes at the checkpoint's op watermark.
    ///
    /// # Errors
    /// An invalid checkpoint, a snapshot the pipeline cannot load, or a
    /// storage failure while resetting the data directory.
    pub fn resync(&self, ckpt: Checkpoint) -> Result<(), String> {
        ckpt.validate(None).map_err(|e| e.to_string())?;
        let inner = &self.inner;
        let mut state = inner.state.write();
        if !inner.repl.role.lock().is_follower() {
            return Err("not a follower (promoted or standalone)".into());
        }
        let Some(store) = &inner.store else {
            return Err("no data directory".into());
        };
        // Build the replacement pipeline before touching anything, so a
        // bad snapshot leaves both memory and disk untouched.
        let mut pipeline = ShardedPipeline::from_state(ckpt.snapshot.state.clone())
            .map_err(|e| format!("checkpoint snapshot rejected: {e}"))?;
        pipeline.attach_metrics(Arc::clone(&inner.metrics.pipeline));
        {
            let mut store = store.lock();
            store
                .reset_to_checkpoint(&ckpt)
                .map_err(|e| format!("data directory reset failed: {e}"))?;
            // The checkpoint may come from a newer era than any frame we
            // saw; mirror whatever the store adopted so epoch fencing
            // judges future frames against the freshest known era.
            inner.repl.epoch.store(store.epoch(), Ordering::SeqCst);
        }
        let mut dedup = UnionFind::new();
        for &(a, b) in &ckpt.snapshot.stream_pairs {
            dedup.union(a, b);
        }
        let old = std::mem::replace(
            &mut *state,
            ServerState {
                pipeline,
                dedup,
                stream_pairs: ckpt.snapshot.stream_pairs.clone(),
                streamed: ckpt.snapshot.streamed,
            },
        );
        inner
            .metrics
            .indexed_records
            .set(state.pipeline.indexed_len() as i64);
        inner.metrics.streamed_records.set(state.streamed as i64);
        drop(state);
        old.pipeline.shutdown();
        inner.repl.applied_seq.store(ckpt.ops, Ordering::SeqCst);
        let head = inner.repl.head_seq.load(Ordering::SeqCst).max(ckpt.ops);
        inner.repl.head_seq.store(head, Ordering::SeqCst);
        inner
            .metrics
            .repl_lag_frames
            .set(head.saturating_sub(ckpt.ops) as i64);
        Ok(())
    }

    /// Records the primary's head position from a stream heartbeat and
    /// refreshes the lag gauges.
    pub fn update_lag(&self, head_seq: u64, lag_bytes: u64) {
        let repl = &self.inner.repl;
        repl.head_seq.store(head_seq, Ordering::SeqCst);
        repl.lag_bytes.store(lag_bytes, Ordering::SeqCst);
        let applied = repl.applied_seq.load(Ordering::SeqCst);
        self.inner
            .metrics
            .repl_lag_frames
            .set(head_seq.saturating_sub(applied) as i64);
        self.inner.metrics.repl_lag_bytes.set(lag_bytes as i64);
    }

    /// Counts one subscription reconnect (for `rl_repl_reconnects_total`).
    pub fn note_reconnect(&self) {
        self.inner.repl.reconnects.fetch_add(1, Ordering::SeqCst);
        self.inner.metrics.repl_reconnects.inc();
    }

    /// The highest primary epoch this node has observed. Subscriptions
    /// present it so a fenced ex-primary refuses to serve them.
    pub fn epoch(&self) -> u64 {
        self.inner.repl.epoch()
    }

    /// Durably adopts a newer primary epoch learned out-of-band (a
    /// heartbeat, not a frame). Raise-only; older values are ignored.
    pub fn observe_epoch(&self, epoch: u64) -> Result<(), String> {
        if epoch <= self.inner.repl.epoch() {
            return Ok(());
        }
        let Some(store) = &self.inner.store else {
            return Err("no data directory".into());
        };
        store
            .lock()
            .observe_epoch(epoch)
            .map_err(|e| e.to_string())?;
        self.inner.repl.epoch.store(epoch, Ordering::SeqCst);
        Ok(())
    }

    /// Marks a checkpoint bootstrap/resync window. While set, `Promote`
    /// is refused with `Unavailable` — promoting a half-bootstrapped
    /// follower would crown a primary with torn state.
    pub fn set_resyncing(&self, resyncing: bool) {
        self.inner.repl.resyncing.store(resyncing, Ordering::SeqCst);
    }
}

fn write_snapshot(state: &ServerState, path: &std::path::Path) -> Result<usize, SnapshotError> {
    let exported = state
        .pipeline
        .export_state()
        .map_err(|e| SnapshotError::Format {
            path: Some(path.to_path_buf()),
            msg: e.to_string(),
        })?;
    let indexed = exported.indexed;
    Snapshot::new(exported, state.stream_pairs.clone(), state.streamed)?.save(path)?;
    Ok(indexed)
}
