//! # rl-server — a persistent network linkage service
//!
//! Turns the in-process [`cbv_hb::sharded::ShardedPipeline`] into a
//! long-running TCP service: the index is built once (or restored from a
//! snapshot) and then served to many clients over a newline-delimited
//! JSON protocol — the operational mode the paper's linkage unit implies,
//! where data custodians submit records to a central service that holds
//! the compact Hamming-space index.
//!
//! ## Pieces
//!
//! - [`protocol`] — the request/response wire types (`Index`, `Probe`,
//!   `Stream`, `DedupStatus`, `Stats`, `Metrics`, `Snapshot`, `Shutdown`).
//! - [`server`] — [`Server`]: accept loop, bounded worker pool with typed
//!   backpressure, graceful drain on shutdown.
//! - [`metrics`] — [`ServerMetrics`]: per-request-type counters and
//!   queue-wait / execution latency histograms, Prometheus-exposable.
//! - [`snapshot`] — [`Snapshot`]: atomic (temp + rename), versioned
//!   (magic + format version + schema hash) index persistence (the
//!   implementation now lives in `rl-store`; re-exported here).
//! - **durability** (protocol v4) — with a data directory
//!   ([`DurabilityConfig`], [`Server::spawn_durable`]) every mutation is
//!   write-ahead logged before its reply, checkpoints run in the
//!   background, and startup recovers the index from checkpoint + WAL
//!   tail. See `docs/STORAGE.md`.
//! - [`client`] — [`Client`]: a typed synchronous client with read/write
//!   timeouts, bounded retries for idempotent reads, and transparent
//!   `NotPrimary` redirects.
//! - [`repl`] (protocol v5) — replication roles and the primary-side
//!   checkpoint-transfer / WAL-subscription handlers; the follower loop
//!   lives in the `rl-repl` crate. See `docs/REPLICATION.md`.
//! - **subs** (protocol v6) — streaming match subscriptions:
//!   `SubscribeMatches` compiles a rule into a pruned blocking plan
//!   (`rl-streamrule`) and pushes `MatchEvent` lines through a bounded
//!   per-subscription queue; slow consumers get a typed
//!   `SubscriptionLagged` and must resubscribe. See `docs/STREAMING.md`.
//!
//! ## Loopback example
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use cbv_hb::sharded::ShardedPipeline;
//! use cbv_hb::{AttributeSpec, LinkageConfig, Record, RecordSchema, Rule};
//! use rl_server::{Client, Server, ServerConfig};
//! use textdist::Alphabet;
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let schema = RecordSchema::build(
//!     Alphabet::linkage(),
//!     vec![
//!         AttributeSpec::new("FirstName", 2, 64, false, 5),
//!         AttributeSpec::new("LastName", 2, 64, false, 5),
//!     ],
//!     &mut rng,
//! );
//! let rule = Rule::and([Rule::pred(0, 4), Rule::pred(1, 4)]);
//! let pipeline =
//!     ShardedPipeline::new(schema, LinkageConfig::rule_aware(rule), 2, &mut rng).unwrap();
//!
//! let server = Server::spawn(pipeline, ServerConfig::default()).unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! client.index(&[Record::new(1, ["JOHN", "SMITH"])]).unwrap();
//! let (pairs, _) = client.probe(&[Record::new(10, ["JON", "SMITH"])]).unwrap();
//! assert_eq!(pairs, vec![(1, 10)]);
//! client.shutdown().unwrap();
//! server.wait();
//! ```

pub mod client;
pub mod metrics;
pub mod protocol;
#[cfg(target_os = "linux")]
pub(crate) mod reactor;
pub mod repl;
pub mod server;
pub mod snapshot;
pub(crate) mod subs;

pub use client::{Client, ClientError, WatchEvent};
pub use metrics::{ReqType, ServerMetrics};
pub use protocol::{
    ErrorCode, ReplStatusReply, Reply, Request, RequestError, Response, ShardMapReply, StatsReply,
    FIRST_BINARY_VERSION, PROTOCOL_VERSION,
};
pub use repl::{ApplyError, ReplRole, ReplState};
pub use server::{DurabilityConfig, ReplHandle, Server, ServerConfig};
pub use snapshot::{Snapshot, SnapshotError, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
// Durability building blocks, re-exported for server embedders.
pub use rl_store::{Checkpoint, Store, StoreError, StoreOptions, SyncPolicy, WalOp};
// Subscription wire types (protocol v6), re-exported so clients need not
// depend on rl-streamrule directly.
pub use rl_streamrule::{LateArrival, WindowSpec};
// Reshard wire types (protocol v10), re-exported so clients need not
// depend on rl-reshard directly.
pub use rl_reshard::{MigrationStatus, RangeAssignment, ReshardOp, ShardMap};
