//! Atomic, versioned index snapshots — **moved to the `rl-store` crate**.
//!
//! The snapshot machinery became the foundation of the durability
//! subsystem (WAL + checkpoints), so it now lives in
//! [`rl_store::snapshot`]; this module re-exports the same types under
//! their historical `rl_server::snapshot` paths. Existing code keeps
//! compiling; new code should prefer the `rl-store` paths.
//!
//! Note one improvement that landed with the move: every
//! [`SnapshotError`] variant now names the offending file in its
//! `Display` output, so recovery failures are diagnosable from the
//! message alone.

pub use rl_store::snapshot::{
    schema_hash, Snapshot, SnapshotError, SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
};
