//! Atomic, versioned index snapshots.
//!
//! A snapshot is one JSON document holding the full [`ShardedState`] —
//! schema (hash coefficients included), classifier, and every shard's
//! populated blocking plan + record store — plus the server's streaming
//! side state. The header carries a format magic, a format version, and a
//! hash of the serialized schema, so a reload can reject files from a
//! different format or an incompatible index before touching any state.
//!
//! Writes are atomic: the document is written to a sibling temp file and
//! `rename`d over the destination, so a crash mid-write never corrupts an
//! existing snapshot. A writer that crashes *before* the rename leaves its
//! `<name>.tmp-<pid>-<seq>` sibling behind; the next successful [`Snapshot::save`]
//! to the same path sweeps such stale temps (only files matching the temp
//! naming pattern for that snapshot, and never one another in-process
//! writer still has in flight).

use cbv_hb::sharded::ShardedState;
use cbv_hb::RecordSchema;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Format magic: identifies a file as an rl-server snapshot.
pub const SNAPSHOT_MAGIC: &str = "RLSNAP1";

/// Current snapshot format version. Version 2 serializes the blocking
/// backend (random-sampling or covering) inside each shard's plan; version
/// 1 files predate pluggable backends and cannot be read.
pub const SNAPSHOT_VERSION: u32 = 2;

/// Errors raised while saving or loading snapshots.
#[derive(Debug)]
pub enum SnapshotError {
    /// Filesystem failure (create, write, rename, read).
    Io(std::io::Error),
    /// The file is not a snapshot, or is from an incompatible format
    /// version, or its schema hash does not match its schema.
    Format(String),
    /// JSON (de)serialization failure.
    Serde(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O: {e}"),
            SnapshotError::Format(msg) => write!(f, "snapshot format: {msg}"),
            SnapshotError::Serde(msg) => write!(f, "snapshot encoding: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// The on-disk snapshot document.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Snapshot {
    /// Must equal [`SNAPSHOT_MAGIC`].
    pub magic: String,
    /// Must equal [`SNAPSHOT_VERSION`].
    pub version: u32,
    /// FNV-1a hash of the serialized schema, hex-encoded. Verified on
    /// load so a snapshot cannot silently pair records with the wrong
    /// embedding coefficients.
    pub schema_hash: String,
    /// The sharded pipeline state.
    pub state: ShardedState,
    /// Matched pairs accumulated by `Stream` requests (rebuilds the
    /// dedup union-find on restore).
    pub stream_pairs: Vec<(u64, u64)>,
    /// Records observed through `Stream`.
    pub streamed: u64,
}

/// Hex-encoded FNV-1a 64 over the schema's canonical JSON form. The serde
/// shim serializes maps with sorted keys, so the encoding is deterministic
/// for equal schemas.
pub fn schema_hash(schema: &RecordSchema) -> Result<String, SnapshotError> {
    let json = serde_json::to_string(schema).map_err(|e| SnapshotError::Serde(e.to_string()))?;
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in json.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    Ok(format!("{hash:016x}"))
}

impl Snapshot {
    /// Wraps a pipeline state into a versioned snapshot document.
    pub fn new(
        state: ShardedState,
        stream_pairs: Vec<(u64, u64)>,
        streamed: u64,
    ) -> Result<Self, SnapshotError> {
        Ok(Self {
            magic: SNAPSHOT_MAGIC.to_string(),
            version: SNAPSHOT_VERSION,
            schema_hash: schema_hash(&state.schema)?,
            state,
            stream_pairs,
            streamed,
        })
    }

    /// Writes the snapshot atomically: serialize to `<path>.tmp`, then
    /// rename over `path`. Readers either see the old complete snapshot or
    /// the new complete snapshot, never a torn write.
    pub fn save(&self, path: &Path) -> Result<(), SnapshotError> {
        let json = serde_json::to_string(self).map_err(|e| SnapshotError::Serde(e.to_string()))?;
        let tmp = temp_sibling(path);
        in_flight().lock().unwrap().insert(tmp.clone());
        let result = (|| -> Result<(), SnapshotError> {
            {
                let mut file = std::fs::File::create(&tmp)?;
                file.write_all(json.as_bytes())?;
                file.write_all(b"\n")?;
                file.sync_all()?;
            }
            if let Err(e) = std::fs::rename(&tmp, path) {
                let _ = std::fs::remove_file(&tmp);
                return Err(e.into());
            }
            Ok(())
        })();
        in_flight().lock().unwrap().remove(&tmp);
        if result.is_ok() {
            sweep_stale_temps(path);
        }
        result
    }

    /// Loads and validates a snapshot: magic, version, and schema hash
    /// must all check out.
    pub fn load(path: &Path) -> Result<Self, SnapshotError> {
        let json = std::fs::read_to_string(path)?;
        let snapshot: Snapshot =
            serde_json::from_str(&json).map_err(|e| SnapshotError::Serde(e.to_string()))?;
        if snapshot.magic != SNAPSHOT_MAGIC {
            return Err(SnapshotError::Format(format!(
                "bad magic {:?} (expected {SNAPSHOT_MAGIC:?})",
                snapshot.magic
            )));
        }
        if snapshot.version != SNAPSHOT_VERSION {
            let hint = if snapshot.version < SNAPSHOT_VERSION {
                "; the file predates the blocking-backend field — re-index and snapshot again"
            } else {
                ""
            };
            return Err(SnapshotError::Format(format!(
                "unsupported version {} (this build reads {SNAPSHOT_VERSION}){hint}",
                snapshot.version
            )));
        }
        let actual = schema_hash(&snapshot.state.schema)?;
        if actual != snapshot.schema_hash {
            return Err(SnapshotError::Format(format!(
                "schema hash mismatch: header {} vs content {actual}",
                snapshot.schema_hash
            )));
        }
        Ok(snapshot)
    }
}

/// A temp path next to the destination, so the final rename stays on one
/// filesystem (rename across mount points is not atomic — or possible).
/// The name carries the pid plus a process-wide sequence number: two
/// concurrent `Snapshot` requests (workers hold only a read lock) must not
/// share a temp file, or one truncates the other mid-write and the rename
/// publishes a partial document.
fn temp_sibling(path: &Path) -> std::path::PathBuf {
    static TEMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = TEMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let mut name = snapshot_file_name(path);
    name.push_str(&format!(".tmp-{}-{seq}", std::process::id()));
    path.with_file_name(name)
}

fn snapshot_file_name(path: &Path) -> String {
    path.file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "snapshot".to_string())
}

/// Temp paths this process is currently writing. The sweep must skip them:
/// `Snapshot` requests run under a read lock, so two in-process saves to
/// the same path can overlap, and a finishing save must not delete the
/// other's half-written temp.
fn in_flight() -> &'static Mutex<HashSet<PathBuf>> {
    static IN_FLIGHT: std::sync::OnceLock<Mutex<HashSet<PathBuf>>> = std::sync::OnceLock::new();
    IN_FLIGHT.get_or_init(|| Mutex::new(HashSet::new()))
}

/// True when `candidate` is `<snapshot-name>.tmp-<digits>-<digits>` — the
/// exact shape [`temp_sibling`] produces for this snapshot. Anything else
/// (the snapshot itself, other snapshots' temps, unrelated files) is left
/// alone.
fn is_stale_temp_name(candidate: &str, snapshot_name: &str) -> bool {
    let Some(rest) = candidate
        .strip_prefix(snapshot_name)
        .and_then(|r| r.strip_prefix(".tmp-"))
    else {
        return false;
    };
    let mut parts = rest.splitn(2, '-');
    let (Some(pid), Some(seq)) = (parts.next(), parts.next()) else {
        return false;
    };
    !pid.is_empty()
        && !seq.is_empty()
        && pid.bytes().all(|b| b.is_ascii_digit())
        && seq.bytes().all(|b| b.is_ascii_digit())
}

/// Removes temp siblings left behind by writers that crashed between
/// `File::create` and `rename`. Best-effort: sweep failures never fail the
/// save that triggered them.
fn sweep_stale_temps(path: &Path) {
    let Some(dir) = path.parent() else { return };
    let dir = if dir.as_os_str().is_empty() {
        Path::new(".")
    } else {
        dir
    };
    let snapshot_name = snapshot_file_name(path);
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let candidates: Vec<PathBuf> = entries
        .flatten()
        .filter(|e| is_stale_temp_name(&e.file_name().to_string_lossy(), &snapshot_name))
        .map(|e| e.path())
        .collect();
    if candidates.is_empty() {
        return;
    }
    // Check liveness under the lock *after* listing: a temp registered
    // while we iterated is then guaranteed visible here, so a concurrent
    // in-process save can never lose its half-written file.
    let live = in_flight().lock().unwrap();
    for path in candidates {
        if !live.contains(&path) {
            let _ = std::fs::remove_file(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbv_hb::sharded::ShardedPipeline;
    use cbv_hb::{AttributeSpec, LinkageConfig, Record, Rule};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use textdist::Alphabet;

    fn sample_state() -> ShardedState {
        let mut rng = StdRng::seed_from_u64(3);
        let schema = RecordSchema::build(
            Alphabet::linkage(),
            vec![
                AttributeSpec::new("FirstName", 2, 15, false, 5),
                AttributeSpec::new("LastName", 2, 15, false, 5),
            ],
            &mut rng,
        );
        let rule = Rule::and([Rule::pred(0, 4), Rule::pred(1, 4)]);
        let mut p =
            ShardedPipeline::new(schema, LinkageConfig::rule_aware(rule), 2, &mut rng).unwrap();
        p.index(&[
            Record::new(1, ["JOHN", "SMITH"]),
            Record::new(2, ["MARY", "JONES"]),
        ])
        .unwrap();
        let state = p.export_state().unwrap();
        p.shutdown();
        state
    }

    #[test]
    fn save_load_roundtrip() {
        let state = sample_state();
        let dir = std::env::temp_dir().join("rl-server-snap-test-roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.snap");
        let snap = Snapshot::new(state, vec![(1, 2)], 3).unwrap();
        snap.save(&path).unwrap();
        let loaded = Snapshot::load(&path).unwrap();
        assert_eq!(loaded.stream_pairs, vec![(1, 2)]);
        assert_eq!(loaded.streamed, 3);
        assert_eq!(loaded.state.indexed, 2);
        // The restored pipeline must answer probes like the original.
        let p = ShardedPipeline::from_state(loaded.state).unwrap();
        let (m, _) = p.link(&[Record::new(10, ["JON", "SMITH"])]).unwrap();
        assert_eq!(m, vec![(1, 10)]);
        p.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rejects_bad_magic_version_and_hash() {
        let state = sample_state();
        let dir = std::env::temp_dir().join("rl-server-snap-test-reject");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.snap");
        let good = Snapshot::new(state, vec![], 0).unwrap();

        let mut bad = good.clone();
        bad.magic = "NOTASNAP".into();
        bad.save(&path).unwrap();
        assert!(matches!(
            Snapshot::load(&path),
            Err(SnapshotError::Format(_))
        ));

        let mut bad = good.clone();
        bad.version = SNAPSHOT_VERSION + 1;
        bad.save(&path).unwrap();
        assert!(matches!(
            Snapshot::load(&path),
            Err(SnapshotError::Format(_))
        ));

        let mut bad = good.clone();
        bad.schema_hash = "0".repeat(16);
        bad.save(&path).unwrap();
        assert!(matches!(
            Snapshot::load(&path),
            Err(SnapshotError::Format(_))
        ));

        good.save(&path).unwrap();
        assert!(Snapshot::load(&path).is_ok());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn version_1_snapshot_rejected_with_backend_hint() {
        // A pre-backend snapshot (version 1) must fail with an error that
        // tells the operator why the file is unreadable, not a generic
        // deserialization failure.
        let state = sample_state();
        let dir = std::env::temp_dir().join("rl-server-snap-test-v1");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.snap");
        let mut old = Snapshot::new(state, vec![], 0).unwrap();
        old.version = 1;
        old.save(&path).unwrap();
        match Snapshot::load(&path) {
            Err(SnapshotError::Format(msg)) => {
                assert!(msg.contains("unsupported version 1"), "{msg}");
                assert!(msg.contains("predates the blocking-backend field"), "{msg}");
            }
            other => panic!("expected format error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_is_atomic_no_temp_left_behind() {
        let state = sample_state();
        let dir = std::env::temp_dir().join("rl-server-snap-test-atomic");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.snap");
        Snapshot::new(state, vec![], 0)
            .unwrap()
            .save(&path)
            .unwrap();
        let entries: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(entries, vec!["index.snap"]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_temps_are_swept_on_next_save() {
        // Regression: a writer that crashed between File::create and rename
        // left `<name>.tmp-<pid>-<seq>` siblings behind forever.
        let state = sample_state();
        let dir = std::env::temp_dir().join("rl-server-snap-test-sweep");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.snap");
        // Simulate two crashed writers (a dead pid and this pid).
        std::fs::write(dir.join("index.snap.tmp-99999-0"), "partial").unwrap();
        std::fs::write(dir.join("index.snap.tmp-1234-7"), "partial").unwrap();
        // Non-matching siblings must survive the sweep.
        std::fs::write(dir.join("other.snap.tmp-1-1"), "keep").unwrap();
        std::fs::write(dir.join("index.snap.tmp-abc-1"), "keep").unwrap();
        std::fs::write(dir.join("index.snap.backup"), "keep").unwrap();

        Snapshot::new(state, vec![], 0)
            .unwrap()
            .save(&path)
            .unwrap();

        let mut entries: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        entries.sort();
        assert_eq!(
            entries,
            vec![
                "index.snap",
                "index.snap.backup",
                "index.snap.tmp-abc-1",
                "other.snap.tmp-1-1"
            ]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_temp_name_matching() {
        assert!(is_stale_temp_name("a.snap.tmp-12-0", "a.snap"));
        assert!(is_stale_temp_name("a.snap.tmp-12-345", "a.snap"));
        // The snapshot itself and lookalikes are never candidates.
        assert!(!is_stale_temp_name("a.snap", "a.snap"));
        assert!(!is_stale_temp_name("a.snap.tmp-", "a.snap"));
        assert!(!is_stale_temp_name("a.snap.tmp-12", "a.snap"));
        assert!(!is_stale_temp_name("a.snap.tmp-12-", "a.snap"));
        assert!(!is_stale_temp_name("a.snap.tmp-x-1", "a.snap"));
        assert!(!is_stale_temp_name("a.snap.tmp-1-2-3", "a.snap"));
        assert!(!is_stale_temp_name("b.snap.tmp-1-2", "a.snap"));
    }

    #[test]
    fn concurrent_saves_do_not_clobber_each_other() {
        // Two overlapping in-process saves to one path: both must land a
        // complete document (the in-flight set keeps the sweep off live
        // temps).
        let state = sample_state();
        let dir = std::env::temp_dir().join("rl-server-snap-test-concurrent");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.snap");
        let snap = Snapshot::new(state, vec![], 0).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| snap.save(&path).unwrap());
            }
        });
        assert!(Snapshot::load(&path).is_ok());
        let entries: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(entries, vec!["index.snap"], "no temps left behind");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn schema_hash_is_stable_and_discriminating() {
        let state_a = sample_state();
        let state_b = sample_state(); // same seed → identical schema
        let ha = schema_hash(&state_a.schema).unwrap();
        assert_eq!(ha, schema_hash(&state_b.schema).unwrap());
        let mut rng = StdRng::seed_from_u64(99);
        let other = RecordSchema::build(
            Alphabet::linkage(),
            vec![AttributeSpec::new("X", 2, 20, false, 5)],
            &mut rng,
        );
        assert_ne!(ha, schema_hash(&other).unwrap());
    }
}
