//! Atomic, versioned index snapshots.
//!
//! A snapshot is one JSON document holding the full [`ShardedState`] —
//! schema (hash coefficients included), classifier, and every shard's
//! populated blocking plan + record store — plus the server's streaming
//! side state. The header carries a format magic, a format version, and a
//! hash of the serialized schema, so a reload can reject files from a
//! different format or an incompatible index before touching any state.
//!
//! Writes are atomic: the document is written to a sibling temp file and
//! `rename`d over the destination, so a crash mid-write never corrupts an
//! existing snapshot.

use cbv_hb::sharded::ShardedState;
use cbv_hb::RecordSchema;
use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::Path;

/// Format magic: identifies a file as an rl-server snapshot.
pub const SNAPSHOT_MAGIC: &str = "RLSNAP1";

/// Current snapshot format version. Version 2 serializes the blocking
/// backend (random-sampling or covering) inside each shard's plan; version
/// 1 files predate pluggable backends and cannot be read.
pub const SNAPSHOT_VERSION: u32 = 2;

/// Errors raised while saving or loading snapshots.
#[derive(Debug)]
pub enum SnapshotError {
    /// Filesystem failure (create, write, rename, read).
    Io(std::io::Error),
    /// The file is not a snapshot, or is from an incompatible format
    /// version, or its schema hash does not match its schema.
    Format(String),
    /// JSON (de)serialization failure.
    Serde(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O: {e}"),
            SnapshotError::Format(msg) => write!(f, "snapshot format: {msg}"),
            SnapshotError::Serde(msg) => write!(f, "snapshot encoding: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// The on-disk snapshot document.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Snapshot {
    /// Must equal [`SNAPSHOT_MAGIC`].
    pub magic: String,
    /// Must equal [`SNAPSHOT_VERSION`].
    pub version: u32,
    /// FNV-1a hash of the serialized schema, hex-encoded. Verified on
    /// load so a snapshot cannot silently pair records with the wrong
    /// embedding coefficients.
    pub schema_hash: String,
    /// The sharded pipeline state.
    pub state: ShardedState,
    /// Matched pairs accumulated by `Stream` requests (rebuilds the
    /// dedup union-find on restore).
    pub stream_pairs: Vec<(u64, u64)>,
    /// Records observed through `Stream`.
    pub streamed: u64,
}

/// Hex-encoded FNV-1a 64 over the schema's canonical JSON form. The serde
/// shim serializes maps with sorted keys, so the encoding is deterministic
/// for equal schemas.
pub fn schema_hash(schema: &RecordSchema) -> Result<String, SnapshotError> {
    let json = serde_json::to_string(schema).map_err(|e| SnapshotError::Serde(e.to_string()))?;
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in json.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    Ok(format!("{hash:016x}"))
}

impl Snapshot {
    /// Wraps a pipeline state into a versioned snapshot document.
    pub fn new(
        state: ShardedState,
        stream_pairs: Vec<(u64, u64)>,
        streamed: u64,
    ) -> Result<Self, SnapshotError> {
        Ok(Self {
            magic: SNAPSHOT_MAGIC.to_string(),
            version: SNAPSHOT_VERSION,
            schema_hash: schema_hash(&state.schema)?,
            state,
            stream_pairs,
            streamed,
        })
    }

    /// Writes the snapshot atomically: serialize to `<path>.tmp`, then
    /// rename over `path`. Readers either see the old complete snapshot or
    /// the new complete snapshot, never a torn write.
    pub fn save(&self, path: &Path) -> Result<(), SnapshotError> {
        let json = serde_json::to_string(self).map_err(|e| SnapshotError::Serde(e.to_string()))?;
        let tmp = temp_sibling(path);
        {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(json.as_bytes())?;
            file.write_all(b"\n")?;
            file.sync_all()?;
        }
        if let Err(e) = std::fs::rename(&tmp, path) {
            let _ = std::fs::remove_file(&tmp);
            return Err(e.into());
        }
        Ok(())
    }

    /// Loads and validates a snapshot: magic, version, and schema hash
    /// must all check out.
    pub fn load(path: &Path) -> Result<Self, SnapshotError> {
        let json = std::fs::read_to_string(path)?;
        let snapshot: Snapshot =
            serde_json::from_str(&json).map_err(|e| SnapshotError::Serde(e.to_string()))?;
        if snapshot.magic != SNAPSHOT_MAGIC {
            return Err(SnapshotError::Format(format!(
                "bad magic {:?} (expected {SNAPSHOT_MAGIC:?})",
                snapshot.magic
            )));
        }
        if snapshot.version != SNAPSHOT_VERSION {
            let hint = if snapshot.version < SNAPSHOT_VERSION {
                "; the file predates the blocking-backend field — re-index and snapshot again"
            } else {
                ""
            };
            return Err(SnapshotError::Format(format!(
                "unsupported version {} (this build reads {SNAPSHOT_VERSION}){hint}",
                snapshot.version
            )));
        }
        let actual = schema_hash(&snapshot.state.schema)?;
        if actual != snapshot.schema_hash {
            return Err(SnapshotError::Format(format!(
                "schema hash mismatch: header {} vs content {actual}",
                snapshot.schema_hash
            )));
        }
        Ok(snapshot)
    }
}

/// A temp path next to the destination, so the final rename stays on one
/// filesystem (rename across mount points is not atomic — or possible).
/// The name carries the pid plus a process-wide sequence number: two
/// concurrent `Snapshot` requests (workers hold only a read lock) must not
/// share a temp file, or one truncates the other mid-write and the rename
/// publishes a partial document.
fn temp_sibling(path: &Path) -> std::path::PathBuf {
    static TEMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = TEMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let mut name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "snapshot".to_string());
    name.push_str(&format!(".tmp-{}-{seq}", std::process::id()));
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbv_hb::sharded::ShardedPipeline;
    use cbv_hb::{AttributeSpec, LinkageConfig, Record, Rule};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use textdist::Alphabet;

    fn sample_state() -> ShardedState {
        let mut rng = StdRng::seed_from_u64(3);
        let schema = RecordSchema::build(
            Alphabet::linkage(),
            vec![
                AttributeSpec::new("FirstName", 2, 15, false, 5),
                AttributeSpec::new("LastName", 2, 15, false, 5),
            ],
            &mut rng,
        );
        let rule = Rule::and([Rule::pred(0, 4), Rule::pred(1, 4)]);
        let mut p =
            ShardedPipeline::new(schema, LinkageConfig::rule_aware(rule), 2, &mut rng).unwrap();
        p.index(&[
            Record::new(1, ["JOHN", "SMITH"]),
            Record::new(2, ["MARY", "JONES"]),
        ])
        .unwrap();
        let state = p.export_state().unwrap();
        p.shutdown();
        state
    }

    #[test]
    fn save_load_roundtrip() {
        let state = sample_state();
        let dir = std::env::temp_dir().join("rl-server-snap-test-roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.snap");
        let snap = Snapshot::new(state, vec![(1, 2)], 3).unwrap();
        snap.save(&path).unwrap();
        let loaded = Snapshot::load(&path).unwrap();
        assert_eq!(loaded.stream_pairs, vec![(1, 2)]);
        assert_eq!(loaded.streamed, 3);
        assert_eq!(loaded.state.indexed, 2);
        // The restored pipeline must answer probes like the original.
        let p = ShardedPipeline::from_state(loaded.state).unwrap();
        let (m, _) = p.link(&[Record::new(10, ["JON", "SMITH"])]).unwrap();
        assert_eq!(m, vec![(1, 10)]);
        p.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rejects_bad_magic_version_and_hash() {
        let state = sample_state();
        let dir = std::env::temp_dir().join("rl-server-snap-test-reject");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.snap");
        let good = Snapshot::new(state, vec![], 0).unwrap();

        let mut bad = good.clone();
        bad.magic = "NOTASNAP".into();
        bad.save(&path).unwrap();
        assert!(matches!(
            Snapshot::load(&path),
            Err(SnapshotError::Format(_))
        ));

        let mut bad = good.clone();
        bad.version = SNAPSHOT_VERSION + 1;
        bad.save(&path).unwrap();
        assert!(matches!(
            Snapshot::load(&path),
            Err(SnapshotError::Format(_))
        ));

        let mut bad = good.clone();
        bad.schema_hash = "0".repeat(16);
        bad.save(&path).unwrap();
        assert!(matches!(
            Snapshot::load(&path),
            Err(SnapshotError::Format(_))
        ));

        good.save(&path).unwrap();
        assert!(Snapshot::load(&path).is_ok());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn version_1_snapshot_rejected_with_backend_hint() {
        // A pre-backend snapshot (version 1) must fail with an error that
        // tells the operator why the file is unreadable, not a generic
        // deserialization failure.
        let state = sample_state();
        let dir = std::env::temp_dir().join("rl-server-snap-test-v1");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.snap");
        let mut old = Snapshot::new(state, vec![], 0).unwrap();
        old.version = 1;
        old.save(&path).unwrap();
        match Snapshot::load(&path) {
            Err(SnapshotError::Format(msg)) => {
                assert!(msg.contains("unsupported version 1"), "{msg}");
                assert!(msg.contains("predates the blocking-backend field"), "{msg}");
            }
            other => panic!("expected format error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_is_atomic_no_temp_left_behind() {
        let state = sample_state();
        let dir = std::env::temp_dir().join("rl-server-snap-test-atomic");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.snap");
        Snapshot::new(state, vec![], 0)
            .unwrap()
            .save(&path)
            .unwrap();
        let entries: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(entries, vec!["index.snap"]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn schema_hash_is_stable_and_discriminating() {
        let state_a = sample_state();
        let state_b = sample_state(); // same seed → identical schema
        let ha = schema_hash(&state_a.schema).unwrap();
        assert_eq!(ha, schema_hash(&state_b.schema).unwrap());
        let mut rng = StdRng::seed_from_u64(99);
        let other = RecordSchema::build(
            Alphabet::linkage(),
            vec![AttributeSpec::new("X", 2, 20, false, 5)],
            &mut rng,
        );
        assert_ne!(ha, schema_hash(&other).unwrap());
    }
}
