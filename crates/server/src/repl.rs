//! Primary-side replication: roles, shared replication state, and the
//! streaming `FetchCheckpoint` / `Subscribe` handlers.
//!
//! Replication ships the durable WAL. A subscription is served straight
//! off the data directory — the sender opens the retained segments with
//! [`rl_store::WalReader`] and tails them — so a follower only ever
//! receives frames that are already on the primary's disk, and the sender
//! needs no registration in the append path (mutations never block on a
//! slow follower). The cost is a small polling latency (the
//! [`SUBSCRIBE_POLL`] interval) between an append landing and the frame
//! going out.
//!
//! The follower half (bootstrap, apply loop, reconnect/backoff, promote
//! helpers) lives in the `rl-repl` crate, driving the server through
//! [`crate::server::ReplHandle`].

use crate::protocol::{wire, ErrorCode, Reply, RequestError, Response};
use crate::server::{run_checkpoint, ConnWriter, Inner};
use parking_lot::Mutex;
use rl_store::{scan_segments, segment_path, StoreError, WalReader, CHECKPOINT_FILE};
use rl_wire::FrameReader;
use std::collections::HashMap;
use std::net::TcpStream;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How often an idle subscription emits a [`Reply::Heartbeat`].
pub const HEARTBEAT_EVERY: Duration = Duration::from_millis(500);

/// How often the sender re-polls the active segment when caught up.
const SUBSCRIBE_POLL: Duration = Duration::from_millis(20);

/// Raw bytes per checkpoint chunk (before base64 expansion).
const CHECKPOINT_CHUNK: usize = 192 * 1024;

/// If a follower stops draining its socket for this long, the sender
/// drops the connection rather than blocking a thread forever.
const SUBSCRIBE_WRITE_TIMEOUT: Duration = Duration::from_secs(10);

/// Why [`crate::server::ReplHandle::apply`] rejected a streamed frame,
/// split by what the follower's apply loop must do about it.
#[derive(Debug)]
pub enum ApplyError {
    /// Transient or ordering problem (sequence gap, local WAL write
    /// failure, role flip): drop the subscription and resubscribe from
    /// [`crate::server::ReplHandle::op_seq`]. Nothing was made durable,
    /// so resuming from the durable position loses nothing.
    Retry(String),
    /// The local WAL and the in-memory index disagree (an op the primary
    /// validated was rejected here, or an op already durable locally
    /// failed to apply): resubscribing from `op_seq` would either loop on
    /// the same frame or silently skip a durable op forever. Only a fresh
    /// checkpoint re-bootstrap ([`crate::server::ReplHandle::resync`])
    /// restores a consistent pair.
    Resync(String),
    /// The frame's epoch is below what this follower has already seen
    /// (protocol v8): a demoted or restarted old primary's zombie stream.
    /// Nothing was applied. Drop the subscription and keep backing off —
    /// reconnects keep failing until the sender is fenced or a lease
    /// election installs a new primary.
    StaleEpoch(String),
}

impl std::fmt::Display for ApplyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApplyError::Retry(msg) | ApplyError::Resync(msg) | ApplyError::StaleEpoch(msg) => {
                f.write_str(msg)
            }
        }
    }
}

impl std::error::Error for ApplyError {}

/// What a node is in the replication topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplRole {
    /// Not replicating: mutations accepted, `Subscribe` rejected. The
    /// default, and the only role available without a data directory.
    Standalone,
    /// Accepts mutations and serves checkpoint transfers + WAL
    /// subscriptions to followers.
    Primary,
    /// Read-only: applies the primary's WAL stream, redirects mutations
    /// with a typed `NotPrimary { primary_addr }` error. Flips to
    /// `Primary` on `Promote`.
    Follower {
        /// Where mutations should go instead (the redirect target).
        primary_addr: String,
    },
}

impl ReplRole {
    /// True for [`ReplRole::Primary`].
    pub fn is_primary(&self) -> bool {
        matches!(self, ReplRole::Primary)
    }

    /// True for [`ReplRole::Follower`].
    pub fn is_follower(&self) -> bool {
        matches!(self, ReplRole::Follower { .. })
    }

    /// The role's wire label (`ReplStatus.role`).
    pub fn label(&self) -> &'static str {
        match self {
            ReplRole::Standalone => "standalone",
            ReplRole::Primary => "primary",
            ReplRole::Follower { .. } => "follower",
        }
    }
}

/// Shared replication state hanging off the server. The role is the only
/// mutexed field (promote flips it under the state write lock); the
/// counters are atomics so status reads and gauge updates never contend
/// with the apply path.
///
/// Lock order: `state` → `role` → `store` — promote takes all three in
/// that order, the apply path takes `state` then `role` then `store`, and
/// mutation serving takes `state` then `role`.
pub struct ReplState {
    pub(crate) role: Mutex<ReplRole>,
    /// Newest primary op sequence this node knows of (followers: from the
    /// subscription stream).
    pub(crate) head_seq: AtomicU64,
    /// Global op sequence applied locally (mirrors the store's `op_seq`;
    /// kept as an atomic so lag math never needs the store lock).
    pub(crate) applied_seq: AtomicU64,
    /// WAL bytes between this follower's position and the primary head.
    pub(crate) lag_bytes: AtomicU64,
    /// Subscription reconnects since startup.
    pub(crate) reconnects: AtomicU64,
    /// Live `Subscribe` streams served (primaries).
    pub(crate) followers: AtomicU64,
    /// The node's primary epoch (protocol v8): mirrors the store's epoch
    /// so role/staleness checks never need the store lock. Bumped by
    /// promote, raised by followers adopting stream epochs.
    pub(crate) epoch: AtomicU64,
    /// Set while a follower replaces its state from a fetched checkpoint
    /// (bootstrap / resync, including the network transfer). Promote
    /// refuses with `Unavailable` while it is up rather than racing the
    /// recovery load.
    pub(crate) resyncing: AtomicBool,
    /// Per-subscription durable positions reported by follower acks
    /// ([`wire::TAG_ACK`]), keyed by [`FollowerGuard`] id. Quorum writes
    /// wait on `ack_cv` until enough entries reach their seq.
    /// (std primitives: the vendored `parking_lot` shim has no condvar.)
    pub(crate) acks: std::sync::Mutex<HashMap<u64, u64>>,
    pub(crate) ack_cv: std::sync::Condvar,
    next_follower_id: AtomicU64,
}

impl ReplState {
    pub(crate) fn new(role: ReplRole, applied_seq: u64, epoch: u64) -> Self {
        Self {
            role: Mutex::new(role),
            head_seq: AtomicU64::new(applied_seq),
            applied_seq: AtomicU64::new(applied_seq),
            lag_bytes: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
            followers: AtomicU64::new(0),
            epoch: AtomicU64::new(epoch),
            resyncing: AtomicBool::new(false),
            acks: std::sync::Mutex::new(HashMap::new()),
            ack_cv: std::sync::Condvar::new(),
            next_follower_id: AtomicU64::new(1),
        }
    }

    /// The node's current role.
    pub fn role(&self) -> ReplRole {
        self.role.lock().clone()
    }

    /// The node's current primary epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }
}

/// Records one follower's durable position and wakes quorum waiters.
pub(crate) fn publish_ack(inner: &Inner, follower_id: u64, seq: u64) {
    let mut acks = inner.repl.acks.lock().unwrap_or_else(|e| e.into_inner());
    let slot = acks.entry(follower_id).or_insert(0);
    if seq <= *slot {
        return;
    }
    *slot = seq;
    drop(acks);
    inner.repl.ack_cv.notify_all();
}

/// Blocks until `sync_replicas` followers have acked durability through
/// `seq`, or the quorum timeout passes. Called *after* the local
/// append+apply released the state lock: the mutation IS durable locally
/// either way; a timeout only means its replication is unconfirmed.
pub(crate) fn await_quorum(inner: &Inner, seq: u64) -> Result<(), RequestError> {
    let need = inner.config.sync_replicas;
    if need == 0 || seq == 0 || inner.store.is_none() {
        return Ok(());
    }
    if !inner.repl.role.lock().is_primary() {
        return Ok(());
    }
    let deadline = Instant::now() + inner.config.quorum_timeout;
    let mut acks = inner.repl.acks.lock().unwrap_or_else(|e| e.into_inner());
    loop {
        let confirmed = acks.values().filter(|&&s| s >= seq).count();
        if confirmed >= need {
            return Ok(());
        }
        let now = Instant::now();
        if inner.shutdown.load(Ordering::SeqCst) || now >= deadline {
            return Err(RequestError::new(
                ErrorCode::QuorumTimeout,
                format!(
                    "mutation is durable locally at op seq {seq}, but only {confirmed} of \
                     {need} replica ack(s) arrived within {:?}",
                    inner.config.quorum_timeout
                ),
            ));
        }
        let (guard, _timeout) = inner
            .repl
            .ack_cv
            .wait_timeout(acks, deadline - now)
            .unwrap_or_else(|e| e.into_inner());
        acks = guard;
    }
}

/// Serves one `FetchCheckpoint` request: meta line + base64 chunk lines.
/// A primary with no committed checkpoint takes one first, so a follower
/// can always bootstrap. Returns `Err` only when the socket died (the
/// connection is then closed); protocol-level failures are written as a
/// single error response and return `Ok`.
pub(crate) fn serve_fetch_checkpoint(
    inner: &Arc<Inner>,
    writer: &mut ConnWriter,
) -> std::io::Result<()> {
    // Same bound Subscribe uses: a follower that stops draining
    // mid-transfer must not pin this connection thread forever. Restored
    // after the transfer because (unlike Subscribe) the connection keeps
    // serving requests.
    let prev_timeout = writer.stream().write_timeout().ok().flatten();
    let _ = writer
        .stream()
        .set_write_timeout(Some(SUBSCRIBE_WRITE_TIMEOUT));
    let result = send_checkpoint(inner, writer);
    let _ = writer.stream().set_write_timeout(prev_timeout);
    result
}

fn send_checkpoint(inner: &Arc<Inner>, writer: &mut ConnWriter) -> std::io::Result<()> {
    if let Some(err) = require_primary(inner, "checkpoint transfer") {
        return writer.write_response(&Response::Err(err));
    }
    let Some(store) = &inner.store else {
        return writer.write_response(&Response::Err(RequestError::new(
            ErrorCode::Unavailable,
            "checkpoint transfer requires a data directory",
        )));
    };
    let ckpt_path = store.lock().dir().join(CHECKPOINT_FILE);
    if !ckpt_path.exists() {
        if let Err(e) = run_checkpoint(inner) {
            return writer.write_response(&Response::Err(RequestError::new(
                ErrorCode::Storage,
                format!("could not take a bootstrap checkpoint: {e}"),
            )));
        }
    }
    let bytes = match std::fs::read(&ckpt_path) {
        Ok(b) => b,
        Err(e) => {
            return writer.write_response(&Response::Err(RequestError::new(
                ErrorCode::Storage,
                format!("could not read {}: {e}", ckpt_path.display()),
            )));
        }
    };
    let chunks: Vec<&[u8]> = bytes.chunks(CHECKPOINT_CHUNK).collect();
    writer.write_response(&Response::Ok(Reply::CheckpointMeta {
        len: bytes.len() as u64,
        chunks: chunks.len() as u64,
    }))?;
    for (index, chunk) in chunks.into_iter().enumerate() {
        writer.write_chunk(index as u64, chunk)?;
    }
    Ok(())
}

/// Why a subscription stream ended.
enum StreamEnd {
    /// The requested position is outside the retained log (or a segment
    /// was pruned mid-stream); the follower must re-bootstrap.
    Resync(u64),
    /// The retained log could not be read/decoded where it must be valid.
    Corrupt(String),
    /// The follower hung up (or stopped draining for too long).
    Gone,
    /// The server is shutting down or was demoted.
    Closed,
}

/// Serves one `Subscribe { from_seq, epoch }` request: streams `WalFrame`
/// lines from the retained log, heartbeating while caught up, until
/// either side goes away. Consumes the connection.
pub(crate) fn serve_subscribe(
    inner: &Arc<Inner>,
    writer: &mut ConnWriter,
    from_seq: u64,
    epoch: u64,
) {
    if let Some(err) = require_primary(inner, "subscription") {
        let _ = writer.write_response(&Response::Err(err));
        return;
    }
    // A subscriber that has seen a higher epoch than this node proves this
    // node's primacy ended: refuse instead of streaming a stale fork.
    let our_epoch = inner.repl.epoch();
    if epoch > our_epoch {
        let _ = writer.write_response(&Response::Err(RequestError::new(
            ErrorCode::StaleEpoch,
            format!(
                "subscriber is at epoch {epoch} but this node is at {our_epoch}; \
                 this primary is stale and must stand down"
            ),
        )));
        return;
    }
    if inner.store.is_none() {
        let _ = writer.write_response(&Response::Err(RequestError::new(
            ErrorCode::Unavailable,
            "subscription requires a data directory",
        )));
        return;
    }
    let _ = writer
        .stream()
        .set_write_timeout(Some(SUBSCRIBE_WRITE_TIMEOUT));
    let guard = FollowerGuard::new(inner);
    match stream_frames(inner, writer, from_seq, guard.id) {
        StreamEnd::Resync(base_ops) => {
            let _ = writer.write_response(&Response::Ok(Reply::ResyncRequired { base_ops }));
        }
        StreamEnd::Corrupt(msg) => {
            eprintln!("rl-server: subscription aborted: {msg}");
            let _ =
                writer.write_response(&Response::Err(RequestError::new(ErrorCode::Storage, msg)));
        }
        StreamEnd::Gone | StreamEnd::Closed => {}
    }
}

/// The sender loop: position in the retained log by counting frames from
/// the checkpoint watermark, then ship every frame past `from_seq`,
/// advancing across rotations and polling the active segment's tail.
fn stream_frames(
    inner: &Arc<Inner>,
    writer: &mut ConnWriter,
    from_seq: u64,
    follower_id: u64,
) -> StreamEnd {
    let (dir, base, head) = {
        let store = inner.store.as_ref().expect("checked by caller").lock();
        (store.dir().to_path_buf(), store.base_ops(), store.op_seq())
    };
    if from_seq < base || from_seq > head {
        return StreamEnd::Resync(base);
    }
    // Binary subscribers send durability acks ([`wire::TAG_ACK`]) back up
    // this connection; poll for them on a cloned read half while caught
    // up. The short read timeout doubles as the tail-poll sleep. JSON
    // followers send no acks and keep the plain sleep.
    let mut ack_frames: Option<FrameReader<TcpStream>> = writer
        .binary_stream()
        .and_then(|s| s.try_clone().ok())
        .map(|clone| {
            let _ = clone.set_read_timeout(Some(SUBSCRIBE_POLL));
            FrameReader::new(clone)
        });
    // Tell the follower the head immediately: with no traffic it would
    // otherwise wait a full heartbeat interval to learn its lag is 0.
    if write_heartbeat(inner, writer, &dir, None).is_err() {
        return StreamEnd::Gone;
    }
    let segs = match scan_segments(&dir) {
        Ok(s) => s,
        Err(e) => return StreamEnd::Corrupt(format!("scan segments: {e}")),
    };
    let Some(&first) = segs.first() else {
        return StreamEnd::Resync(base);
    };
    // A checkpoint committing between the locked `base` read above and
    // this scan prunes segments and advances `base_ops`, so the oldest
    // segment just scanned would no longer start at op `base + 1` and
    // every label below would be wrong. `base_ops` moves (under the store
    // lock) *before* any pruning, so an unchanged value proves the scan
    // is consistent with `base`.
    let base_now = refresh_base(inner);
    if base_now != base {
        return StreamEnd::Resync(base_now);
    }
    let mut cur_seg = first;
    let mut reader = match open_segment(&dir, cur_seg) {
        Ok(r) => r,
        Err(Some(end)) => return end,
        Err(None) => return StreamEnd::Resync(refresh_base(inner)),
    };
    // Global seq of the last frame before the reader's cursor: the first
    // frame of the oldest retained segment is op `base + 1`.
    let mut last_seq = base;
    let mut next = from_seq + 1;
    let mut last_heartbeat = Instant::now();
    loop {
        if inner.shutdown.load(Ordering::SeqCst) {
            return StreamEnd::Closed;
        }
        match reader.next_frame() {
            Ok(Some(frame)) => {
                last_seq += 1;
                if last_seq >= next {
                    if writer.write_wal(last_seq, &frame.op, frame.epoch).is_err() {
                        return StreamEnd::Gone;
                    }
                    next = last_seq + 1;
                }
            }
            Ok(None) => {
                // Nothing more in this segment right now. If a later
                // segment exists the WAL rotated and this one is final.
                let later = match scan_segments(&dir) {
                    Ok(s) => s.into_iter().filter(|&s| s > cur_seg).min(),
                    Err(e) => return StreamEnd::Corrupt(format!("scan segments: {e}")),
                };
                match later {
                    Some(next_seg) => {
                        // Rotation numbers segments contiguously, so a gap
                        // means segments were pruned under us (a follower
                        // lagging past a checkpoint, still draining a
                        // deleted-but-open segment) or quarantined by
                        // recovery. Counting frames across the gap would
                        // attach the missing ops' sequence numbers to
                        // later ops — silent divergence the follower's
                        // `seq == expected` check cannot catch. Resync.
                        if next_seg != cur_seg + 1 {
                            return StreamEnd::Resync(refresh_base(inner));
                        }
                        match reader.file_len() {
                            // Fully consumed; move to the next segment.
                            Ok(len) if reader.pos() >= len => {}
                            // A rotated segment should hold only complete
                            // frames; trailing bytes we cannot decode mean
                            // this reader's view is broken — resync.
                            Ok(_) => return StreamEnd::Resync(refresh_base(inner)),
                            Err(e) => return StreamEnd::Corrupt(format!("stat segment: {e}")),
                        }
                        cur_seg = next_seg;
                        reader = match open_segment(&dir, cur_seg) {
                            Ok(r) => r,
                            Err(Some(end)) => return end,
                            Err(None) => return StreamEnd::Resync(refresh_base(inner)),
                        };
                    }
                    None => {
                        // Caught up on the active segment: heartbeat, poll.
                        if !inner.repl.role.lock().is_primary() {
                            return StreamEnd::Closed;
                        }
                        if last_heartbeat.elapsed() >= HEARTBEAT_EVERY {
                            if write_heartbeat(inner, writer, &dir, Some((cur_seg, reader.pos())))
                                .is_err()
                            {
                                return StreamEnd::Gone;
                            }
                            last_heartbeat = Instant::now();
                        }
                        match ack_frames.as_mut() {
                            // The blocking-with-timeout ack read IS the
                            // tail poll: frames wake it immediately, the
                            // timeout caps the poll latency.
                            Some(frames) => {
                                if drain_acks(inner, frames, follower_id).is_err() {
                                    return StreamEnd::Gone;
                                }
                            }
                            None => std::thread::sleep(SUBSCRIBE_POLL),
                        }
                    }
                }
            }
            Err(e) => return StreamEnd::Corrupt(format!("read frame: {e}")),
        }
    }
}

/// Drains every follower ack currently readable on the subscription's
/// read half, publishing the newest durable position for quorum waiters.
/// `Err(())` means the follower hung up or broke framing (end the
/// stream). The final read blocks up to the socket's read timeout, which
/// is what paces the caught-up tail poll.
fn drain_acks(
    inner: &Inner,
    frames: &mut FrameReader<TcpStream>,
    follower_id: u64,
) -> Result<(), ()> {
    loop {
        match frames.read_frame() {
            Ok(Some((tag, payload))) if tag == wire::TAG_ACK => {
                if let Ok(seq) = wire::decode_ack(payload) {
                    publish_ack(inner, follower_id, seq);
                }
            }
            // A subscriber must only send acks after subscribing; any
            // other tag is a framing bug with no resync point.
            Ok(Some(_)) => return Err(()),
            Ok(None) => return Err(()),
            Err(e) if e.is_would_block() => return Ok(()),
            Err(_) => return Err(()),
        }
    }
}

/// Opens a segment for tailing. `Err(None)` means the file vanished (a
/// checkpoint pruned it under us — resync); `Err(Some(end))` is a real
/// failure.
fn open_segment(dir: &Path, seg: u64) -> Result<WalReader, Option<StreamEnd>> {
    match WalReader::open(&segment_path(dir, seg)) {
        Ok(r) => Ok(r),
        Err(StoreError::Io { ref source, .. }) if source.kind() == std::io::ErrorKind::NotFound => {
            Err(None)
        }
        Err(e) => Err(Some(StreamEnd::Corrupt(format!("open segment {seg}: {e}")))),
    }
}

fn refresh_base(inner: &Inner) -> u64 {
    inner
        .store
        .as_ref()
        .map(|s| s.lock().base_ops())
        .unwrap_or(0)
}

/// Emits one heartbeat: the store's head op seq plus the byte distance
/// from the subscriber's position (`at`) to the end of the retained log.
/// `None` for `at` means the subscriber is at the head (initial greeting).
fn write_heartbeat(
    inner: &Inner,
    writer: &mut ConnWriter,
    dir: &Path,
    at: Option<(u64, u64)>,
) -> std::io::Result<()> {
    let head_seq = inner.store.as_ref().map(|s| s.lock().op_seq()).unwrap_or(0);
    let lag_bytes = match at {
        None => 0,
        Some((cur_seg, pos)) => {
            let mut lag = std::fs::metadata(segment_path(dir, cur_seg))
                .map(|m| m.len().saturating_sub(pos))
                .unwrap_or(0);
            if let Ok(segs) = scan_segments(dir) {
                for seg in segs.into_iter().filter(|&s| s > cur_seg) {
                    lag += std::fs::metadata(segment_path(dir, seg))
                        .map(|m| m.len())
                        .unwrap_or(0);
                }
            }
            lag
        }
    };
    writer.write_response(&Response::Ok(Reply::Heartbeat {
        head_seq,
        lag_bytes,
        epoch: inner.repl.epoch(),
        // The lease grant (protocol v8): a follower running with
        // --auto-failover may elect a new primary once this many
        // milliseconds pass without stream progress. 0 = no lease.
        lease_ms: inner.config.lease_ms,
    }))
}

fn require_primary(inner: &Inner, what: &str) -> Option<RequestError> {
    let role = inner.repl.role.lock();
    match &*role {
        ReplRole::Primary => None,
        ReplRole::Follower { primary_addr } => Some(
            RequestError::new(
                ErrorCode::NotPrimary,
                format!("{what} must go to the primary"),
            )
            .with_primary(primary_addr.clone()),
        ),
        ReplRole::Standalone => Some(RequestError::new(
            ErrorCode::Unavailable,
            format!("{what} requires a replicating primary (start with --allow-replicas)"),
        )),
    }
}

/// Tracks one live subscription in the followers gauge and owns its slot
/// in the quorum-ack map.
struct FollowerGuard<'a> {
    inner: &'a Arc<Inner>,
    id: u64,
}

impl<'a> FollowerGuard<'a> {
    fn new(inner: &'a Arc<Inner>) -> Self {
        let n = inner.repl.followers.fetch_add(1, Ordering::SeqCst) + 1;
        inner.metrics.repl_followers.set(n as i64);
        let id = inner.repl.next_follower_id.fetch_add(1, Ordering::SeqCst);
        Self { inner, id }
    }
}

impl Drop for FollowerGuard<'_> {
    fn drop(&mut self) {
        let n = self.inner.repl.followers.fetch_sub(1, Ordering::SeqCst) - 1;
        self.inner.metrics.repl_followers.set(n as i64);
        // Wake quorum waiters counting on this follower: its acks are
        // gone, and they should re-evaluate (and eventually time out)
        // rather than sleep the full bound.
        self.inner
            .repl
            .acks
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&self.id);
        self.inner.repl.ack_cv.notify_all();
    }
}

/// Standard base64 (RFC 4648, with padding), hand-rolled because the
/// workspace is offline and vendors no base64 crate. Only the checkpoint
/// transfer uses it; WAL frames travel as plain JSON.
pub mod b64 {
    const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

    /// Encodes `data` as standard padded base64.
    pub fn encode(data: &[u8]) -> String {
        let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
        for chunk in data.chunks(3) {
            let b = [
                chunk[0],
                chunk.get(1).copied().unwrap_or(0),
                chunk.get(2).copied().unwrap_or(0),
            ];
            let n = (u32::from(b[0]) << 16) | (u32::from(b[1]) << 8) | u32::from(b[2]);
            out.push(ALPHABET[(n >> 18) as usize & 63] as char);
            out.push(ALPHABET[(n >> 12) as usize & 63] as char);
            out.push(if chunk.len() > 1 {
                ALPHABET[(n >> 6) as usize & 63] as char
            } else {
                '='
            });
            out.push(if chunk.len() > 2 {
                ALPHABET[n as usize & 63] as char
            } else {
                '='
            });
        }
        out
    }

    /// Decodes standard padded base64.
    ///
    /// # Errors
    /// Returns a description of the first malformed quartet or symbol.
    pub fn decode(text: &str) -> Result<Vec<u8>, String> {
        let bytes = text.as_bytes();
        // Not `is_multiple_of`: that would raise the 1.75 MSRV.
        #[allow(clippy::manual_is_multiple_of)]
        if bytes.len() % 4 != 0 {
            return Err(format!(
                "base64 length {} is not a multiple of 4",
                bytes.len()
            ));
        }
        let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
        for (i, quartet) in bytes.chunks(4).enumerate() {
            let mut vals = [0u32; 4];
            let mut pad = 0usize;
            for (j, &c) in quartet.iter().enumerate() {
                if c == b'=' {
                    if j < 2 || quartet[j..].iter().any(|&x| x != b'=') {
                        return Err(format!("misplaced padding in quartet {i}"));
                    }
                    pad = 4 - j;
                    break;
                }
                vals[j] = decode_symbol(c).ok_or_else(|| {
                    format!("invalid base64 symbol {:?} in quartet {i}", c as char)
                })?;
            }
            if pad > 0 && i != bytes.len() / 4 - 1 {
                return Err(format!("padding before final quartet ({i})"));
            }
            let n = (vals[0] << 18) | (vals[1] << 12) | (vals[2] << 6) | vals[3];
            out.push((n >> 16) as u8);
            if pad < 2 {
                out.push((n >> 8) as u8);
            }
            if pad < 1 {
                out.push(n as u8);
            }
        }
        Ok(out)
    }

    fn decode_symbol(c: u8) -> Option<u32> {
        match c {
            b'A'..=b'Z' => Some(u32::from(c - b'A')),
            b'a'..=b'z' => Some(u32::from(c - b'a') + 26),
            b'0'..=b'9' => Some(u32::from(c - b'0') + 52),
            b'+' => Some(62),
            b'/' => Some(63),
            _ => None,
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn known_vectors() {
            // RFC 4648 test vectors.
            assert_eq!(encode(b""), "");
            assert_eq!(encode(b"f"), "Zg==");
            assert_eq!(encode(b"fo"), "Zm8=");
            assert_eq!(encode(b"foo"), "Zm9v");
            assert_eq!(encode(b"foob"), "Zm9vYg==");
            assert_eq!(encode(b"fooba"), "Zm9vYmE=");
            assert_eq!(encode(b"foobar"), "Zm9vYmFy");
        }

        #[test]
        fn roundtrip_all_byte_values() {
            let data: Vec<u8> = (0..=255u8).cycle().take(1021).collect();
            assert_eq!(decode(&encode(&data)).unwrap(), data);
        }

        #[test]
        fn rejects_malformed_input() {
            assert!(decode("abc").is_err(), "bad length");
            assert!(decode("ab!d").is_err(), "bad symbol");
            assert!(decode("=abc").is_err(), "leading padding");
            assert!(decode("ab=c").is_err(), "padding mid-quartet");
            assert!(decode("ab==cdef").is_err(), "padding before final quartet");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn role_predicates_and_labels() {
        let follower = ReplRole::Follower {
            primary_addr: "a:1".into(),
        };
        assert!(ReplRole::Primary.is_primary());
        assert!(!ReplRole::Primary.is_follower());
        assert!(follower.is_follower());
        assert!(!ReplRole::Standalone.is_primary());
        assert_eq!(ReplRole::Standalone.label(), "standalone");
        assert_eq!(ReplRole::Primary.label(), "primary");
        assert_eq!(follower.label(), "follower");
    }
}
