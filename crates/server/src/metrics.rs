//! Server-side observability: per-request-type counters and latency
//! histograms, merged with the pipeline's phase timers in one registry.
//!
//! Every request's latency is split into **queue wait** (enqueue →
//! worker pickup, a direct saturation signal) and **execution** (worker
//! time inside the linkage engine). Both are recorded per request type
//! into `rl-obs` log-linear histograms, so shard- or replica-level
//! snapshots merge exactly. The whole registry is served by the
//! `Metrics` request (protocol v3) and renders to Prometheus text via
//! [`rl_obs::encode_prometheus`]. See `docs/OBSERVABILITY.md`.

use crate::protocol::Request;
use cbv_hb::pipeline::PipelineMetrics;
use rl_obs::{Counter, Gauge, Histogram, MetricsSnapshot, Registry, Unit};
use std::sync::Arc;
use std::time::Duration;

/// The request types tracked by per-type metrics, in label order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqType {
    /// `Index` requests.
    Index,
    /// `Probe` requests.
    Probe,
    /// `Stream` requests.
    Stream,
    /// `DedupStatus` requests.
    DedupStatus,
    /// `Stats` requests.
    Stats,
    /// `Metrics` requests.
    Metrics,
    /// `Snapshot` requests.
    Snapshot,
    /// `Insert` requests (durable insert, protocol v4).
    Insert,
    /// `Delete` requests (durable tombstone delete, protocol v4).
    Delete,
    /// `Shutdown` requests (handled inline, so they never acquire
    /// queue-wait samples; the counter still tracks them).
    Shutdown,
    /// `FetchCheckpoint` requests (protocol v5; streamed inline on the
    /// connection, so no queue-wait/exec samples).
    FetchCheckpoint,
    /// `Subscribe` requests (protocol v5; streamed inline on the
    /// connection, so no queue-wait/exec samples).
    Subscribe,
    /// `ReplStatus` requests (protocol v5).
    ReplStatus,
    /// `Promote` requests (protocol v5).
    Promote,
    /// `SubscribeMatches` requests (protocol v6; streamed inline on the
    /// connection, so no queue-wait/exec samples).
    SubscribeMatches,
    /// `Unsubscribe` requests (protocol v6).
    Unsubscribe,
    /// `Upgrade` requests (protocol v7 binary-wire negotiation; handled
    /// inline on the connection, so no queue-wait/exec samples).
    Upgrade,
    /// `GetShardMap` requests (protocol v10).
    GetShardMap,
    /// `Reshard` requests (protocol v10).
    Reshard,
    /// `MigrationStatus` requests (protocol v10).
    MigrationStatus,
}

/// All request types, in the order used for per-type metric arrays.
pub const REQ_TYPES: [ReqType; 20] = [
    ReqType::Index,
    ReqType::Probe,
    ReqType::Stream,
    ReqType::DedupStatus,
    ReqType::Stats,
    ReqType::Metrics,
    ReqType::Snapshot,
    ReqType::Insert,
    ReqType::Delete,
    ReqType::Shutdown,
    ReqType::FetchCheckpoint,
    ReqType::Subscribe,
    ReqType::ReplStatus,
    ReqType::Promote,
    ReqType::SubscribeMatches,
    ReqType::Unsubscribe,
    ReqType::Upgrade,
    ReqType::GetShardMap,
    ReqType::Reshard,
    ReqType::MigrationStatus,
];

impl ReqType {
    /// The `type` label value for this request type.
    pub fn label(self) -> &'static str {
        match self {
            ReqType::Index => "index",
            ReqType::Probe => "probe",
            ReqType::Stream => "stream",
            ReqType::DedupStatus => "dedup_status",
            ReqType::Stats => "stats",
            ReqType::Metrics => "metrics",
            ReqType::Snapshot => "snapshot",
            ReqType::Insert => "insert",
            ReqType::Delete => "delete",
            ReqType::Shutdown => "shutdown",
            ReqType::FetchCheckpoint => "fetch_checkpoint",
            ReqType::Subscribe => "subscribe",
            ReqType::ReplStatus => "repl_status",
            ReqType::Promote => "promote",
            ReqType::SubscribeMatches => "subscribe_matches",
            ReqType::Unsubscribe => "unsubscribe",
            ReqType::Upgrade => "upgrade",
            ReqType::GetShardMap => "get_shard_map",
            ReqType::Reshard => "reshard",
            ReqType::MigrationStatus => "migration_status",
        }
    }

    /// Classifies a wire request.
    pub fn of(request: &Request) -> Self {
        match request {
            Request::Index { .. } => ReqType::Index,
            Request::Probe { .. } => ReqType::Probe,
            Request::Stream { .. } => ReqType::Stream,
            Request::DedupStatus => ReqType::DedupStatus,
            Request::Stats => ReqType::Stats,
            Request::Metrics => ReqType::Metrics,
            Request::Snapshot { .. } => ReqType::Snapshot,
            Request::Insert { .. } => ReqType::Insert,
            Request::Delete { .. } => ReqType::Delete,
            Request::Shutdown => ReqType::Shutdown,
            Request::FetchCheckpoint => ReqType::FetchCheckpoint,
            Request::Subscribe { .. } => ReqType::Subscribe,
            Request::ReplStatus => ReqType::ReplStatus,
            Request::Promote => ReqType::Promote,
            Request::SubscribeMatches { .. } => ReqType::SubscribeMatches,
            Request::Unsubscribe { .. } => ReqType::Unsubscribe,
            Request::Upgrade { .. } => ReqType::Upgrade,
            Request::GetShardMap => ReqType::GetShardMap,
            Request::Reshard { .. } => ReqType::Reshard,
            Request::MigrationStatus => ReqType::MigrationStatus,
        }
    }

    fn idx(self) -> usize {
        REQ_TYPES
            .iter()
            .position(|t| *t == self)
            .expect("every ReqType is in REQ_TYPES")
    }
}

/// The server's metric handles, one registry per server.
pub struct ServerMetrics {
    registry: Registry,
    requests: Vec<Arc<Counter>>,
    errors: Vec<Arc<Counter>>,
    queue_wait: Vec<Arc<Histogram>>,
    exec: Vec<Arc<Histogram>>,
    /// Requests rejected with `Backpressure` (no type: they are counted
    /// before the request is executed).
    pub rejected_backpressure: Arc<Counter>,
    /// Requests slower end-to-end than the configured threshold.
    pub slow_requests: Arc<Counter>,
    /// Records currently indexed (restored + indexed + streamed).
    pub indexed_records: Arc<Gauge>,
    /// Records observed through `Stream` since startup (or restore).
    pub streamed_records: Arc<Gauge>,
    /// Frames appended to the write-ahead log since startup
    /// (`rl_wal_appends_total`). Stays 0 without `--data-dir`.
    pub wal_appends: Arc<Counter>,
    /// Live WAL bytes across retained segments (`rl_wal_bytes`); drops
    /// when a checkpoint prunes covered segments.
    pub wal_bytes: Arc<Gauge>,
    /// Checkpoints committed since startup (`rl_checkpoints_total`).
    pub checkpoints: Arc<Counter>,
    /// Ops replayed from the WAL during startup recovery.
    pub replayed_ops: Arc<Gauge>,
    /// Startup recovery time (checkpoint load + WAL replay), in
    /// milliseconds (`rl_replay_duration_ms`).
    pub replay_duration_ms: Arc<Gauge>,
    /// Follower: ops the primary has that this node has not applied
    /// (`rl_repl_lag_frames`). 0 when caught up or not replicating.
    pub repl_lag_frames: Arc<Gauge>,
    /// Follower: WAL bytes between this node's stream position and the
    /// primary head, from the last heartbeat (`rl_repl_lag_bytes`).
    pub repl_lag_bytes: Arc<Gauge>,
    /// Primary: live WAL subscriptions being served
    /// (`rl_repl_followers`).
    pub repl_followers: Arc<Gauge>,
    /// Follower: subscription reconnects since startup
    /// (`rl_repl_reconnects_total`).
    pub repl_reconnects: Arc<Counter>,
    /// Live match subscriptions being served (`rl_subs_active`).
    pub subs_active: Arc<Gauge>,
    /// Match events delivered to subscribers (`rl_sub_events_total`).
    pub sub_events: Arc<Counter>,
    /// Subscriptions terminated with `SubscriptionLagged`
    /// (`rl_sub_lagged_total`).
    pub sub_lagged: Arc<Counter>,
    /// Records evicted from subscription windows
    /// (`rl_window_evictions_total`).
    pub window_evictions: Arc<Counter>,
    /// Observe-to-delivery latency for match events
    /// (`rl_sub_deliver_seconds`).
    pub sub_deliver: Arc<Histogram>,
    /// Largest live blocking bucket across structures and shards
    /// (`rl_block_max_bucket`). Refreshed on every `Stats` request.
    pub block_max_bucket: Arc<Gauge>,
    /// p99 bucket occupancy across structures (`rl_block_p99_bucket`):
    /// 99% of live buckets hold at most this many ids.
    pub block_p99_bucket: Arc<Gauge>,
    /// Tombstoned ids still occupying bucket slots
    /// (`rl_block_dead_entries`); falls on lazy scrub / compaction.
    pub block_dead_entries: Arc<Gauge>,
    /// Inserts discarded by a `drop` block cap (`rl_block_dropped`).
    pub block_dropped: Arc<Gauge>,
    /// Bytes of on-disk blocking generations (`rl_block_disk_bytes`);
    /// 0 for the in-memory store.
    pub block_disk_bytes: Arc<Gauge>,
    /// Online-reshard phase (`rl_reshard_state`): 0 idle, 1 copying,
    /// 2 cutover.
    pub reshard_state: Arc<Gauge>,
    /// Records the background migrator has copied to the target shard
    /// (`rl_reshard_migrated_records`); resets when a migration starts.
    pub reshard_migrated: Arc<Gauge>,
    /// Records still to copy before cutover (`rl_reshard_lag_ops`); 0
    /// when no migration runs.
    pub reshard_lag: Arc<Gauge>,
    /// Background blocking-store compaction sweeps completed
    /// (`rl_compactions_total`).
    pub compactions: Arc<Counter>,
    /// Pipeline phase timers (embed / block / match, stream observe),
    /// shared with the `ShardedPipeline` so shard workers record into
    /// the same histograms.
    pub pipeline: Arc<PipelineMetrics>,
}

impl ServerMetrics {
    /// Builds the registry (prefix `rl`) and registers every metric.
    pub fn new() -> Arc<Self> {
        let registry = Registry::new("rl");
        let per_type = |name: &str, help: &str| -> Vec<Arc<Counter>> {
            REQ_TYPES
                .iter()
                .map(|t| registry.counter(name, help, &[("type", t.label())]))
                .collect()
        };
        let per_type_hist = |name: &str, help: &str| -> Vec<Arc<Histogram>> {
            REQ_TYPES
                .iter()
                .map(|t| registry.histogram(name, help, &[("type", t.label())], Unit::Seconds))
                .collect()
        };
        let requests = per_type("requests_total", "Requests executed, by type");
        let errors = per_type(
            "request_errors_total",
            "Requests answered with an error, by type",
        );
        let queue_wait = per_type_hist(
            "request_queue_wait_seconds",
            "Time from enqueue to worker pickup",
        );
        let exec = per_type_hist(
            "request_exec_seconds",
            "Worker execution time (queue wait excluded)",
        );
        let rejected_backpressure = registry.counter(
            "rejected_backpressure_total",
            "Requests rejected because the work queue was full",
            &[],
        );
        let slow_requests = registry.counter(
            "slow_requests_total",
            "Requests slower end-to-end than the slow-request threshold",
            &[],
        );
        let indexed_records = registry.gauge("indexed_records", "Records in the index", &[]);
        let streamed_records =
            registry.gauge("streamed_records", "Records observed via Stream", &[]);
        let wal_appends = registry.counter(
            "wal_appends_total",
            "Frames appended to the write-ahead log",
            &[],
        );
        let wal_bytes = registry.gauge(
            "wal_bytes",
            "Live write-ahead-log bytes across retained segments",
            &[],
        );
        let checkpoints = registry.counter(
            "checkpoints_total",
            "Checkpoints committed (snapshot + WAL prune)",
            &[],
        );
        let replayed_ops = registry.gauge(
            "replayed_ops",
            "WAL ops replayed during startup recovery",
            &[],
        );
        let replay_duration_ms = registry.gauge(
            "replay_duration_ms",
            "Startup recovery time (checkpoint load + WAL replay), milliseconds",
            &[],
        );
        let repl_lag_frames = registry.gauge(
            "repl_lag_frames",
            "Ops behind the primary (followers; 0 when caught up)",
            &[],
        );
        let repl_lag_bytes = registry.gauge(
            "repl_lag_bytes",
            "WAL bytes behind the primary head (followers)",
            &[],
        );
        let repl_followers = registry.gauge(
            "repl_followers",
            "Live WAL subscriptions served (primaries)",
            &[],
        );
        let repl_reconnects = registry.counter(
            "repl_reconnects_total",
            "Replication subscription reconnects",
            &[],
        );
        let subs_active = registry.gauge("subs_active", "Live match subscriptions", &[]);
        let sub_events = registry.counter(
            "sub_events_total",
            "Match events delivered to subscribers",
            &[],
        );
        let sub_lagged = registry.counter(
            "sub_lagged_total",
            "Subscriptions dropped for lagging behind their event queue",
            &[],
        );
        let window_evictions = registry.counter(
            "window_evictions_total",
            "Records evicted from subscription windows",
            &[],
        );
        let sub_deliver = registry.histogram(
            "sub_deliver_seconds",
            "Observe-to-delivery latency for match events",
            &[],
            Unit::Seconds,
        );
        let block_max_bucket = registry.gauge(
            "block_max_bucket",
            "Largest live blocking bucket across structures and shards",
            &[],
        );
        let block_p99_bucket = registry.gauge(
            "block_p99_bucket",
            "p99 blocking-bucket occupancy (99% of live buckets are at most this large)",
            &[],
        );
        let block_dead_entries = registry.gauge(
            "block_dead_entries",
            "Tombstoned ids still occupying blocking-bucket slots",
            &[],
        );
        let block_dropped = registry.gauge(
            "block_dropped",
            "Inserts discarded by a drop-mode block cap",
            &[],
        );
        let block_disk_bytes = registry.gauge(
            "block_disk_bytes",
            "Bytes of on-disk blocking-table generation files",
            &[],
        );
        let reshard_state = registry.gauge(
            "reshard_state",
            "Online-reshard phase: 0 idle, 1 copying, 2 cutover",
            &[],
        );
        let reshard_migrated = registry.gauge(
            "reshard_migrated_records",
            "Records copied to the target shard by the running migration",
            &[],
        );
        let reshard_lag = registry.gauge(
            "reshard_lag_ops",
            "Records still to copy before the reshard cutover",
            &[],
        );
        let compactions = registry.counter(
            "compactions_total",
            "Background blocking-store compaction sweeps completed",
            &[],
        );
        let pipeline = PipelineMetrics::register(&registry);
        Arc::new(Self {
            registry,
            requests,
            errors,
            queue_wait,
            exec,
            rejected_backpressure,
            slow_requests,
            indexed_records,
            streamed_records,
            wal_appends,
            wal_bytes,
            checkpoints,
            replayed_ops,
            replay_duration_ms,
            repl_lag_frames,
            repl_lag_bytes,
            repl_followers,
            repl_reconnects,
            subs_active,
            sub_events,
            sub_lagged,
            window_evictions,
            sub_deliver,
            block_max_bucket,
            block_p99_bucket,
            block_dead_entries,
            block_dropped,
            block_disk_bytes,
            reshard_state,
            reshard_migrated,
            reshard_lag,
            compactions,
            pipeline,
        })
    }

    /// Refreshes the blocking-store gauges from merged structure stats
    /// (called whenever the server aggregates them, e.g. on `Stats`).
    pub fn update_block_gauges(&self, blocking: &[cbv_hb::blocking::StructureStats]) {
        self.block_max_bucket
            .set(blocking.iter().map(|s| s.max_bucket).max().unwrap_or(0) as i64);
        self.block_p99_bucket
            .set(blocking.iter().map(|s| s.p99_bucket()).max().unwrap_or(0) as i64);
        self.block_dead_entries
            .set(blocking.iter().map(|s| s.dead_entries).sum::<u64>() as i64);
        self.block_dropped
            .set(blocking.iter().map(|s| s.dropped).sum::<u64>() as i64);
        self.block_disk_bytes
            .set(blocking.iter().map(|s| s.on_disk_bytes).sum::<u64>() as i64);
    }

    /// One streaming request (`FetchCheckpoint` / `Subscribe`): served
    /// inline on the connection thread, so only the request counter moves
    /// — there is no queue wait and no bounded execution to time.
    pub fn record_streaming(&self, rtype: ReqType) {
        self.requests[rtype.idx()].inc();
    }

    /// One executed request: bumps the type's counter (and its error
    /// counter when `ok` is false) and records both latency phases.
    pub fn record_request(&self, rtype: ReqType, queue_wait: Duration, exec: Duration, ok: bool) {
        let i = rtype.idx();
        self.requests[i].inc();
        if !ok {
            self.errors[i].inc();
        }
        self.queue_wait[i].observe_duration(queue_wait);
        self.exec[i].observe_duration(exec);
    }

    /// Point-in-time view of every metric (the `Metrics` reply payload).
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn req_type_labels_are_unique_and_ordered() {
        let labels: Vec<&str> = REQ_TYPES.iter().map(|t| t.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len(), "duplicate label");
        for (i, t) in REQ_TYPES.iter().enumerate() {
            assert_eq!(t.idx(), i);
        }
    }

    #[test]
    fn record_request_updates_counters_and_histograms() {
        let m = ServerMetrics::new();
        m.record_request(
            ReqType::Probe,
            Duration::from_micros(50),
            Duration::from_millis(2),
            true,
        );
        m.record_request(
            ReqType::Probe,
            Duration::from_micros(10),
            Duration::from_millis(1),
            false,
        );
        m.record_request(
            ReqType::Stats,
            Duration::ZERO,
            Duration::from_micros(3),
            true,
        );
        let s = m.snapshot();
        assert_eq!(s.counter_value("rl_requests_total", Some("probe")), Some(2));
        assert_eq!(s.counter_value("rl_requests_total", Some("stats")), Some(1));
        assert_eq!(s.counter_value("rl_requests_total", Some("index")), Some(0));
        assert_eq!(
            s.counter_value("rl_request_errors_total", Some("probe")),
            Some(1)
        );
        let exec = s
            .histogram_data("rl_request_exec_seconds", Some("probe"))
            .unwrap();
        assert_eq!(exec.data.count, 2);
        let wait = s
            .histogram_data("rl_request_queue_wait_seconds", Some("probe"))
            .unwrap();
        assert_eq!(wait.data.count, 2);
    }

    #[test]
    fn request_classification_covers_every_variant() {
        assert_eq!(ReqType::of(&Request::Metrics), ReqType::Metrics);
        assert_eq!(ReqType::of(&Request::Stats), ReqType::Stats);
        assert_eq!(
            ReqType::of(&Request::Probe { records: vec![] }),
            ReqType::Probe
        );
        assert_eq!(ReqType::of(&Request::Shutdown), ReqType::Shutdown);
    }
}
