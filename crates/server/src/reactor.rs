//! The readiness-driven connection reactor (Linux, protocol v7).
//!
//! One thread owns every request/reply connection: a `poll(2)` loop over
//! the listener, a self-pipe waker, and all live sockets. Connections
//! cost a buffer each, not a thread each, and a binary (protocol v7)
//! connection may have many requests in flight at once — the reactor
//! keeps parsing frames while workers execute earlier ones, and workers
//! push each response into the connection's outbox as it completes
//! (correlated by request id, so out-of-order completion is fine).
//!
//! JSON-mode (protocol ≤6) connections have no request ids, so their
//! responses must arrive in request order: the reactor parses at most one
//! request at a time per JSON connection (`in_flight` gate). That matches
//! the old thread-per-connection behaviour exactly.
//!
//! Streaming verbs (`FetchCheckpoint`, `Subscribe`, `SubscribeMatches`)
//! are long-lived and blocking by design; the reactor *detaches* such a
//! connection — flushes its outbox, flips the socket back to blocking,
//! and hands it (plus any already-read bytes) to a dedicated thread
//! running the classic loop. The reactor never blocks on anyone.
//!
//! Pinned behaviours preserved from the thread-per-connection loop:
//! partial requests ride in the connection buffer until complete; a
//! trailing JSON request without a final newline is answered at EOF; a
//! `Shutdown` ack is written and then the connection closes; a full job
//! queue answers typed `Backpressure` immediately; shutdown finishes
//! in-flight requests and flushes outboxes before closing.

use crate::metrics::ReqType;
use crate::protocol::{wire, ErrorCode, Reply, Request, RequestError, Response};
use crate::server::{
    begin_shutdown, is_streaming, negotiate_upgrade, serve_detached, Completion, ConnShared, Inner,
    Job,
};
use crossbeam::channel::{Sender, TrySendError};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::raw::{c_int, c_short, c_ulong};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

#[repr(C)]
struct PollFd {
    fd: c_int,
    events: c_short,
    revents: c_short,
}

const POLLIN: c_short = 0x001;
const POLLOUT: c_short = 0x004;
const POLLERR: c_short = 0x008;
const POLLHUP: c_short = 0x010;

extern "C" {
    fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
}

/// Poll timeout: the cadence at which the reactor re-checks the shutdown
/// flag even with no socket activity (the waker usually wakes it first).
const POLL_TIMEOUT_MS: c_int = 100;

/// Stop parsing new requests from a connection holding this many
/// unparsed buffered bytes; reading resumes once the backlog drains.
/// Bounds memory against a client that floods pipelined requests faster
/// than the workers drain them.
const MAX_UNPARSED: usize = 4 * 1024 * 1024;

/// How long shutdown waits for in-flight responses to flush before
/// force-closing connections (mirrors the streaming write timeout).
const SHUTDOWN_DRAIN: Duration = Duration::from_secs(10);

/// What connection parsing decided beyond ordinary dispatch.
enum Parsed {
    /// Keep the connection in the reactor.
    Keep,
    /// Unrecoverable framing/socket state: drop the connection.
    Close,
    /// Hand the connection to a dedicated blocking thread to serve this
    /// streaming request (id is the originating request id in binary
    /// mode, [`wire::PUSH_ID`] for JSON).
    Detach(Request, u64),
}

struct Conn {
    stream: TcpStream,
    shared: Arc<ConnShared>,
    /// Bytes read but not yet parsed; `rpos` is the consumed prefix.
    rbuf: Vec<u8>,
    rpos: usize,
    binary: bool,
    /// Peer closed its write half; serve what's buffered, then close.
    eof: bool,
    /// Stop parsing (Shutdown ack sent); close once drained.
    closing: bool,
    dead: bool,
}

impl Conn {
    fn unparsed(&self) -> usize {
        self.rbuf.len() - self.rpos
    }

    fn in_flight(&self) -> usize {
        self.shared.in_flight.load(Ordering::SeqCst)
    }

    fn outbox_empty(&self) -> bool {
        self.shared.outbox.lock().is_empty()
    }

    /// Drained and finished: nothing buffered in, nothing pending out.
    fn done(&self) -> bool {
        (self.eof || self.closing) && self.in_flight() == 0 && self.outbox_empty()
    }

    fn push(&self, id: u64, response: &Response) {
        self.shared.push_response(id, self.binary, response);
    }
}

/// Runs the reactor until shutdown. Takes over the accept loop's role.
pub(crate) fn run(inner: &Arc<Inner>, listener: TcpListener, job_tx: &Sender<Job>) {
    if listener.set_nonblocking(true).is_err() {
        // Fall back to the classic loop rather than serving nothing.
        crate::server::accept_loop(inner, &listener, job_tx);
        return;
    }
    let Ok((wake_rx, wake_tx)) = UnixStream::pair() else {
        crate::server::accept_loop(inner, &listener, job_tx);
        return;
    };
    let _ = wake_rx.set_nonblocking(true);
    let _ = wake_tx.set_nonblocking(true);
    let wake_tx = Arc::new(wake_tx);

    let mut conns: Vec<Conn> = Vec::new();
    let mut pollfds: Vec<PollFd> = Vec::new();
    let mut scratch = vec![0u8; 64 * 1024];
    let mut drain_deadline: Option<Instant> = None;

    loop {
        let shutting = inner.shutdown.load(Ordering::SeqCst);
        conns.retain(|c| !c.dead && !c.done());
        if shutting {
            if conns.is_empty() {
                return;
            }
            // In-flight requests always run to completion (matching the
            // blocking loop, which waited on the worker however long it
            // took); the drain deadline only bounds how long we wait for
            // peers to *read* their already-computed responses.
            if conns.iter().all(|c| c.in_flight() == 0) {
                let deadline =
                    *drain_deadline.get_or_insert_with(|| Instant::now() + SHUTDOWN_DRAIN);
                if Instant::now() >= deadline {
                    return;
                }
            } else {
                drain_deadline = None;
            }
        }

        // fds: [0] listener (while accepting), [1] waker, then conns.
        pollfds.clear();
        pollfds.push(PollFd {
            fd: listener.as_raw_fd(),
            events: if shutting { 0 } else { POLLIN },
            revents: 0,
        });
        pollfds.push(PollFd {
            fd: wake_rx.as_raw_fd(),
            events: POLLIN,
            revents: 0,
        });
        for conn in &conns {
            let mut events = 0;
            if !conn.eof && !conn.closing && conn.unparsed() < MAX_UNPARSED {
                events |= POLLIN;
            }
            if !conn.outbox_empty() {
                events |= POLLOUT;
            }
            pollfds.push(PollFd {
                fd: conn.stream.as_raw_fd(),
                events,
                revents: 0,
            });
        }
        let rc = unsafe {
            poll(
                pollfds.as_mut_ptr(),
                pollfds.len() as c_ulong,
                POLL_TIMEOUT_MS,
            )
        };
        if rc < 0 {
            let err = std::io::Error::last_os_error();
            if err.kind() != ErrorKind::Interrupted {
                eprintln!("rl-server: reactor poll failed: {err}");
                return;
            }
            continue;
        }

        // Drain the waker (workers poke it once per completed response).
        if pollfds[1].revents & POLLIN != 0 {
            while matches!((&wake_rx).read(&mut scratch[..256]), Ok(n) if n > 0) {}
        }

        // Accept everything pending.
        if !shutting && pollfds[0].revents & POLLIN != 0 {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        stream.set_nodelay(true).ok();
                        let tx = Arc::clone(&wake_tx);
                        let shared = Arc::new(ConnShared::new(Box::new(move || {
                            let _ = (&*tx).write(&[1]);
                        })));
                        conns.push(Conn {
                            stream,
                            shared,
                            rbuf: Vec::new(),
                            rpos: 0,
                            binary: false,
                            eof: false,
                            closing: false,
                            dead: false,
                        });
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => break,
                }
            }
        }

        // Read, parse/dispatch, and flush each connection. Parsing runs
        // every iteration (not only on POLLIN): a worker completion can
        // lift the in-flight gate with no new socket bytes.
        let mut detached: Vec<(usize, Request, u64)> = Vec::new();
        for (i, conn) in conns.iter_mut().enumerate() {
            let revents = pollfds.get(2 + i).map(|p| p.revents).unwrap_or(0);
            if revents & (POLLERR | POLLHUP) != 0 {
                // Half-closed peers still get their pending responses;
                // POLLHUP with unread data keeps POLLIN set too, so only
                // treat it as EOF, not instant death.
                conn.eof = true;
            }
            if revents & POLLIN != 0 {
                read_into(conn, &mut scratch);
            }
            if conn.dead {
                continue;
            }
            // Parsing continues during shutdown drain: handle_request
            // answers new work with a typed ShuttingDown error.
            if !conn.closing {
                match parse_and_dispatch(inner, job_tx, conn) {
                    Parsed::Keep => {}
                    Parsed::Close => conn.dead = true,
                    Parsed::Detach(request, id) => {
                        detached.push((i, request, id));
                        continue;
                    }
                }
            }
            flush_outbox(conn);
        }

        // Detach streaming connections (highest index first so removal
        // doesn't shift earlier ones).
        detached.sort_by_key(|d| std::cmp::Reverse(d.0));
        for (i, request, id) in detached {
            let conn = conns.remove(i);
            detach(inner, job_tx, conn, request, id);
        }
    }
}

/// Nonblocking read into the connection buffer; flags EOF and errors.
fn read_into(conn: &mut Conn, scratch: &mut [u8]) {
    loop {
        match (&conn.stream).read(scratch) {
            Ok(0) => {
                conn.eof = true;
                return;
            }
            Ok(n) => {
                conn.rbuf.extend_from_slice(&scratch[..n]);
                if n < scratch.len() {
                    return;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
}

/// Parses as many complete requests as the mode's ordering rules allow,
/// dispatching each. Compacts the consumed prefix before returning.
fn parse_and_dispatch(inner: &Arc<Inner>, job_tx: &Sender<Job>, conn: &mut Conn) -> Parsed {
    let result = loop {
        if !conn.binary && conn.in_flight() > 0 {
            // JSON responses carry no id; keep them in request order by
            // serving one request at a time.
            break Parsed::Keep;
        }
        if conn.binary {
            match parse_binary(inner, job_tx, conn) {
                Ok(Some(parsed)) => break parsed,
                Ok(None) => {}
                Err(()) => break Parsed::Keep,
            }
        } else {
            match parse_json_line(inner, job_tx, conn) {
                Ok(Some(parsed)) => break parsed,
                Ok(None) => {}
                Err(()) => break Parsed::Keep,
            }
        }
    };
    if conn.rpos > 0 {
        conn.rbuf.drain(..conn.rpos);
        conn.rpos = 0;
    }
    result
}

/// One JSON line: `Ok(Some)` ends parsing with a verdict, `Ok(None)`
/// consumed a request and parsing may continue, `Err(())` means no
/// complete request is buffered.
fn parse_json_line(
    inner: &Arc<Inner>,
    job_tx: &Sender<Job>,
    conn: &mut Conn,
) -> Result<Option<Parsed>, ()> {
    let buf = &conn.rbuf[conn.rpos..];
    let (line_end, consumed) = match buf.iter().position(|&b| b == b'\n') {
        Some(nl) => (nl, nl + 1),
        // The classic loop answers a trailing request sent without a
        // final newline once the peer closes; mirror that here.
        None if conn.eof && !buf.is_empty() => (buf.len(), buf.len()),
        None => return Err(()),
    };
    let line = String::from_utf8_lossy(&buf[..line_end]).into_owned();
    conn.rpos += consumed;
    let trimmed = line.trim();
    if trimmed.is_empty() {
        return Ok(None);
    }
    let request = match serde_json::from_str::<Request>(trimmed) {
        Ok(request) => request,
        Err(e) => {
            conn.push(
                wire::PUSH_ID,
                &Response::Err(RequestError::new(
                    ErrorCode::Parse,
                    format!("bad request: {e}"),
                )),
            );
            return Ok(None);
        }
    };
    handle_request(inner, job_tx, conn, request, wire::PUSH_ID)
}

/// One binary frame (same contract as [`parse_json_line`]).
fn parse_binary(
    inner: &Arc<Inner>,
    job_tx: &Sender<Job>,
    conn: &mut Conn,
) -> Result<Option<Parsed>, ()> {
    let buf = &conn.rbuf[conn.rpos..];
    let (tag, payload, consumed) = match rl_wire::peek_frame(buf, rl_wire::DEFAULT_MAX_FRAME) {
        Ok(Some(frame)) => frame,
        Ok(None) => {
            // A partial frame when the peer already closed can never
            // complete.
            if conn.eof && !buf.is_empty() {
                return Ok(Some(Parsed::Close));
            }
            return Err(());
        }
        // Corrupt framing has no resync point.
        Err(_) => return Ok(Some(Parsed::Close)),
    };
    if tag != wire::TAG_REQUEST {
        return Ok(Some(Parsed::Close));
    }
    let decoded = wire::decode_request(payload);
    let (id, request) = match decoded {
        Ok(pair) => pair,
        Err(e) => {
            conn.rpos += consumed;
            conn.push(
                wire::PUSH_ID,
                &Response::Err(RequestError::new(
                    ErrorCode::Parse,
                    format!("bad request: {e}"),
                )),
            );
            return Ok(None);
        }
    };
    if is_streaming(&request) && conn.in_flight() > 0 {
        // Detaching moves the socket to a blocking thread; in-flight
        // responses must land in the outbox first. Leave the frame
        // unconsumed and retry once the pipeline drains.
        return Err(());
    }
    conn.rpos += consumed;
    handle_request(inner, job_tx, conn, request, id)
}

/// Routes one parsed request: inline (Upgrade, Shutdown), detach
/// (streaming verbs), or worker dispatch.
fn handle_request(
    inner: &Arc<Inner>,
    job_tx: &Sender<Job>,
    conn: &mut Conn,
    request: Request,
    id: u64,
) -> Result<Option<Parsed>, ()> {
    if is_streaming(&request) {
        // (JSON mode reaches here with in_flight == 0 by the ordering
        // gate; binary mode checked before consuming the frame.)
        return Ok(Some(Parsed::Detach(request, id)));
    }
    match request {
        Request::Upgrade { max_version } => {
            inner.metrics.record_streaming(ReqType::Upgrade);
            let (version, binary) = negotiate_upgrade(max_version);
            // Ack in the *current* mode; frames start after it.
            conn.push(id, &Response::Ok(Reply::Upgraded { version }));
            if binary {
                conn.binary = true;
            }
            Ok(None)
        }
        Request::Shutdown => {
            begin_shutdown(inner);
            conn.push(id, &Response::Ok(Reply::ShuttingDown));
            conn.closing = true;
            Ok(Some(Parsed::Keep))
        }
        request => {
            if inner.shutdown.load(Ordering::SeqCst) {
                conn.push(
                    id,
                    &Response::Err(RequestError::new(
                        ErrorCode::ShuttingDown,
                        "server is shutting down",
                    )),
                );
                return Ok(None);
            }
            conn.shared.in_flight.fetch_add(1, Ordering::SeqCst);
            let job = Job {
                request,
                completion: Completion::Outbox {
                    conn: Arc::clone(&conn.shared),
                    id,
                    binary: conn.binary,
                },
                enqueued: Instant::now(),
            };
            match job_tx.try_send(job) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) => {
                    conn.shared.in_flight.fetch_sub(1, Ordering::SeqCst);
                    inner.rejected_backpressure.fetch_add(1, Ordering::Relaxed);
                    inner.metrics.rejected_backpressure.inc();
                    conn.push(
                        id,
                        &Response::Err(RequestError::new(
                            ErrorCode::Backpressure,
                            format!(
                                "work queue full ({} pending); retry later",
                                inner.config.queue_capacity
                            ),
                        )),
                    );
                }
                Err(TrySendError::Disconnected(_)) => {
                    conn.shared.in_flight.fetch_sub(1, Ordering::SeqCst);
                    conn.push(
                        id,
                        &Response::Err(RequestError::new(
                            ErrorCode::ShuttingDown,
                            "worker pool stopped",
                        )),
                    );
                }
            }
            Ok(None)
        }
    }
}

/// Writes as much of the outbox as the socket accepts right now.
fn flush_outbox(conn: &mut Conn) {
    let mut outbox = conn.shared.outbox.lock();
    while !outbox.is_empty() {
        match (&conn.stream).write(&outbox) {
            Ok(0) => {
                conn.dead = true;
                return;
            }
            Ok(n) => {
                outbox.drain(..n);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
    // The Shutdown ack (and only it) closes the connection once written.
    if conn.closing {
        conn.eof = true;
    }
}

/// Moves a connection off the reactor onto a dedicated blocking thread
/// for a streaming verb, carrying over buffered bytes in both
/// directions.
fn detach(inner: &Arc<Inner>, job_tx: &Sender<Job>, mut conn: Conn, request: Request, id: u64) {
    // The outbox must flush before the stream handler writes anything.
    // in_flight is 0 (detach precondition), so these bytes are complete
    // responses; write them out in blocking mode.
    if conn.stream.set_nonblocking(false).is_err() {
        return;
    }
    {
        let mut outbox = conn.shared.outbox.lock();
        if !outbox.is_empty() {
            let _ = conn.stream.set_write_timeout(Some(SHUTDOWN_DRAIN));
            if (&conn.stream).write_all(&outbox).is_err() {
                return;
            }
            let _ = conn.stream.set_write_timeout(None);
            outbox.clear();
        }
    }
    let leftover: Vec<u8> = conn.rbuf.split_off(conn.rpos);
    let inner = Arc::clone(inner);
    let job_tx = job_tx.clone();
    let binary = conn.binary;
    let stream = conn.stream;
    let result = std::thread::Builder::new()
        .name("rl-conn".into())
        .spawn(move || serve_detached(inner, job_tx, stream, leftover, binary, request, id));
    if result.is_err() {
        eprintln!("rl-server: could not spawn a streaming connection thread");
    }
}
