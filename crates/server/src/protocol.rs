//! The wire protocol: newline-delimited JSON over TCP, upgradable to
//! binary frames.
//!
//! Every connection starts in JSON mode: one JSON object per line,
//! answered with exactly one JSON object on one line. Requests are
//! externally tagged by command name (`{"Probe": {...}}`); responses are
//! an envelope with an `ok` discriminator so clients can branch before
//! deserializing the payload.
//!
//! Protocol v7 adds an in-band upgrade: a client sends
//! [`Request::Upgrade`] as a normal JSON line; a v7 server answers
//! [`Reply::Upgraded`] and both sides switch to `rl-wire` binary frames
//! (see [`wire`] for the frame tags and payload envelopes). A pre-v7
//! server answers the unknown verb with a `Parse` error, and the client
//! simply stays on JSON — graceful both ways. See `docs/WIRE.md` for the
//! framing and `docs/SERVER.md` for the full request reference.

use cbv_hb::blocking::StructureStats;
use cbv_hb::matcher::MatchStats;
use cbv_hb::Record;
use rl_streamrule::{LateArrival, WindowSpec};
use serde::{Deserialize, Serialize};

/// Protocol version spoken by this build (bumped on breaking changes;
/// reported in [`StatsReply`]). Version 2 added the `blocking` section to
/// the Stats reply (backend tag, `L`, key width, bucket occupancy per
/// structure). Version 3 added the `Metrics` request, returning the
/// server's merged metrics registry (counters, gauges, and mergeable
/// latency histograms). Version 4 added the durable mutation requests
/// `Insert` and `Delete` (write-ahead-logged before the reply when the
/// server runs with `--data-dir`) and the `Storage` error code. Version 5
/// added replication: the streaming `FetchCheckpoint` and `Subscribe`
/// requests (the only requests answered with *more than one* response
/// line), `ReplStatus`, `Promote`, the `NotPrimary` error code, and the
/// optional `primary_addr` redirect field on [`RequestError`]; earlier
/// requests are unchanged. Version 6 added streaming match subscriptions:
/// `SubscribeMatches` (a third streaming request — the connection switches
/// to a push stream of [`Reply::MatchEvent`] lines interleaved with
/// heartbeats, terminated by [`Reply::SubscriptionLagged`] when the
/// subscriber falls behind its bounded event queue), `Unsubscribe`, and
/// the `Subscribed` / `MatchEvent` / `SubscriptionLagged` /
/// `Unsubscribed` replies. Version 7 added the binary wire upgrade: the
/// `Upgrade` request and `Upgraded` reply negotiate a switch from JSON
/// lines to length-prefixed, CRC-checked `rl-wire` frames carrying
/// id-correlated request/response envelopes (enabling pipelining — many
/// requests in flight per connection), raw checkpoint chunk frames, and
/// binary WAL frames; the JSON protocol is unchanged and remains the
/// first-line negotiation surface, so v6 clients and servers interoperate.
/// Version 8 added self-healing replication: primary **epochs** stamped
/// into `Subscribe`/`WalFrame`/`Heartbeat` (and the new epoch-stamped
/// binary WAL tag), the `StaleEpoch` error fencing demoted primaries,
/// lease grants on heartbeats (`lease_ms`) driving `--auto-failover`
/// elections, follower durability acks enabling `--sync-replicas N`
/// quorum writes (with the `QuorumTimeout` error), and `applied_seq` on
/// mutation replies for read-your-writes sessions. Version 9 added the
/// disk-resident blocking store's probe degradation signal: a
/// `truncated` counter on probe stats (binary `Matches` bodies append
/// it; absent means 0) and typed advisory `notes` on [`Reply::Matches`]
/// ([`ReplyNote::CandidatesTruncated`] when the server's per-probe
/// top-k bound cut candidate sets short), plus `store`, per-structure
/// block-size histograms, and tombstone counters in the Stats blocking
/// section. Version 10 added online resharding: the `GetShardMap`,
/// `Reshard`, and `MigrationStatus` requests with their `ShardMap`,
/// `ReshardStarted`, and `Migration` replies — a versioned, epoch-stamped
/// shard map replaces fixed round-robin placement, and a background
/// migrator splits or merges shards while the server keeps serving
/// (double-probing source and target until an atomic epoch-bump
/// cutover). The Stats reply gains `shard_map_epoch` and per-shard
/// `shard_records` so clients can watch a rebalance converge. The new
/// verbs ride the JSON body of the binary wire (no new binary bodies),
/// so v7–v9 peers interoperate untouched.
pub const PROTOCOL_VERSION: u32 = 10;

/// The first protocol version that speaks `rl-wire` binary frames. An
/// `Upgraded` answer below this stays on JSON.
pub const FIRST_BINARY_VERSION: u32 = 7;

/// A client request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Index records into data set A (round-robin across shards).
    Index { records: Vec<Record> },
    /// Probe records (data set B) against the index; does not modify it.
    Probe { records: Vec<Record> },
    /// Streaming observe: match one record against everything indexed so
    /// far, then index it (the paper's insert-and-query mode).
    Stream { record: Record },
    /// Duplicate clusters accumulated from `Stream` matches so far.
    DedupStatus,
    /// Service counters and configuration.
    Stats,
    /// Full metrics snapshot: request counters, gauges, and latency
    /// histograms (queue-wait / execution split, pipeline phases), merged
    /// across workers and shards. Protocol version 3+.
    Metrics,
    /// Persist the index to the server's snapshot path (or an explicit
    /// override) atomically.
    Snapshot { path: Option<String> },
    /// Durable insert (protocol v4): index records into data set A like
    /// `Index`, but on a server running with `--data-dir` the mutation is
    /// written to the write-ahead log **before** the reply, so an
    /// acknowledged insert survives a crash. (With a data dir, `Index`
    /// and `Stream` are logged too; `Insert` exists so clients can state
    /// the durability intent explicitly and older servers reject it.)
    Insert { records: Vec<Record> },
    /// Durable delete (protocol v4): tombstone records by id. Deleted
    /// records can never match again; unknown ids are ignored. WAL-logged
    /// before the reply when the server has a data dir.
    Delete { ids: Vec<u64> },
    /// Replication bootstrap (protocol v5): ask a primary for its latest
    /// checkpoint. Answered with a [`Reply::CheckpointMeta`] line followed
    /// by `chunks` [`Reply::CheckpointChunk`] lines of base64 data — the
    /// one request besides `Subscribe` that produces multiple response
    /// lines. A primary with no checkpoint yet takes one first.
    FetchCheckpoint,
    /// Replication tail (protocol v5): stream WAL frames with global op
    /// sequence greater than `from_seq`, interleaved with
    /// [`Reply::Heartbeat`] lines while idle. The connection stays in
    /// streaming mode until either side closes it. A `from_seq` outside
    /// the primary's retained log is answered with
    /// [`Reply::ResyncRequired`]. Protocol v8 adds `epoch`: the highest
    /// primary epoch the subscriber has observed. A sender whose own epoch
    /// is *lower* is a demoted/restarted stale primary and must refuse the
    /// stream with [`ErrorCode::StaleEpoch`] instead of shipping frames a
    /// successor already superseded.
    Subscribe {
        from_seq: u64,
        /// Highest primary epoch the subscriber knows (0 from pre-v8
        /// followers, which predate epochs entirely).
        #[serde(default)]
        epoch: u64,
    },
    /// Replication state (protocol v5): role, applied/head op sequences,
    /// lag, connected followers.
    ReplStatus,
    /// Manual failover (protocol v5): a follower syncs its WAL tail,
    /// rotates to a fresh segment, and flips to primary mode (accepting
    /// mutations). Idempotent on a node that is already primary; rejected
    /// with `Unavailable` on a non-replicated (standalone) server.
    Promote,
    /// Streaming match subscription (protocol v6): compile `rule` (the
    /// `parse_rule` DSL) into a pruned blocking plan and push a
    /// [`Reply::MatchEvent`] line whenever a newly ingested record matches
    /// a record inside `window`. The connection switches to streaming
    /// mode: first line is [`Reply::Subscribed`], then events interleaved
    /// with [`Reply::Heartbeat`] keep-alives. A subscriber that cannot
    /// drain its bounded event queue receives a terminal
    /// [`Reply::SubscriptionLagged`] and must resubscribe (mirroring
    /// replication's `ResyncRequired` contract).
    SubscribeMatches {
        /// The classification rule to watch, in the `parse_rule` DSL.
        rule: String,
        /// Which past records stay matchable.
        window: WindowSpec,
        /// Policy for records whose event time is behind the watermark.
        late: LateArrival,
        /// Per-probe top-k candidate cap; `0` disables capping.
        cap: u64,
    },
    /// Cancels a live subscription by id (protocol v6). Sent on any
    /// connection; the subscription's streaming connection ends cleanly.
    Unsubscribe {
        /// The id from [`Reply::Subscribed`].
        sub_id: u64,
    },
    /// Negotiates the binary wire upgrade (protocol v7). Sent as a JSON
    /// line; a v7 server replies [`Reply::Upgraded`] and **both sides
    /// switch to `rl-wire` binary frames immediately after that
    /// exchange**. `max_version` is the highest protocol version the
    /// client speaks; the server answers with `min(max_version, own)`,
    /// and only an answer ≥ 7 switches the connection. A pre-v7 server
    /// rejects the unknown verb with a `Parse` error, which clients
    /// treat as "stay on JSON".
    Upgrade {
        /// Highest protocol version the client supports.
        max_version: u32,
    },
    /// The current shard map (protocol v10): epoch, range assignments,
    /// per-shard record counts, and any in-flight migration. Served from
    /// primaries and followers alike (a follower reports the map it has
    /// replicated).
    GetShardMap,
    /// Start an online reshard (protocol v10): split one shard's widest
    /// keyspace range into a brand-new shard, or merge one shard's ranges
    /// onto an existing one. Answered immediately with
    /// [`Reply::ReshardStarted`]; a background migrator then copies the
    /// moved records off the write path while reads double-probe source
    /// and target, and cutover bumps the shard-map epoch atomically (the
    /// cutover — not the copy — is the WAL-logged, replicated event).
    /// Rejected with `NotPrimary` on followers and with `Linkage`
    /// (`migration in flight`) while another migration runs.
    Reshard {
        /// The split or merge to perform.
        op: rl_reshard::ReshardOp,
    },
    /// Progress of the in-flight migration, if any (protocol v10).
    MigrationStatus,
    /// Stop accepting connections, drain queued requests, and exit.
    Shutdown,
}

/// Why a request was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorCode {
    /// The request line was not valid JSON for [`Request`].
    Parse,
    /// The bounded work queue is full; retry after backing off.
    Backpressure,
    /// The server is shutting down and no longer accepts work.
    ShuttingDown,
    /// The linkage engine rejected the request (e.g. malformed records).
    Linkage,
    /// Snapshot I/O failed.
    Snapshot,
    /// The command is valid but not available (e.g. no snapshot path
    /// configured).
    Unavailable,
    /// The durability layer failed (WAL append or checkpoint I/O); the
    /// mutation was NOT applied and must be retried. Protocol v4+.
    Storage,
    /// The server is a read-only follower; mutations must go to the
    /// primary. The error's `primary_addr` field carries the redirect
    /// target, which [`crate::Client`] follows transparently (safe even
    /// for mutations — the follower rejected without applying anything).
    /// Protocol v5+.
    NotPrimary,
    /// The peer's primary epoch is behind this node's: a demoted or
    /// restarted old primary tried to ship frames (or serve a
    /// subscription) that a newer epoch has superseded. The stale node
    /// must stand down and re-join as a follower. Protocol v8+.
    StaleEpoch,
    /// The mutation is durable locally but fewer than the configured
    /// `--sync-replicas` followers confirmed it within the bounded wait.
    /// It may still replicate; the caller decides whether the weaker
    /// guarantee is failure. Protocol v8+.
    QuorumTimeout,
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ErrorCode::Parse => "parse",
            ErrorCode::Backpressure => "backpressure",
            ErrorCode::ShuttingDown => "shutting-down",
            ErrorCode::Linkage => "linkage",
            ErrorCode::Snapshot => "snapshot",
            ErrorCode::Unavailable => "unavailable",
            ErrorCode::Storage => "storage",
            ErrorCode::NotPrimary => "not-primary",
            ErrorCode::StaleEpoch => "stale-epoch",
            ErrorCode::QuorumTimeout => "quorum-timeout",
        };
        f.write_str(s)
    }
}

/// A typed request failure.
#[derive(Debug, Clone, PartialEq, Deserialize)]
pub struct RequestError {
    /// Machine-readable category.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
    /// Where the primary lives, set on [`ErrorCode::NotPrimary`]
    /// rejections so clients can redirect. Absent (and omitted from the
    /// wire) for every other error, which keeps v4 clients parsing.
    #[serde(default)]
    pub primary_addr: Option<String>,
}

// Hand-written because the vendored serde_derive shim does not implement
// `skip_serializing_if`: the derive would emit `"primary_addr":null` on
// every error line, which pre-v5 clients reject as an unknown field.
impl Serialize for RequestError {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::__private::{ser_field, Value};
        let mut fields = vec![
            ("code".to_string(), ser_field::<_, S::Error>(&self.code)?),
            (
                "message".to_string(),
                ser_field::<_, S::Error>(&self.message)?,
            ),
        ];
        if let Some(addr) = &self.primary_addr {
            fields.push(("primary_addr".to_string(), ser_field::<_, S::Error>(addr)?));
        }
        serializer.serialize_value(Value::Object(fields))
    }
}

impl RequestError {
    pub(crate) fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        Self {
            code,
            message: message.into(),
            primary_addr: None,
        }
    }

    /// Attaches the primary's address (for `NotPrimary` redirects).
    pub(crate) fn with_primary(mut self, addr: impl Into<String>) -> Self {
        self.primary_addr = Some(addr.into());
        self
    }
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for RequestError {}

/// A typed advisory attached to a reply: the request succeeded, but the
/// server applied a degradation the client should know about.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ReplyNote {
    /// Candidate sets were cut short by the server's per-probe top-k
    /// bound (`--block-top-k`): recall may be reduced for these probes.
    CandidatesTruncated {
        /// Number of probes in this request whose candidates were
        /// truncated.
        probes: u64,
    },
}

/// The notes a [`Reply::Matches`] carries for `stats`: one
/// [`ReplyNote::CandidatesTruncated`] when any probe was truncated.
pub fn truncation_notes(stats: &MatchStats) -> Vec<ReplyNote> {
    if stats.truncated > 0 {
        vec![ReplyNote::CandidatesTruncated {
            probes: stats.truncated,
        }]
    } else {
        Vec::new()
    }
}

/// A successful reply payload, tagged by kind.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Reply {
    /// Response to `Index`.
    Indexed {
        /// Records accepted in this request.
        accepted: usize,
        /// Records indexed since startup (restored records included).
        total_indexed: usize,
        /// Global op sequence of the last WAL frame this request appended
        /// (0 without durability). The client keeps the maximum as its
        /// read-your-writes session token. Protocol v8+.
        #[serde(default)]
        applied_seq: u64,
    },
    /// Response to `Probe`.
    Matches {
        /// Matched `(id_A, id_B)` pairs, sorted.
        pairs: Vec<(u64, u64)>,
        /// Matching counters for this probe.
        stats: MatchStats,
        /// Typed advisory notes (absent from pre-v9 peers). The binary
        /// body derives these from `stats` on decode, so construct them
        /// with [`truncation_notes`] to keep both paths consistent.
        #[serde(default)]
        notes: Vec<ReplyNote>,
    },
    /// Response to `Stream`.
    Observed {
        /// Ids of previously indexed records matching the observed one.
        matches: Vec<u64>,
        /// Read-your-writes token, as on [`Reply::Indexed`]. Protocol v8+.
        #[serde(default)]
        applied_seq: u64,
    },
    /// Response to `DedupStatus`.
    DedupStatus {
        /// Records involved in at least one stream match.
        linked_records: usize,
        /// Duplicate clusters (size ≥ 2), each sorted.
        clusters: Vec<Vec<u64>>,
    },
    /// Response to `Stats`.
    Stats(StatsReply),
    /// Response to `Metrics`: the server's metrics registry at snapshot
    /// time. Histogram bucket boundaries are the fixed log-linear scheme
    /// of `rl-obs`, so snapshots from different servers merge exactly.
    Metrics(rl_obs::MetricsSnapshot),
    /// Response to `Delete` (protocol v4).
    Deleted {
        /// Records actually removed (unknown ids don't count).
        removed: usize,
        /// Records remaining in the index.
        total_indexed: usize,
        /// Read-your-writes token, as on [`Reply::Indexed`]. Protocol v8+.
        #[serde(default)]
        applied_seq: u64,
    },
    /// Response to `Snapshot`.
    Snapshotted {
        /// Where the snapshot was written.
        path: String,
        /// Records captured in the snapshot.
        indexed: usize,
    },
    /// First response line to `FetchCheckpoint` (protocol v5): announces
    /// the transfer that follows.
    CheckpointMeta {
        /// Size of the checkpoint document in bytes (before base64).
        len: u64,
        /// Number of `CheckpointChunk` lines that follow.
        chunks: u64,
    },
    /// One chunk of a checkpoint transfer (protocol v5).
    CheckpointChunk {
        /// 0-based chunk index (chunks arrive in order).
        index: u64,
        /// Base64-encoded bytes of this chunk.
        data: String,
    },
    /// One replicated WAL frame in a `Subscribe` stream (protocol v5).
    WalFrame {
        /// Global op sequence of this frame (`from_seq + 1`, `+2`, …).
        seq: u64,
        /// The logged mutation, applied through the same path recovery
        /// uses.
        op: rl_store::WalOp,
        /// Primary epoch the frame was written under (protocol v8; 0 from
        /// pre-epoch history). A follower rejects frames below its known
        /// epoch with `StaleEpoch` and adopts any higher epoch it sees.
        #[serde(default)]
        epoch: u64,
    },
    /// Keep-alive in a `Subscribe` stream when the follower is caught up
    /// (protocol v5). Also carries the lag a not-yet-caught-up follower
    /// should report.
    Heartbeat {
        /// The primary's newest global op sequence.
        head_seq: u64,
        /// WAL bytes between the subscriber's position and the head.
        lag_bytes: u64,
        /// The sender's primary epoch (protocol v8).
        #[serde(default)]
        epoch: u64,
        /// Lease grant (protocol v8): how long the follower may treat this
        /// primary as alive. 0 means no lease (auto-failover disabled on
        /// the primary); a follower with `--auto-failover` runs an
        /// election when the last grant expires without fresh traffic.
        #[serde(default)]
        lease_ms: u64,
    },
    /// Terminal response in a `Subscribe` stream when `from_seq` falls
    /// outside the primary's retained log — the follower must re-bootstrap
    /// from a checkpoint (protocol v5).
    ResyncRequired {
        /// Oldest op sequence still available for tailing + 1 lies after
        /// this watermark (the committed checkpoint's op count).
        base_ops: u64,
    },
    /// Response to `ReplStatus` (protocol v5).
    ReplStatus(ReplStatusReply),
    /// Response to `Promote` (protocol v5).
    Promoted {
        /// The node's op sequence at promotion (its new mutation stream
        /// continues from here).
        head_seq: u64,
        /// False when the node was already primary (idempotent call).
        was_follower: bool,
        /// The primary epoch after the promote (protocol v8): bumped and
        /// made durable before the role flip when `was_follower`,
        /// unchanged on an idempotent call.
        #[serde(default)]
        epoch: u64,
    },
    /// First line of a `SubscribeMatches` stream (protocol v6).
    Subscribed {
        /// Handle for `Unsubscribe`.
        sub_id: u64,
        /// LSH tables the compiled plan probes per record (`Σ L` over the
        /// structures the rule's predicates require).
        tables: u64,
    },
    /// One pushed match in a `SubscribeMatches` stream (protocol v6): the
    /// newly ingested record matched `matched` records inside the
    /// subscription's window.
    MatchEvent {
        /// The subscription this event belongs to.
        sub_id: u64,
        /// The record whose ingestion triggered the event.
        record_id: u64,
        /// Window records satisfying the rule, ascending.
        matched: Vec<u64>,
    },
    /// Terminal line of a `SubscribeMatches` stream when the subscriber
    /// fell behind its bounded event queue (protocol v6). Delivery stops
    /// — the client must resubscribe, exactly like a follower re-bootstraps
    /// on [`Reply::ResyncRequired`].
    SubscriptionLagged {
        /// Events dropped since the subscriber last kept up.
        dropped: u64,
    },
    /// Response to `Unsubscribe` (protocol v6).
    Unsubscribed {
        /// False when the id named no live subscription.
        removed: bool,
    },
    /// Response to `Upgrade` (protocol v7): the negotiated protocol
    /// version. When it is ≥ 7 both sides switch to binary frames right
    /// after this line; otherwise the connection stays on JSON.
    Upgraded {
        /// `min(client max_version, server version)`.
        version: u32,
    },
    /// Response to `GetShardMap` (protocol v10).
    ShardMap(ShardMapReply),
    /// Response to `Reshard` (protocol v10): the migration is planned and
    /// running in the background. Poll `MigrationStatus` (or watch the
    /// `rl_reshard_state` gauge) for completion; the shard-map epoch in
    /// `GetShardMap`/`Stats` bumps when cutover lands.
    ReshardStarted {
        /// `"split"` or `"merge"`.
        kind: String,
        /// The shard records move out of.
        source: usize,
        /// The shard records move into (brand-new on a split).
        target: usize,
        /// Records the migrator has to copy (snapshot at start).
        total: u64,
    },
    /// Response to `MigrationStatus` (protocol v10).
    Migration(rl_reshard::MigrationStatus),
    /// Response to `Shutdown`.
    ShuttingDown,
}

/// Replication state reported by the `ReplStatus` command (protocol v5).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplStatusReply {
    /// `"standalone"`, `"primary"`, or `"follower"`.
    pub role: String,
    /// The primary this follower replicates from (followers only).
    pub primary_addr: Option<String>,
    /// Global op sequence applied locally.
    pub applied_seq: u64,
    /// Newest primary op sequence this node knows of (== `applied_seq`
    /// on a primary; from the subscription stream on a follower).
    pub head_seq: u64,
    /// `head_seq - applied_seq`: frames known but not yet applied.
    pub lag_frames: u64,
    /// WAL bytes between this node's replication position and the
    /// primary's head (0 on a primary).
    pub lag_bytes: u64,
    /// Live `Subscribe` streams being served (primaries only).
    pub followers: u64,
    /// Times this follower's subscription reconnected since startup.
    pub reconnects: u64,
    /// Highest primary epoch this node has held or observed (protocol
    /// v8; 0 on pre-epoch directories).
    #[serde(default)]
    pub epoch: u64,
    /// The failover lease this node grants its followers on heartbeats
    /// (protocol v8): `--lease-ms` on a primary, 0 = no leases. Reported
    /// so a follower can seed its lease on first contact instead of
    /// waiting for a heartbeat a dying primary might never send.
    #[serde(default)]
    pub lease_ms: u64,
}

/// The shard map served by `GetShardMap` (protocol v10).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardMapReply {
    /// Map version; bumps by one at every reshard cutover. 1 is the
    /// initial uniform map.
    pub epoch: u64,
    /// Shards the map assigns keyspace to.
    pub num_shards: usize,
    /// The range assignments: each entry owns the keyspace from its
    /// `start` up to the next entry's start (the last runs to
    /// `u64::MAX`).
    pub ranges: Vec<rl_reshard::RangeAssignment>,
    /// Records currently resident per shard, indexed by shard id. During
    /// a migration, moved records are counted on both source and target.
    pub records: Vec<u64>,
    /// The in-flight migration, if any (`active == false` otherwise).
    pub migration: rl_reshard::MigrationStatus,
}

/// Service counters reported by the `Stats` command.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsReply {
    /// Protocol version (see [`PROTOCOL_VERSION`]).
    pub protocol_version: u32,
    /// Number of index shards.
    pub shards: usize,
    /// Worker threads executing requests.
    pub workers: usize,
    /// Bounded work-queue capacity.
    pub queue_capacity: usize,
    /// Records indexed (including restored and streamed ones).
    pub indexed: usize,
    /// Records observed through `Stream`.
    pub streamed: u64,
    /// Requests executed since startup (rejected ones excluded).
    pub requests_served: u64,
    /// Requests rejected with `Backpressure` since startup.
    pub rejected_backpressure: u64,
    /// Seconds since the server started.
    pub uptime_secs: u64,
    /// Per-structure blocking diagnostics: active backend (`"random"` or
    /// `"covering"`) with its `L`, key width, and bucket occupancy
    /// aggregated across shards.
    pub blocking: Vec<StructureStats>,
    /// Shard-map version (protocol v10; absent — 0 — from older peers).
    #[serde(default)]
    pub shard_map_epoch: u64,
    /// Records resident per shard, indexed by shard id (protocol v10;
    /// empty from older peers).
    #[serde(default)]
    pub shard_records: Vec<u64>,
}

/// The one-line response envelope.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// The request succeeded.
    Ok(Reply),
    /// The request failed.
    Err(RequestError),
}

impl Response {
    /// Converts the envelope into a result.
    pub fn into_result(self) -> Result<Reply, RequestError> {
        match self {
            Response::Ok(reply) => Ok(reply),
            Response::Err(e) => Err(e),
        }
    }
}

/// Binary envelopes for protocol v7 (after the [`Request::Upgrade`]
/// handshake). Each `rl-wire` frame carries one of these payloads,
/// discriminated by the frame tag:
///
/// - [`TAG_REQUEST`] / [`TAG_RESPONSE`] — `request id: u64 LE` followed
///   by the JSON-encoded [`Request`] / [`Response`]. The id correlates
///   pipelined requests with their (possibly out-of-order) responses;
///   id `0` marks unsolicited pushes (heartbeats, match events, stream
///   lines), which never collide because clients allocate ids from 1.
/// - [`TAG_WAL`] — `global op seq: u64 LE` followed by the binary
///   [`rl_store::WalOp`] encoding (the same one v2 WAL segments store).
/// - [`TAG_CHUNK`] — raw checkpoint bytes, no envelope: chunks arrive in
///   order after a `CheckpointMeta` response, without the base64 + JSON
///   overhead of the v5 transfer.
pub mod wire {
    use super::{Reply, Request, Response};
    use cbv_hb::matcher::MatchStats;
    use cbv_hb::Record;

    /// Frame tag: an id-enveloped [`Request`].
    pub const TAG_REQUEST: u8 = 1;
    /// Frame tag: an id-enveloped [`Response`].
    pub const TAG_RESPONSE: u8 = 2;
    /// Frame tag: a replicated WAL frame (`seq` + binary op), implicitly
    /// epoch 0. Kept for pre-epoch history so v7 followers keep decoding.
    pub const TAG_WAL: u8 = 3;
    /// Frame tag: raw checkpoint bytes.
    pub const TAG_CHUNK: u8 = 4;
    /// Frame tag: an epoch-stamped replicated WAL frame (protocol v8) —
    /// `seq u64 LE | epoch u64 LE | binary op`. Used whenever the frame's
    /// epoch is non-zero; a separate tag keeps the encoding unconditional
    /// instead of versioned.
    pub const TAG_WAL_E: u8 = 5;
    /// Frame tag: a follower durability ack (protocol v8) — `seq u64 LE`,
    /// sent *upstream* on the subscription connection after the follower
    /// has WAL-logged and applied everything through `seq`. Feeds the
    /// primary's `--sync-replicas` quorum wait.
    pub const TAG_ACK: u8 = 6;

    /// Request id marking unsolicited (server-pushed) responses.
    pub const PUSH_ID: u64 = 0;

    // The body format byte after the 8-byte request id. Hot-path
    // variants get a fixed-width binary body so probe throughput is not
    // bounded by JSON serialization; every other variant carries its
    // JSON encoding behind `BODY_JSON`. Both sides of a v7 connection
    // speak this module, so the set of binary bodies can grow without a
    // protocol bump — unknown formats are a decode error, not a
    // misparse.
    const BODY_JSON: u8 = 0;
    // Request bodies.
    const BODY_PROBE: u8 = 1;
    const BODY_INDEX: u8 = 2;
    const BODY_INSERT: u8 = 3;
    const BODY_STREAM: u8 = 4;
    // Response bodies.
    const BODY_MATCHES: u8 = 1;
    const BODY_INDEXED: u8 = 2;
    const BODY_OBSERVED: u8 = 3;

    /// Encodes `id` + body into `payload` (cleared first). `Probe`,
    /// `Index`, `Insert`, and `Stream` bodies are binary; the rest JSON.
    ///
    /// # Errors
    /// Serialization failure, as a message.
    pub fn encode_request(id: u64, req: &Request, payload: &mut Vec<u8>) -> Result<(), String> {
        payload.clear();
        payload.extend_from_slice(&id.to_le_bytes());
        match req {
            Request::Probe { records } => encode_records(BODY_PROBE, records, payload),
            Request::Index { records } => encode_records(BODY_INDEX, records, payload),
            Request::Insert { records } => encode_records(BODY_INSERT, records, payload),
            Request::Stream { record } => {
                encode_records(BODY_STREAM, std::slice::from_ref(record), payload);
            }
            other => {
                payload.push(BODY_JSON);
                let json = serde_json::to_string(other).map_err(|e| e.to_string())?;
                payload.extend_from_slice(json.as_bytes());
            }
        }
        Ok(())
    }

    /// Encodes `id` + body into `payload` (cleared first). `Matches`,
    /// `Indexed`, and `Observed` replies are binary; the rest JSON.
    ///
    /// # Errors
    /// Serialization failure, as a message.
    pub fn encode_response(id: u64, resp: &Response, payload: &mut Vec<u8>) -> Result<(), String> {
        payload.clear();
        payload.extend_from_slice(&id.to_le_bytes());
        match resp {
            Response::Ok(Reply::Matches { pairs, stats, .. }) => {
                payload.push(BODY_MATCHES);
                payload.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
                for (a, b) in pairs {
                    payload.extend_from_slice(&a.to_le_bytes());
                    payload.extend_from_slice(&b.to_le_bytes());
                }
                payload.extend_from_slice(&stats.candidates.to_le_bytes());
                payload.extend_from_slice(&stats.distance_computations.to_le_bytes());
                payload.extend_from_slice(&stats.matched.to_le_bytes());
                // v9 appended the truncated-probe counter; notes are
                // re-derived from it on decode.
                payload.extend_from_slice(&stats.truncated.to_le_bytes());
            }
            Response::Ok(Reply::Indexed {
                accepted,
                total_indexed,
                applied_seq,
            }) => {
                payload.push(BODY_INDEXED);
                payload.extend_from_slice(&(*accepted as u64).to_le_bytes());
                payload.extend_from_slice(&(*total_indexed as u64).to_le_bytes());
                payload.extend_from_slice(&applied_seq.to_le_bytes());
            }
            Response::Ok(Reply::Observed {
                matches,
                applied_seq,
            }) => {
                payload.push(BODY_OBSERVED);
                payload.extend_from_slice(&(matches.len() as u32).to_le_bytes());
                for id in matches {
                    payload.extend_from_slice(&id.to_le_bytes());
                }
                payload.extend_from_slice(&applied_seq.to_le_bytes());
            }
            other => {
                payload.push(BODY_JSON);
                let json = serde_json::to_string(other).map_err(|e| e.to_string())?;
                payload.extend_from_slice(json.as_bytes());
            }
        }
        Ok(())
    }

    /// Decodes a [`TAG_REQUEST`] payload.
    ///
    /// # Errors
    /// A description of the malformation.
    pub fn decode_request(payload: &[u8]) -> Result<(u64, Request), String> {
        let (id, format, body) = split_envelope(payload)?;
        let req = match format {
            BODY_JSON => serde_json::from_slice::<Request>(body).map_err(|e| e.to_string())?,
            BODY_PROBE => Request::Probe {
                records: decode_records(body)?,
            },
            BODY_INDEX => Request::Index {
                records: decode_records(body)?,
            },
            BODY_INSERT => Request::Insert {
                records: decode_records(body)?,
            },
            BODY_STREAM => {
                let mut records = decode_records(body)?;
                if records.len() != 1 {
                    return Err(format!("stream body has {} records", records.len()));
                }
                Request::Stream {
                    record: records.pop().expect("checked length"),
                }
            }
            other => return Err(format!("unknown request body format {other}")),
        };
        Ok((id, req))
    }

    /// Decodes a [`TAG_RESPONSE`] payload.
    ///
    /// # Errors
    /// A description of the malformation.
    pub fn decode_response(payload: &[u8]) -> Result<(u64, Response), String> {
        let (id, format, body) = split_envelope(payload)?;
        let resp = match format {
            BODY_JSON => serde_json::from_slice::<Response>(body).map_err(|e| e.to_string())?,
            BODY_MATCHES => {
                let mut cur = Cursor(body);
                let n = cur.u32()? as usize;
                let mut pairs = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    pairs.push((cur.u64()?, cur.u64()?));
                }
                let stats = MatchStats {
                    candidates: cur.u64()?,
                    distance_computations: cur.u64()?,
                    matched: cur.u64()?,
                    // v9 appended `truncated`; tolerate its absence so a
                    // v9 client still decodes a pre-v9 server's reply.
                    truncated: cur.u64_or_zero()?,
                };
                cur.finish()?;
                let notes = super::truncation_notes(&stats);
                Response::Ok(Reply::Matches {
                    pairs,
                    stats,
                    notes,
                })
            }
            BODY_INDEXED => {
                let mut cur = Cursor(body);
                let accepted = cur.u64()? as usize;
                let total_indexed = cur.u64()? as usize;
                // v8 appended `applied_seq`; tolerate its absence so a v8
                // client still decodes a pre-v8 server's reply.
                let applied_seq = cur.u64_or_zero()?;
                cur.finish()?;
                Response::Ok(Reply::Indexed {
                    accepted,
                    total_indexed,
                    applied_seq,
                })
            }
            BODY_OBSERVED => {
                let mut cur = Cursor(body);
                let n = cur.u32()? as usize;
                let mut matches = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    matches.push(cur.u64()?);
                }
                let applied_seq = cur.u64_or_zero()?;
                cur.finish()?;
                Response::Ok(Reply::Observed {
                    matches,
                    applied_seq,
                })
            }
            other => return Err(format!("unknown response body format {other}")),
        };
        Ok((id, resp))
    }

    /// `format byte | count u32 LE | records`, each record
    /// `id u64 LE | nfields u16 LE | (len u32 LE | utf-8 bytes)*` —
    /// the same record shape the binary WAL uses.
    fn encode_records(format: u8, records: &[Record], out: &mut Vec<u8>) {
        out.push(format);
        out.extend_from_slice(&(records.len() as u32).to_le_bytes());
        for rec in records {
            out.extend_from_slice(&rec.id.to_le_bytes());
            out.extend_from_slice(&(rec.fields.len() as u16).to_le_bytes());
            for field in &rec.fields {
                out.extend_from_slice(&(field.len() as u32).to_le_bytes());
                out.extend_from_slice(field.as_bytes());
            }
        }
    }

    fn decode_records(body: &[u8]) -> Result<Vec<Record>, String> {
        let mut cur = Cursor(body);
        let n = cur.u32()? as usize;
        let mut records = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let id = cur.u64()?;
            let nfields = cur.u16()? as usize;
            let mut fields = Vec::with_capacity(nfields.min(1024));
            for _ in 0..nfields {
                let len = cur.u32()? as usize;
                let raw = cur.take(len)?;
                let s = std::str::from_utf8(raw).map_err(|e| format!("field not utf-8: {e}"))?;
                fields.push(s.to_string());
            }
            records.push(Record { id, fields });
        }
        cur.finish()?;
        Ok(records)
    }

    /// A bounds-checked little-endian reader over a body slice.
    struct Cursor<'a>(&'a [u8]);

    impl<'a> Cursor<'a> {
        fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
            if self.0.len() < n {
                return Err(format!(
                    "body truncated: need {n} bytes, have {}",
                    self.0.len()
                ));
            }
            let (head, rest) = self.0.split_at(n);
            self.0 = rest;
            Ok(head)
        }
        fn u16(&mut self) -> Result<u16, String> {
            Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
        }
        fn u32(&mut self) -> Result<u32, String> {
            Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
        }
        fn u64(&mut self) -> Result<u64, String> {
            Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
        }
        /// Reads a trailing `u64` that older peers do not send: returns 0
        /// on an exhausted body, errors only on a *partial* field.
        fn u64_or_zero(&mut self) -> Result<u64, String> {
            if self.0.is_empty() {
                return Ok(0);
            }
            self.u64()
        }
        fn finish(&self) -> Result<(), String> {
            if self.0.is_empty() {
                Ok(())
            } else {
                Err(format!("{} trailing bytes after body", self.0.len()))
            }
        }
    }

    /// Encodes a [`TAG_WAL`] payload into `payload` (cleared first).
    pub fn encode_wal(seq: u64, op: &rl_store::WalOp, payload: &mut Vec<u8>) {
        payload.clear();
        payload.extend_from_slice(&seq.to_le_bytes());
        op.encode_bin(payload);
    }

    /// Decodes a [`TAG_WAL`] payload.
    ///
    /// # Errors
    /// A description of the malformation.
    pub fn decode_wal(payload: &[u8]) -> Result<(u64, rl_store::WalOp), String> {
        let (seq, body) = split_id(payload)?;
        let op = rl_store::WalOp::decode_bin(body)?;
        Ok((seq, op))
    }

    /// Encodes a [`TAG_WAL_E`] payload into `payload` (cleared first):
    /// `seq u64 LE | epoch u64 LE | binary op`.
    pub fn encode_wal_epoch(seq: u64, epoch: u64, op: &rl_store::WalOp, payload: &mut Vec<u8>) {
        payload.clear();
        payload.extend_from_slice(&seq.to_le_bytes());
        payload.extend_from_slice(&epoch.to_le_bytes());
        op.encode_bin(payload);
    }

    /// Decodes a [`TAG_WAL_E`] payload into `(seq, epoch, op)`.
    ///
    /// # Errors
    /// A description of the malformation.
    pub fn decode_wal_epoch(payload: &[u8]) -> Result<(u64, u64, rl_store::WalOp), String> {
        let (seq, rest) = split_id(payload)?;
        let (epoch, body) = split_id(rest)?;
        let op = rl_store::WalOp::decode_bin(body)?;
        Ok((seq, epoch, op))
    }

    /// Encodes a [`TAG_ACK`] payload into `payload` (cleared first): the
    /// follower's durable `seq` as `u64 LE`.
    pub fn encode_ack(seq: u64, payload: &mut Vec<u8>) {
        payload.clear();
        payload.extend_from_slice(&seq.to_le_bytes());
    }

    /// Decodes a [`TAG_ACK`] payload.
    ///
    /// # Errors
    /// A description of the malformation.
    pub fn decode_ack(payload: &[u8]) -> Result<u64, String> {
        let (seq, rest) = split_id(payload)?;
        if !rest.is_empty() {
            return Err(format!("{} trailing bytes after ack", rest.len()));
        }
        Ok(seq)
    }

    fn split_id(payload: &[u8]) -> Result<(u64, &[u8]), String> {
        if payload.len() < 8 {
            return Err(format!("envelope too short: {} bytes", payload.len()));
        }
        let id = u64::from_le_bytes(payload[..8].try_into().unwrap());
        Ok((id, &payload[8..]))
    }

    /// Splits `id | format byte | body` for request/response payloads.
    fn split_envelope(payload: &[u8]) -> Result<(u64, u8, &[u8]), String> {
        let (id, rest) = split_id(payload)?;
        let Some((&format, body)) = rest.split_first() else {
            return Err("envelope missing body format byte".into());
        };
        Ok((id, format, body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let reqs = [
            Request::Index {
                records: vec![Record::new(1, ["JOHN", "SMITH"])],
            },
            Request::Probe { records: vec![] },
            Request::Stream {
                record: Record::new(2, ["MARY", "JONES"]),
            },
            Request::DedupStatus,
            Request::Stats,
            Request::Metrics,
            Request::Snapshot {
                path: Some("/tmp/x.snap".into()),
            },
            Request::Snapshot { path: None },
            Request::Insert {
                records: vec![Record::new(3, ["ANNA", "LEE"])],
            },
            Request::Delete { ids: vec![1, 2, 3] },
            Request::FetchCheckpoint,
            Request::Subscribe {
                from_seq: 42,
                epoch: 3,
            },
            Request::ReplStatus,
            Request::Promote,
            Request::SubscribeMatches {
                rule: "0<=4 & 1<=4".into(),
                window: WindowSpec::Count(128),
                late: LateArrival::Drop,
                cap: 16,
            },
            Request::SubscribeMatches {
                rule: "0<=2".into(),
                window: WindowSpec::TimeMs(60_000),
                late: LateArrival::ApplyIfInWindow,
                cap: 0,
            },
            Request::Unsubscribe { sub_id: 7 },
            Request::Upgrade { max_version: 7 },
            Request::GetShardMap,
            Request::Reshard {
                op: rl_reshard::ReshardOp::Split { source: 0 },
            },
            Request::Reshard {
                op: rl_reshard::ReshardOp::Merge {
                    source: 2,
                    target: 1,
                },
            },
            Request::MigrationStatus,
            Request::Shutdown,
        ];
        for req in reqs {
            let line = serde_json::to_string(&req).unwrap();
            assert!(!line.contains('\n'), "one request per line: {line}");
            let back: Request = serde_json::from_str(&line).unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn response_roundtrip() {
        let resps = [
            Response::Ok(Reply::Matches {
                pairs: vec![(1, 10)],
                stats: MatchStats::default(),
                notes: vec![],
            }),
            Response::Err(RequestError::new(ErrorCode::Backpressure, "queue full")),
            Response::Ok(Reply::Metrics(rl_obs::MetricsSnapshot::default())),
            Response::Ok(Reply::Deleted {
                removed: 2,
                total_indexed: 7,
                applied_seq: 4,
            }),
            Response::Err(RequestError::new(ErrorCode::Storage, "wal append failed")),
            Response::Ok(Reply::CheckpointMeta {
                len: 1024,
                chunks: 2,
            }),
            Response::Ok(Reply::CheckpointChunk {
                index: 0,
                data: "aGVsbG8=".into(),
            }),
            Response::Ok(Reply::WalFrame {
                seq: 9,
                op: rl_store::WalOp::Delete(3),
                epoch: 2,
            }),
            Response::Ok(Reply::Heartbeat {
                head_seq: 12,
                lag_bytes: 88,
                epoch: 2,
                lease_ms: 3000,
            }),
            Response::Ok(Reply::ResyncRequired { base_ops: 100 }),
            Response::Ok(Reply::ReplStatus(ReplStatusReply {
                role: "follower".into(),
                primary_addr: Some("127.0.0.1:7001".into()),
                applied_seq: 10,
                head_seq: 12,
                lag_frames: 2,
                lag_bytes: 88,
                followers: 0,
                reconnects: 1,
                epoch: 2,
                lease_ms: 0,
            })),
            Response::Ok(Reply::Promoted {
                head_seq: 12,
                was_follower: true,
                epoch: 3,
            }),
            Response::Ok(Reply::Subscribed {
                sub_id: 1,
                tables: 40,
            }),
            Response::Ok(Reply::MatchEvent {
                sub_id: 1,
                record_id: 99,
                matched: vec![3, 7],
            }),
            Response::Ok(Reply::SubscriptionLagged { dropped: 12 }),
            Response::Ok(Reply::Unsubscribed { removed: true }),
            Response::Ok(Reply::Upgraded { version: 7 }),
            Response::Ok(Reply::ShardMap(ShardMapReply {
                epoch: 2,
                num_shards: 3,
                ranges: rl_reshard::ShardMap::uniform(3).assignments().to_vec(),
                records: vec![10, 7, 3],
                migration: rl_reshard::MigrationStatus::idle(2),
            })),
            Response::Ok(Reply::ReshardStarted {
                kind: "split".into(),
                source: 0,
                target: 2,
                total: 40,
            }),
            Response::Ok(Reply::Migration(rl_reshard::MigrationStatus::idle(1))),
            Response::Err(
                RequestError::new(ErrorCode::NotPrimary, "read-only follower")
                    .with_primary("127.0.0.1:7001"),
            ),
        ];
        for resp in resps {
            let line = serde_json::to_string(&resp).unwrap();
            let back: Response = serde_json::from_str(&line).unwrap();
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn wire_envelopes_roundtrip() {
        let mut payload = Vec::new();
        let req = Request::Probe {
            records: vec![Record::new(5, ["A", "B"])],
        };
        wire::encode_request(42, &req, &mut payload).unwrap();
        assert_eq!(wire::decode_request(&payload).unwrap(), (42, req));

        let resp = Response::Ok(Reply::Upgraded { version: 7 });
        wire::encode_response(wire::PUSH_ID, &resp, &mut payload).unwrap();
        assert_eq!(wire::decode_response(&payload).unwrap(), (0, resp));

        let op = rl_store::WalOp::Insert(Record::new(9, ["X", "Y"]));
        wire::encode_wal(1234, &op, &mut payload);
        assert_eq!(wire::decode_wal(&payload).unwrap(), (1234, op.clone()));

        wire::encode_wal_epoch(1234, 5, &op, &mut payload);
        assert_eq!(wire::decode_wal_epoch(&payload).unwrap(), (1234, 5, op));

        wire::encode_ack(777, &mut payload);
        assert_eq!(wire::decode_ack(&payload).unwrap(), 777);
        assert!(wire::decode_ack(&[0; 12]).is_err(), "trailing ack bytes");

        assert!(wire::decode_request(&[1, 2, 3]).is_err(), "short envelope");
        assert!(
            wire::decode_response(&payload).is_err(),
            "wal payload is not a response"
        );
    }

    #[test]
    fn wire_binary_bodies_roundtrip() {
        // Every hot-path variant takes the binary body; a JSON-only
        // variant rides the fallback. Either way decode inverts encode.
        let reqs = [
            Request::Probe {
                records: vec![Record::new(1, ["JOHN", "SMITH"]), Record::new(2, ["", "Ω"])],
            },
            Request::Probe { records: vec![] },
            Request::Index {
                records: vec![Record::new(3, ["MARY", "JONES"])],
            },
            Request::Insert {
                records: vec![Record::new(4, ["ANNA", "LEE"])],
            },
            Request::Stream {
                record: Record::new(5, ["SAM", "ODD"]),
            },
            Request::Stats,
            Request::Delete { ids: vec![1, 2] },
        ];
        let mut payload = Vec::new();
        for req in reqs {
            wire::encode_request(7, &req, &mut payload).unwrap();
            assert_eq!(wire::decode_request(&payload).unwrap(), (7, req));
        }
        let resps = [
            Response::Ok(Reply::Matches {
                pairs: vec![(1, 10), (2, 20)],
                stats: MatchStats {
                    candidates: 5,
                    distance_computations: 5,
                    matched: 2,
                    truncated: 0,
                },
                notes: vec![],
            }),
            Response::Ok(Reply::Matches {
                pairs: vec![(3, 30)],
                stats: MatchStats {
                    candidates: 7,
                    distance_computations: 7,
                    matched: 1,
                    truncated: 2,
                },
                notes: truncation_notes(&MatchStats {
                    candidates: 7,
                    distance_computations: 7,
                    matched: 1,
                    truncated: 2,
                }),
            }),
            Response::Ok(Reply::Matches {
                pairs: vec![],
                stats: MatchStats::default(),
                notes: vec![],
            }),
            Response::Ok(Reply::Indexed {
                accepted: 3,
                total_indexed: 99,
                applied_seq: 120,
            }),
            Response::Ok(Reply::Observed {
                matches: vec![4, 5, 6],
                applied_seq: 121,
            }),
            Response::Err(RequestError::new(ErrorCode::Linkage, "bad arity")),
        ];
        for resp in resps {
            wire::encode_response(9, &resp, &mut payload).unwrap();
            assert_eq!(wire::decode_response(&payload).unwrap(), (9, resp));
        }
        // Truncated binary bodies are a decode error, never a misparse.
        wire::encode_request(
            7,
            &Request::Probe {
                records: vec![Record::new(1, ["JOHN", "SMITH"])],
            },
            &mut payload,
        )
        .unwrap();
        for cut in 9..payload.len() {
            assert!(wire::decode_request(&payload[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn error_codes_display_kebab() {
        assert_eq!(ErrorCode::Backpressure.to_string(), "backpressure");
        assert_eq!(ErrorCode::ShuttingDown.to_string(), "shutting-down");
        assert_eq!(ErrorCode::Storage.to_string(), "storage");
        assert_eq!(ErrorCode::NotPrimary.to_string(), "not-primary");
        assert_eq!(ErrorCode::StaleEpoch.to_string(), "stale-epoch");
        assert_eq!(ErrorCode::QuorumTimeout.to_string(), "quorum-timeout");
    }

    #[test]
    fn binary_bodies_tolerate_missing_applied_seq() {
        // A pre-v8 peer's Indexed/Observed body stops before the
        // trailing applied_seq; v8 decodes it as 0 instead of erroring.
        let mut payload = Vec::new();
        wire::encode_response(
            9,
            &Response::Ok(Reply::Indexed {
                accepted: 3,
                total_indexed: 99,
                applied_seq: 7,
            }),
            &mut payload,
        )
        .unwrap();
        let short = &payload[..payload.len() - 8];
        assert_eq!(
            wire::decode_response(short).unwrap().1,
            Response::Ok(Reply::Indexed {
                accepted: 3,
                total_indexed: 99,
                applied_seq: 0,
            })
        );
        wire::encode_response(
            9,
            &Response::Ok(Reply::Observed {
                matches: vec![4, 5],
                applied_seq: 7,
            }),
            &mut payload,
        )
        .unwrap();
        let short = &payload[..payload.len() - 8];
        assert_eq!(
            wire::decode_response(short).unwrap().1,
            Response::Ok(Reply::Observed {
                matches: vec![4, 5],
                applied_seq: 0,
            })
        );
    }

    #[test]
    fn plain_errors_omit_primary_addr_on_the_wire() {
        // v4 clients parse v5 error envelopes as long as the new field
        // stays off the wire when unset.
        let err = Response::Err(RequestError::new(ErrorCode::Storage, "x"));
        let line = serde_json::to_string(&err).unwrap();
        assert!(!line.contains("primary_addr"), "{line}");
        let redirect =
            Response::Err(RequestError::new(ErrorCode::NotPrimary, "x").with_primary("a:1"));
        let line = serde_json::to_string(&redirect).unwrap();
        assert!(line.contains("primary_addr"), "{line}");
    }
}
