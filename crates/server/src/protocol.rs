//! The wire protocol: newline-delimited JSON over TCP.
//!
//! Every request is one JSON object on one line; the server answers with
//! exactly one JSON object on one line. Requests are externally tagged by
//! command name (`{"Probe": {...}}`); responses are an envelope with an
//! `ok` discriminator so clients can branch before deserializing the
//! payload. See `docs/SERVER.md` for the full reference with examples.

use cbv_hb::blocking::StructureStats;
use cbv_hb::matcher::MatchStats;
use cbv_hb::Record;
use serde::{Deserialize, Serialize};

/// Protocol version spoken by this build (bumped on breaking changes;
/// reported in [`StatsReply`]). Version 2 added the `blocking` section to
/// the Stats reply (backend tag, `L`, key width, bucket occupancy per
/// structure). Version 3 added the `Metrics` request, returning the
/// server's merged metrics registry (counters, gauges, and mergeable
/// latency histograms). Version 4 added the durable mutation requests
/// `Insert` and `Delete` (write-ahead-logged before the reply when the
/// server runs with `--data-dir`) and the `Storage` error code; earlier
/// requests are unchanged.
pub const PROTOCOL_VERSION: u32 = 4;

/// A client request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Index records into data set A (round-robin across shards).
    Index { records: Vec<Record> },
    /// Probe records (data set B) against the index; does not modify it.
    Probe { records: Vec<Record> },
    /// Streaming observe: match one record against everything indexed so
    /// far, then index it (the paper's insert-and-query mode).
    Stream { record: Record },
    /// Duplicate clusters accumulated from `Stream` matches so far.
    DedupStatus,
    /// Service counters and configuration.
    Stats,
    /// Full metrics snapshot: request counters, gauges, and latency
    /// histograms (queue-wait / execution split, pipeline phases), merged
    /// across workers and shards. Protocol version 3+.
    Metrics,
    /// Persist the index to the server's snapshot path (or an explicit
    /// override) atomically.
    Snapshot { path: Option<String> },
    /// Durable insert (protocol v4): index records into data set A like
    /// `Index`, but on a server running with `--data-dir` the mutation is
    /// written to the write-ahead log **before** the reply, so an
    /// acknowledged insert survives a crash. (With a data dir, `Index`
    /// and `Stream` are logged too; `Insert` exists so clients can state
    /// the durability intent explicitly and older servers reject it.)
    Insert { records: Vec<Record> },
    /// Durable delete (protocol v4): tombstone records by id. Deleted
    /// records can never match again; unknown ids are ignored. WAL-logged
    /// before the reply when the server has a data dir.
    Delete { ids: Vec<u64> },
    /// Stop accepting connections, drain queued requests, and exit.
    Shutdown,
}

/// Why a request was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorCode {
    /// The request line was not valid JSON for [`Request`].
    Parse,
    /// The bounded work queue is full; retry after backing off.
    Backpressure,
    /// The server is shutting down and no longer accepts work.
    ShuttingDown,
    /// The linkage engine rejected the request (e.g. malformed records).
    Linkage,
    /// Snapshot I/O failed.
    Snapshot,
    /// The command is valid but not available (e.g. no snapshot path
    /// configured).
    Unavailable,
    /// The durability layer failed (WAL append or checkpoint I/O); the
    /// mutation was NOT applied and must be retried. Protocol v4+.
    Storage,
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ErrorCode::Parse => "parse",
            ErrorCode::Backpressure => "backpressure",
            ErrorCode::ShuttingDown => "shutting-down",
            ErrorCode::Linkage => "linkage",
            ErrorCode::Snapshot => "snapshot",
            ErrorCode::Unavailable => "unavailable",
            ErrorCode::Storage => "storage",
        };
        f.write_str(s)
    }
}

/// A typed request failure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestError {
    /// Machine-readable category.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl RequestError {
    pub(crate) fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        Self {
            code,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for RequestError {}

/// A successful reply payload, tagged by kind.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Reply {
    /// Response to `Index`.
    Indexed {
        /// Records accepted in this request.
        accepted: usize,
        /// Records indexed since startup (restored records included).
        total_indexed: usize,
    },
    /// Response to `Probe`.
    Matches {
        /// Matched `(id_A, id_B)` pairs, sorted.
        pairs: Vec<(u64, u64)>,
        /// Matching counters for this probe.
        stats: MatchStats,
    },
    /// Response to `Stream`.
    Observed {
        /// Ids of previously indexed records matching the observed one.
        matches: Vec<u64>,
    },
    /// Response to `DedupStatus`.
    DedupStatus {
        /// Records involved in at least one stream match.
        linked_records: usize,
        /// Duplicate clusters (size ≥ 2), each sorted.
        clusters: Vec<Vec<u64>>,
    },
    /// Response to `Stats`.
    Stats(StatsReply),
    /// Response to `Metrics`: the server's metrics registry at snapshot
    /// time. Histogram bucket boundaries are the fixed log-linear scheme
    /// of `rl-obs`, so snapshots from different servers merge exactly.
    Metrics(rl_obs::MetricsSnapshot),
    /// Response to `Delete` (protocol v4).
    Deleted {
        /// Records actually removed (unknown ids don't count).
        removed: usize,
        /// Records remaining in the index.
        total_indexed: usize,
    },
    /// Response to `Snapshot`.
    Snapshotted {
        /// Where the snapshot was written.
        path: String,
        /// Records captured in the snapshot.
        indexed: usize,
    },
    /// Response to `Shutdown`.
    ShuttingDown,
}

/// Service counters reported by the `Stats` command.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsReply {
    /// Protocol version (see [`PROTOCOL_VERSION`]).
    pub protocol_version: u32,
    /// Number of index shards.
    pub shards: usize,
    /// Worker threads executing requests.
    pub workers: usize,
    /// Bounded work-queue capacity.
    pub queue_capacity: usize,
    /// Records indexed (including restored and streamed ones).
    pub indexed: usize,
    /// Records observed through `Stream`.
    pub streamed: u64,
    /// Requests executed since startup (rejected ones excluded).
    pub requests_served: u64,
    /// Requests rejected with `Backpressure` since startup.
    pub rejected_backpressure: u64,
    /// Seconds since the server started.
    pub uptime_secs: u64,
    /// Per-structure blocking diagnostics: active backend (`"random"` or
    /// `"covering"`) with its `L`, key width, and bucket occupancy
    /// aggregated across shards.
    pub blocking: Vec<StructureStats>,
}

/// The one-line response envelope.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// The request succeeded.
    Ok(Reply),
    /// The request failed.
    Err(RequestError),
}

impl Response {
    /// Converts the envelope into a result.
    pub fn into_result(self) -> Result<Reply, RequestError> {
        match self {
            Response::Ok(reply) => Ok(reply),
            Response::Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let reqs = [
            Request::Index {
                records: vec![Record::new(1, ["JOHN", "SMITH"])],
            },
            Request::Probe { records: vec![] },
            Request::Stream {
                record: Record::new(2, ["MARY", "JONES"]),
            },
            Request::DedupStatus,
            Request::Stats,
            Request::Metrics,
            Request::Snapshot {
                path: Some("/tmp/x.snap".into()),
            },
            Request::Snapshot { path: None },
            Request::Insert {
                records: vec![Record::new(3, ["ANNA", "LEE"])],
            },
            Request::Delete { ids: vec![1, 2, 3] },
            Request::Shutdown,
        ];
        for req in reqs {
            let line = serde_json::to_string(&req).unwrap();
            assert!(!line.contains('\n'), "one request per line: {line}");
            let back: Request = serde_json::from_str(&line).unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn response_roundtrip() {
        let resps = [
            Response::Ok(Reply::Matches {
                pairs: vec![(1, 10)],
                stats: MatchStats::default(),
            }),
            Response::Err(RequestError::new(ErrorCode::Backpressure, "queue full")),
            Response::Ok(Reply::Metrics(rl_obs::MetricsSnapshot::default())),
            Response::Ok(Reply::Deleted {
                removed: 2,
                total_indexed: 7,
            }),
            Response::Err(RequestError::new(ErrorCode::Storage, "wal append failed")),
        ];
        for resp in resps {
            let line = serde_json::to_string(&resp).unwrap();
            let back: Response = serde_json::from_str(&line).unwrap();
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn error_codes_display_kebab() {
        assert_eq!(ErrorCode::Backpressure.to_string(), "backpressure");
        assert_eq!(ErrorCode::ShuttingDown.to_string(), "shutting-down");
        assert_eq!(ErrorCode::Storage.to_string(), "storage");
    }
}
