//! Keyed c-vector embeddings.
//!
//! A plain c-vector is vulnerable to a dictionary attack by the linkage
//! unit: whoever knows the position hash `g` can embed a public name
//! dictionary and match bit patterns (see [`crate::risk`]). The fix mirrors
//! the keyed-hash construction of Bloom-filter PPRL (Schnell et al., and
//! the paper's references [17, 19]): each q-gram index is passed through a
//! keyed pseudo-random mixer *before* `g`, with the key shared by the data
//! custodians and withheld from the linkage unit.
//!
//! Identical q-grams still map to identical positions across custodians
//! (they share the key), so all distance and LSH properties of Section 5
//! carry over verbatim; the linkage unit simply cannot enumerate the
//! mapping.

use cbv_hb::Record;
use rand::{Rng, RngExt};
use rl_bitvec::BitVec;
use rl_lsh::hashfn::splitmix64;
use rl_lsh::UniversalHash;
use serde::{Deserialize, Serialize};
use textdist::{Alphabet, QGramSet};

/// A 256-bit shared secret held by the data custodians.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SecretKey {
    words: [u64; 4],
}

impl std::fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        write!(f, "SecretKey(****)")
    }
}

impl SecretKey {
    /// Draws a random key.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self {
            words: [rng.random(), rng.random(), rng.random(), rng.random()],
        }
    }

    /// Builds a key from explicit words (tests / key escrow).
    pub fn from_words(words: [u64; 4]) -> Self {
        Self { words }
    }

    /// Keyed pseudo-random mix of one q-gram index: four chained
    /// SplitMix64 rounds, each XOR-keyed with one key word. Without the
    /// key words the mapping is unpredictable; with them it is a fixed
    /// bijection-like scrambling shared by both custodians.
    #[inline]
    pub fn mix(&self, x: u64) -> u64 {
        let mut v = x;
        for &w in &self.words {
            v = splitmix64(v ^ w);
        }
        v
    }
}

/// Per-attribute configuration of a keyed embedder.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KeyedAttribute {
    /// c-vector size `m_opt` (Theorem 1).
    pub m: usize,
    /// q-gram length.
    pub q: usize,
    /// Pad values before q-gram extraction.
    pub padded: bool,
}

/// Embeds records into keyed c-vectors. Both custodians construct this from
/// the same shared parameters (key, per-attribute position hashes), e.g.
/// by seeding from a jointly agreed seed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KeyedEmbedder {
    key: SecretKey,
    alphabet: Alphabet,
    attributes: Vec<KeyedAttribute>,
    position_hashes: Vec<UniversalHash>,
}

impl KeyedEmbedder {
    /// Builds an embedder; the custodians must call this with identical
    /// inputs (same key, same rng seed) to obtain interoperable encoders.
    ///
    /// # Panics
    /// Panics if `attributes` is empty or any `m == 0` / `q == 0`.
    pub fn new<R: Rng + ?Sized>(
        key: SecretKey,
        alphabet: Alphabet,
        attributes: Vec<KeyedAttribute>,
        rng: &mut R,
    ) -> Self {
        assert!(!attributes.is_empty(), "need at least one attribute");
        let position_hashes = attributes
            .iter()
            .map(|a| {
                assert!(a.m > 0 && a.q > 0, "invalid attribute configuration");
                UniversalHash::random(a.m as u64, rng)
            })
            .collect();
        Self {
            key,
            alphabet,
            attributes,
            position_hashes,
        }
    }

    /// Number of attributes.
    pub fn num_attributes(&self) -> usize {
        self.attributes.len()
    }

    /// Total record-level size in bits.
    pub fn total_size(&self) -> usize {
        self.attributes.iter().map(|a| a.m).sum()
    }

    /// Embeds one attribute value.
    pub fn embed_value(&self, attr: usize, value: &str) -> BitVec {
        let cfg = &self.attributes[attr];
        let set = if cfg.padded {
            QGramSet::build(value, cfg.q, &self.alphabet)
        } else {
            QGramSet::build_unpadded(value, cfg.q, &self.alphabet)
        };
        let h = &self.position_hashes[attr];
        BitVec::from_positions(
            cfg.m,
            set.indexes()
                .iter()
                .map(|&x| h.eval(self.key.mix(x)) as usize),
        )
    }

    /// Embeds a whole record into per-attribute keyed c-vectors.
    ///
    /// # Panics
    /// Panics if the record's field count differs from the configuration.
    pub fn embed(&self, record: &Record) -> Vec<BitVec> {
        assert_eq!(
            record.fields.len(),
            self.attributes.len(),
            "record arity mismatch"
        );
        (0..self.attributes.len())
            .map(|i| self.embed_value(i, record.field(i)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn embedder(key_words: [u64; 4], seed: u64) -> KeyedEmbedder {
        let mut rng = StdRng::seed_from_u64(seed);
        KeyedEmbedder::new(
            SecretKey::from_words(key_words),
            Alphabet::linkage(),
            vec![
                KeyedAttribute {
                    m: 15,
                    q: 2,
                    padded: false,
                },
                KeyedAttribute {
                    m: 15,
                    q: 2,
                    padded: false,
                },
            ],
            &mut rng,
        )
    }

    #[test]
    fn same_parameters_interoperate() {
        // Alice and Bob build embedders independently from shared secrets.
        let alice = embedder([1, 2, 3, 4], 99);
        let bob = embedder([1, 2, 3, 4], 99);
        let r = Record::new(1, ["JOHN", "SMITH"]);
        assert_eq!(alice.embed(&r), bob.embed(&r));
    }

    #[test]
    fn different_keys_produce_different_embeddings() {
        let alice = embedder([1, 2, 3, 4], 99);
        let eve = embedder([5, 6, 7, 8], 99); // same hashes, wrong key
        let r = Record::new(1, ["JOHN", "SMITH"]);
        assert_ne!(alice.embed(&r), eve.embed(&r));
    }

    #[test]
    fn distances_preserved_under_keying() {
        // The keyed mixer is a per-index bijection-like scrambling, so the
        // symmetric-difference structure (and hence Hamming distances up to
        // the same collision budget) is preserved.
        let e = embedder([11, 22, 33, 44], 7);
        let d_keyed = e
            .embed_value(0, "JONES")
            .hamming(&e.embed_value(0, "JONAS"));
        assert!((1..=4).contains(&d_keyed), "keyed distance {d_keyed}");
        assert_eq!(
            e.embed_value(0, "JONES")
                .hamming(&e.embed_value(0, "JONES")),
            0
        );
    }

    #[test]
    fn debug_does_not_leak_key() {
        let k = SecretKey::from_words([0xDEAD, 0xBEEF, 0xCAFE, 0xF00D]);
        let s = format!("{k:?}");
        assert!(!s.contains("DEAD") && !s.contains("57005"), "{s}");
        assert!(s.contains("****"));
    }

    #[test]
    fn mix_is_deterministic_and_key_dependent() {
        let k1 = SecretKey::from_words([1, 2, 3, 4]);
        let k2 = SecretKey::from_words([1, 2, 3, 5]);
        assert_eq!(k1.mix(42), k1.mix(42));
        assert_ne!(k1.mix(42), k2.mix(42));
    }

    proptest! {
        #[test]
        fn keyed_distance_bounded_by_qgram_distance(
            a in "[A-Z]{1,10}", b in "[A-Z]{1,10}", seed in 0u64..50
        ) {
            let e = embedder([seed, seed ^ 1, seed ^ 2, seed ^ 3], seed);
            let alphabet = Alphabet::linkage();
            let u_h = QGramSet::build_unpadded(&a, 2, &alphabet)
                .symmetric_difference_size(&QGramSet::build_unpadded(&b, 2, &alphabet));
            let d = e.embed_value(0, &a).hamming(&e.embed_value(0, &b));
            prop_assert!(d as usize <= u_h);
        }

        #[test]
        fn identical_values_always_collide(v in "[A-Z]{0,10}", seed in 0u64..50) {
            let e = embedder([seed, 2, 3, 4], seed);
            prop_assert_eq!(e.embed_value(0, &v).hamming(&e.embed_value(0, &v)), 0);
        }
    }
}
