//! The three-party protocol simulation (Section 3's setting, privatized).
//!
//! Data custodians Alice and Bob hold raw records; the linkage unit
//! Charlie must identify cross-set matches *without ever seeing a string*.
//! Message flow:
//!
//! ```text
//! Alice ──EncodedDataset──▶
//!                           Charlie: HB blocking + matching on bit vectors
//! Bob   ──EncodedDataset──▶          └──▶ (id_A, id_B) pairs
//! ```
//!
//! The `EncodedDataset` wire format carries only record ids and keyed
//! c-vectors (serialized to bytes); Charlie's entire computation is the
//! Hamming-space machinery of the base crate.

use crate::keyed::KeyedEmbedder;
use bytes::Bytes;
use cbv_hb::matcher::MatchStats;
use cbv_hb::schema::EmbeddedRecord;
use cbv_hb::Record;
use rand::Rng;
use rl_bitvec::BitVec;
use rl_lsh::params::{base_success_probability, optimal_l};
use rl_lsh::{BitSampler, BlockingTable};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// One encoded record on the wire: an id and per-attribute bit vectors.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EncodedRecord {
    /// Record id (meaningful only to its custodian).
    pub id: u64,
    /// Keyed c-vectors per attribute.
    pub attrs: Vec<BitVec>,
}

/// A custodian's outgoing message: the whole encoded data set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EncodedDataset {
    /// Custodian name (e.g. `"alice"`).
    pub party: String,
    /// Encoded records.
    pub records: Vec<EncodedRecord>,
}

impl EncodedDataset {
    /// Serializes to a wire buffer (JSON body; the format is part of the
    /// protocol simulation, not a performance claim).
    ///
    /// # Panics
    /// Panics if serialization fails (programmer error).
    pub fn to_bytes(&self) -> Bytes {
        Bytes::from(serde_json::to_vec(self).expect("serializable dataset"))
    }

    /// Deserializes from a wire buffer.
    ///
    /// # Errors
    /// Returns a message describing the malformed payload.
    pub fn from_bytes(bytes: &Bytes) -> Result<Self, String> {
        serde_json::from_slice(bytes).map_err(|e| format!("malformed EncodedDataset: {e}"))
    }
}

/// A data custodian: owns raw records and a keyed embedder.
#[derive(Debug)]
pub struct DataCustodian {
    name: String,
    embedder: KeyedEmbedder,
}

impl DataCustodian {
    /// Creates a custodian.
    pub fn new(name: impl Into<String>, embedder: KeyedEmbedder) -> Self {
        Self {
            name: name.into(),
            embedder,
        }
    }

    /// Encodes the custodian's records for transmission. Raw strings never
    /// leave this function.
    ///
    /// # Panics
    /// Panics if a record's arity does not match the embedder.
    pub fn encode(&self, records: &[Record]) -> EncodedDataset {
        EncodedDataset {
            party: self.name.clone(),
            records: records
                .iter()
                .map(|r| EncodedRecord {
                    id: r.id,
                    attrs: self.embedder.embed(r),
                })
                .collect(),
        }
    }
}

/// Charlie: blocks and matches encoded data sets.
///
/// Works directly on the attribute bit vectors with record-level HB
/// (Section 4.2); thresholds are agreed upon by the custodians and shipped
/// as protocol parameters, not data.
#[derive(Debug)]
pub struct LinkageUnit {
    /// Per-attribute Hamming thresholds for classification.
    pub thetas: Vec<u32>,
    /// Record-level blocking threshold.
    pub block_theta: u32,
    /// Base hashes per composite key.
    pub k: u32,
    /// Failure budget δ.
    pub delta: f64,
}

impl LinkageUnit {
    /// Standard parameters: per-attribute θ = 4, K = 30, δ = 0.1.
    pub fn with_thetas(thetas: Vec<u32>) -> Self {
        let block_theta = thetas.iter().sum();
        Self {
            thetas,
            block_theta,
            k: 30,
            delta: 0.1,
        }
    }

    /// Links two encoded data sets, returning `(id_A, id_B)` pairs and
    /// matching counters.
    ///
    /// # Errors
    /// Returns a message when the data sets have inconsistent arity.
    pub fn link<R: Rng + ?Sized>(
        &self,
        a: &EncodedDataset,
        b: &EncodedDataset,
        rng: &mut R,
    ) -> Result<(Vec<(u64, u64)>, MatchStats), String> {
        let arity = self.thetas.len();
        let check = |d: &EncodedDataset| -> Result<(), String> {
            if d.records.iter().any(|r| r.attrs.len() != arity) {
                return Err(format!("{}: record arity != {arity}", d.party));
            }
            Ok(())
        };
        check(a)?;
        check(b)?;
        let to_embedded = |r: &EncodedRecord| EmbeddedRecord {
            id: r.id,
            attrs: r.attrs.clone(),
        };
        let enc_a: Vec<EmbeddedRecord> = a.records.iter().map(to_embedded).collect();
        let enc_b: Vec<EmbeddedRecord> = b.records.iter().map(to_embedded).collect();
        let m_bar: usize = enc_a
            .first()
            .or(enc_b.first())
            .map(|r| r.attrs.iter().map(BitVec::len).sum())
            .unwrap_or(0);
        if m_bar == 0 {
            return Ok((Vec::new(), MatchStats::default()));
        }
        let p = base_success_probability(self.block_theta.min(m_bar as u32), m_bar);
        let l = optimal_l(p.powi(self.k as i32).max(1e-12), self.delta);
        let samplers: Vec<BitSampler> = (0..l)
            .map(|_| BitSampler::random(m_bar, self.k as usize, rng))
            .collect::<Result<_, _>>()
            .map_err(|e| e.to_string())?;
        let mut tables: Vec<BlockingTable> = (0..l).map(|_| BlockingTable::new()).collect();
        for (idx, rec) in enc_a.iter().enumerate() {
            let refs = rec.attr_refs();
            for (s, t) in samplers.iter().zip(tables.iter_mut()) {
                t.insert(s.key_concat(&refs), idx as u64);
            }
        }
        let mut matches = Vec::new();
        let mut stats = MatchStats::default();
        for rec in &enc_b {
            let refs = rec.attr_refs();
            let mut seen: HashSet<u64> = HashSet::new();
            for (s, t) in samplers.iter().zip(tables.iter()) {
                seen.extend(t.get(s.key_concat(&refs)).iter().copied());
            }
            stats.candidates += seen.len() as u64;
            for idx in seen {
                let cand = &enc_a[idx as usize];
                stats.distance_computations += 1;
                let ok = cand
                    .attrs
                    .iter()
                    .zip(&rec.attrs)
                    .zip(&self.thetas)
                    .all(|((x, y), &theta)| x.hamming(y) <= theta);
                if ok {
                    matches.push((cand.id, rec.id));
                    stats.matched += 1;
                }
            }
        }
        Ok((matches, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keyed::{KeyedAttribute, SecretKey};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use textdist::Alphabet;

    fn embedder(seed: u64) -> KeyedEmbedder {
        let mut rng = StdRng::seed_from_u64(seed);
        KeyedEmbedder::new(
            SecretKey::from_words([9, 8, 7, 6]),
            Alphabet::linkage(),
            vec![
                KeyedAttribute {
                    m: 15,
                    q: 2,
                    padded: false,
                },
                KeyedAttribute {
                    m: 15,
                    q: 2,
                    padded: false,
                },
                KeyedAttribute {
                    m: 68,
                    q: 2,
                    padded: false,
                },
            ],
            &mut rng,
        )
    }

    #[test]
    fn end_to_end_private_linkage() {
        let alice = DataCustodian::new("alice", embedder(5));
        let bob = DataCustodian::new("bob", embedder(5)); // shared params
        let a = alice.encode(&[
            Record::new(1, ["JOHN", "SMITH", "12 OAK STREET"]),
            Record::new(2, ["MARY", "JONES", "4 ELM AVENUE"]),
        ]);
        let b = bob.encode(&[
            Record::new(10, ["JOHN", "SMYTH", "12 OAK STREET"]),
            Record::new(11, ["AGNES", "WINTERBOTTOM", "900 PINE COURT"]),
        ]);
        // Wire round trip.
        let a = EncodedDataset::from_bytes(&a.to_bytes()).unwrap();
        let b = EncodedDataset::from_bytes(&b.to_bytes()).unwrap();
        let charlie = LinkageUnit::with_thetas(vec![4, 4, 8]);
        let mut rng = StdRng::seed_from_u64(77);
        let (matches, stats) = charlie.link(&a, &b, &mut rng).unwrap();
        assert_eq!(matches, vec![(1, 10)]);
        assert!(stats.candidates >= 1);
    }

    #[test]
    fn wire_format_contains_no_strings() {
        let alice = DataCustodian::new("alice", embedder(6));
        let enc = alice.encode(&[Record::new(1, ["WINTERBOTTOM", "XYLOPHONE", "UNIQUEVALUE"])]);
        let bytes = enc.to_bytes();
        let payload = String::from_utf8_lossy(&bytes);
        for secret in ["WINTERBOTTOM", "XYLOPHONE", "UNIQUEVALUE"] {
            assert!(!payload.contains(secret), "payload leaks {secret}");
        }
    }

    #[test]
    fn mismatched_parameters_fail_to_match() {
        // A custodian with the wrong key produces incompatible encodings —
        // matches silently vanish rather than leak.
        let alice = DataCustodian::new("alice", embedder(7));
        let mut rng = StdRng::seed_from_u64(8);
        let wrong = KeyedEmbedder::new(
            SecretKey::from_words([0, 0, 0, 1]),
            Alphabet::linkage(),
            vec![
                KeyedAttribute {
                    m: 15,
                    q: 2,
                    padded: false,
                },
                KeyedAttribute {
                    m: 15,
                    q: 2,
                    padded: false,
                },
                KeyedAttribute {
                    m: 68,
                    q: 2,
                    padded: false,
                },
            ],
            &mut rng,
        );
        let eve = DataCustodian::new("eve", wrong);
        let rec = Record::new(1, ["JOHN", "SMITH", "12 OAK STREET"]);
        let a = alice.encode(std::slice::from_ref(&rec));
        let b = eve.encode(&[Record::new(10, ["JOHN", "SMITH", "12 OAK STREET"])]);
        let charlie = LinkageUnit::with_thetas(vec![4, 4, 8]);
        let mut rng = StdRng::seed_from_u64(9);
        let (matches, _) = charlie.link(&a, &b, &mut rng).unwrap();
        assert!(matches.is_empty());
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let alice = DataCustodian::new("alice", embedder(10));
        let a = alice.encode(&[Record::new(1, ["A", "B", "C"])]);
        let charlie = LinkageUnit::with_thetas(vec![4, 4]); // expects 2 attrs
        let mut rng = StdRng::seed_from_u64(11);
        assert!(charlie.link(&a, &a.clone(), &mut rng).is_err());
    }

    #[test]
    fn empty_datasets_yield_no_matches() {
        let charlie = LinkageUnit::with_thetas(vec![4]);
        let empty = EncodedDataset {
            party: "x".into(),
            records: Vec::new(),
        };
        let mut rng = StdRng::seed_from_u64(12);
        let (m, s) = charlie.link(&empty, &empty.clone(), &mut rng).unwrap();
        assert!(m.is_empty());
        assert_eq!(s.candidates, 0);
    }
}
