//! Privacy-preserving record linkage (PPRL) on compact Hamming embeddings.
//!
//! The paper's closing direction (§7): *"Another interesting research
//! avenue could be the adaptation of our method to the privacy-preserving
//! context … The compact data structures used for representing the records
//! could be an ideal fit in the protocols introduced in [17, 19]."*
//!
//! This crate realizes that adaptation for the honest-but-curious
//! three-party model of Section 3 (custodians Alice and Bob, linkage unit
//! Charlie):
//!
//! * [`keyed`] — **keyed c-vector embeddings**: the custodians share a
//!   secret key and scramble each q-gram index through a keyed mixer
//!   *before* the position hash. Charlie receives only bit vectors; without
//!   the key, a dictionary attack cannot recreate the q-gram → position
//!   mapping. Hamming distances — and with them the entire HB
//!   blocking/matching machinery — are unaffected.
//! * [`party`] — a message-level simulation of the protocol: custodians
//!   encode their records locally and ship [`party::EncodedDataset`]s
//!   (serialized bit vectors, no strings); Charlie blocks and matches them
//!   and returns id pairs only.
//! * [`risk`] — empirical re-identification risk: a dictionary attack
//!   against unkeyed versus keyed embeddings, quantifying what the key
//!   actually buys.

pub mod keyed;
pub mod party;
pub mod risk;

pub use keyed::{KeyedEmbedder, SecretKey};
pub use party::{DataCustodian, EncodedDataset, EncodedRecord, LinkageUnit};
pub use risk::{dictionary_attack, frequency_attack, AttackReport};
