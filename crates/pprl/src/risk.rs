//! Empirical re-identification risk: the dictionary attack.
//!
//! In the honest-but-curious model the linkage unit knows the embedding
//! *algorithm* and can obtain a public dictionary of plausible values
//! (e.g. a name frequency list). Against an **unkeyed** embedder, Charlie
//! simply embeds the dictionary and matches bit patterns — any exact-hit
//! record is re-identified. Against a **keyed** embedder the attacker lacks
//! the q-gram mixer key, so the embedded dictionary is uncorrelated with
//! the observed vectors and attack accuracy falls to chance.

use crate::keyed::KeyedEmbedder;
use rl_bitvec::BitVec;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Outcome of a dictionary attack over one attribute.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttackReport {
    /// Records attacked.
    pub records: usize,
    /// Records whose true value was the attacker's nearest dictionary entry
    /// (distance 0 preferred, ties counted as failures).
    pub reidentified: usize,
    /// `reidentified / records`.
    pub accuracy: f64,
}

/// Runs a nearest-neighbour dictionary attack.
///
/// * `observed` — the bit vectors the attacker sees, with their true values
///   (ground truth for scoring only).
/// * `dictionary` — the attacker's candidate values.
/// * `attacker_embed` — the attacker's best-effort embedder (for unkeyed
///   embeddings this is *the* embedder; for keyed ones it is an embedder
///   with a guessed key).
///
/// A record counts as re-identified when a *unique* nearest dictionary
/// entry exists and equals the true value.
pub fn dictionary_attack(
    observed: &[(String, BitVec)],
    dictionary: &[&str],
    attacker_embed: impl Fn(&str) -> BitVec,
) -> AttackReport {
    // Pre-embed the dictionary once.
    let embedded_dict: Vec<(&str, BitVec)> =
        dictionary.iter().map(|v| (*v, attacker_embed(v))).collect();
    let mut reidentified = 0usize;
    for (truth, vector) in observed {
        let mut best: Option<(&str, u32)> = None;
        let mut tie = false;
        for (value, dv) in &embedded_dict {
            if dv.len() != vector.len() {
                continue;
            }
            let d = dv.hamming(vector);
            match best {
                None => best = Some((value, d)),
                Some((_, bd)) if d < bd => {
                    best = Some((value, d));
                    tie = false;
                }
                Some((_, bd)) if d == bd => tie = true,
                _ => {}
            }
        }
        if let Some((guess, _)) = best {
            if !tie && guess == truth {
                reidentified += 1;
            }
        }
    }
    AttackReport {
        records: observed.len(),
        reidentified,
        accuracy: if observed.is_empty() {
            0.0
        } else {
            reidentified as f64 / observed.len() as f64
        },
    }
}

/// Convenience: attacks attribute `attr` of a set of records encoded by
/// `victim`, using `attacker` as the attacker's embedder. Returns the
/// report plus the frequency of distance-0 hits (exact pattern matches).
pub fn attack_attribute(
    values: &[&str],
    attr: usize,
    victim: &KeyedEmbedder,
    attacker: impl Fn(&str) -> BitVec,
    dictionary: &[&str],
) -> (AttackReport, f64) {
    let observed: Vec<(String, BitVec)> = values
        .iter()
        .map(|v| ((*v).to_string(), victim.embed_value(attr, v)))
        .collect();
    let report = dictionary_attack(&observed, dictionary, &attacker);
    // Exact-pattern rate: how many observed vectors match some dictionary
    // embedding bit-for-bit.
    let dict_vecs: HashSet<Vec<u64>> = dictionary
        .iter()
        .map(|v| attacker(v).words().to_vec())
        .collect();
    let exact = observed
        .iter()
        .filter(|(_, v)| dict_vecs.contains(v.words()))
        .count();
    let exact_rate = if observed.is_empty() {
        0.0
    } else {
        exact as f64 / observed.len() as f64
    };
    (report, exact_rate)
}

/// The frequency attack: the residual weakness of *deterministic* keyed
/// encodings.
///
/// Even without the key, identical values produce identical bit patterns,
/// so an attacker can align the frequency ranking of observed patterns with
/// a public frequency ranking of values (surnames are heavily skewed). This
/// is the classic attack on deterministic PPRL encodings; the keyed mixer
/// does **not** defend against it — record-level salting or dummy records
/// do. We implement it so deployments can quantify the exposure.
///
/// `observed` carries ground-truth values for scoring; `dictionary` must be
/// ordered most-frequent-first. A record is re-identified when its
/// pattern's frequency rank maps to its true value's rank.
pub fn frequency_attack(observed: &[(String, BitVec)], dictionary: &[&str]) -> AttackReport {
    // Group observed patterns and rank them by multiplicity.
    let mut counts: std::collections::HashMap<Vec<u64>, (usize, Vec<usize>)> =
        std::collections::HashMap::new();
    for (idx, (_, v)) in observed.iter().enumerate() {
        let e = counts.entry(v.words().to_vec()).or_insert((0, Vec::new()));
        e.0 += 1;
        e.1.push(idx);
    }
    let mut ranked: Vec<(usize, Vec<usize>)> = counts.into_values().collect();
    ranked.sort_by_key(|(count, _)| std::cmp::Reverse(*count));
    let mut reidentified = 0usize;
    for (rank, (_, members)) in ranked.iter().enumerate() {
        let Some(guess) = dictionary.get(rank) else {
            break;
        };
        for &idx in members {
            if observed[idx].0 == *guess {
                reidentified += 1;
            }
        }
    }
    AttackReport {
        records: observed.len(),
        reidentified,
        accuracy: if observed.is_empty() {
            0.0
        } else {
            reidentified as f64 / observed.len() as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keyed::{KeyedAttribute, SecretKey};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use textdist::Alphabet;

    const NAMES: &[&str] = &[
        "SMITH", "JOHNSON", "WILLIAMS", "BROWN", "JONES", "GARCIA", "MILLER", "DAVIS", "WILSON",
        "ANDERSON", "TAYLOR", "MOORE", "JACKSON", "MARTIN", "THOMPSON", "WHITE", "HARRIS", "CLARK",
        "LEWIS", "WALKER", "HALL", "ALLEN", "YOUNG", "KING", "WRIGHT",
    ];

    fn embedder(words: [u64; 4], seed: u64, m: usize) -> KeyedEmbedder {
        let mut rng = StdRng::seed_from_u64(seed);
        KeyedEmbedder::new(
            SecretKey::from_words(words),
            Alphabet::linkage(),
            vec![KeyedAttribute {
                m,
                q: 2,
                padded: false,
            }],
            &mut rng,
        )
    }

    #[test]
    fn attacker_with_same_parameters_reidentifies_most_records() {
        // Models the unkeyed setting: the attacker has the exact embedder.
        let victim = embedder([1, 2, 3, 4], 5, 64);
        let attacker_embedder = embedder([1, 2, 3, 4], 5, 64);
        let (report, exact) = attack_attribute(
            NAMES,
            0,
            &victim,
            |v| attacker_embedder.embed_value(0, v),
            NAMES,
        );
        assert!(
            report.accuracy > 0.9,
            "known-parameter attack should succeed: {report:?}"
        );
        assert!(exact > 0.9, "exact-pattern rate {exact}");
    }

    #[test]
    fn attacker_without_key_falls_to_chance() {
        let victim = embedder([1, 2, 3, 4], 5, 64);
        // Attacker guesses a wrong key (same position hashes — worst case
        // for the defender).
        let guess = embedder([9, 9, 9, 9], 5, 64);
        let (report, exact) =
            attack_attribute(NAMES, 0, &victim, |v| guess.embed_value(0, v), NAMES);
        let chance = 2.0 / NAMES.len() as f64;
        assert!(
            report.accuracy <= chance + 0.15,
            "keyed embedding should defeat the attack: {report:?}"
        );
        assert!(exact < 0.2, "exact-pattern rate {exact} too high");
    }

    #[test]
    fn frequency_attack_beats_keying_on_skewed_data() {
        // Even with a key the attacker can align frequency ranks: sample
        // names Zipf-style so the top name dominates.
        let victim = embedder([1, 2, 3, 4], 5, 64);
        let mut values: Vec<&str> = Vec::new();
        for (rank, name) in NAMES.iter().enumerate() {
            // name at rank r appears ~25/(r+1) times
            for _ in 0..(25 / (rank + 1)).max(1) {
                values.push(name);
            }
        }
        let observed: Vec<(String, rl_bitvec::BitVec)> = values
            .iter()
            .map(|v| ((*v).to_string(), victim.embed_value(0, v)))
            .collect();
        let report = frequency_attack(&observed, NAMES);
        // The heavy head (SMITH et al.) is recovered even though the
        // attacker never sees the key.
        assert!(
            report.accuracy > 0.3,
            "frequency attack should partially succeed: {report:?}"
        );
        // And specifically the most frequent name is re-identified.
        let smith_hits = observed
            .iter()
            .zip(std::iter::repeat(()))
            .filter(|((truth, _), ())| truth == "SMITH")
            .count();
        assert!(smith_hits >= 25);
    }

    #[test]
    fn frequency_attack_on_uniform_data_is_weak() {
        // With every value appearing once, ranks are arbitrary and the
        // attack degrades toward chance.
        let victim = embedder([1, 2, 3, 4], 5, 64);
        let observed: Vec<(String, rl_bitvec::BitVec)> = NAMES
            .iter()
            .map(|v| ((*v).to_string(), victim.embed_value(0, v)))
            .collect();
        let report = frequency_attack(&observed, NAMES);
        assert!(report.accuracy < 0.3, "{report:?}");
    }

    #[test]
    fn empty_observations() {
        let r = dictionary_attack(&[], NAMES, |_| BitVec::zeros(8));
        assert_eq!(r.records, 0);
        assert_eq!(r.accuracy, 0.0);
    }

    #[test]
    fn ties_count_as_failures() {
        // Two dictionary entries embedding identically → tie → no credit.
        let observed = vec![("A".to_string(), BitVec::from_positions(8, [1]))];
        let report = dictionary_attack(&observed, &["A", "B"], |_| BitVec::from_positions(8, [1]));
        assert_eq!(report.reidentified, 0);
    }
}
