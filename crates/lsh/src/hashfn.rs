//! Pairwise-independent universal hashing.
//!
//! The paper (Section 5.2) hashes q-gram indexes into c-vector positions with
//! functions of the form `g(x) = ((a·x + b) mod P) mod m`, where `P` is a
//! large prime (`2^31 − 1`) and `a, b` are random in `(0, P)`. The same
//! family drives the MinHash permutations of the HARRA baseline.

use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// The Mersenne prime `2^61 − 1`.
///
/// The paper suggests `2^31 − 1`; we use the 61-bit Mersenne prime so that
/// q-gram indexes over large alphabets (up to `|S|^q < 2^61`) stay inside the
/// field, preserving pairwise independence. Arithmetic is done in `u128` to
/// avoid overflow.
pub const PRIME: u64 = (1 << 61) - 1;

/// A pairwise-independent hash `x ↦ ((a·x + b) mod P) mod m`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UniversalHash {
    a: u64,
    b: u64,
    m: u64,
}

impl UniversalHash {
    /// Draws a random hash onto `{0, …, m−1}`.
    ///
    /// # Panics
    /// Panics if `m == 0` or `m > PRIME`.
    pub fn random<R: Rng + ?Sized>(m: u64, rng: &mut R) -> Self {
        assert!(m > 0, "range m must be positive");
        assert!(m <= PRIME, "range m must not exceed the field size");
        Self {
            a: rng.random_range(1..PRIME),
            b: rng.random_range(1..PRIME),
            m,
        }
    }

    /// Constructs a hash with explicit coefficients (tests / reproducibility).
    ///
    /// # Panics
    /// Panics unless `0 < a < P`, `0 < b < P`, and `0 < m ≤ P`.
    pub fn with_coefficients(a: u64, b: u64, m: u64) -> Self {
        assert!(a > 0 && a < PRIME, "a must lie in (0, P)");
        assert!(b > 0 && b < PRIME, "b must lie in (0, P)");
        assert!(m > 0 && m <= PRIME, "m must lie in (0, P]");
        Self { a, b, m }
    }

    /// Evaluates the hash.
    #[inline]
    pub fn eval(&self, x: u64) -> u64 {
        let v = (u128::from(self.a) * u128::from(x) + u128::from(self.b)) % u128::from(PRIME);
        (v % u128::from(self.m)) as u64
    }

    /// The output range `m`.
    #[inline]
    pub fn range(&self) -> u64 {
        self.m
    }
}

/// SplitMix64 finalizer — a strong 64-bit mixer used to fold composite LSH
/// keys (e.g. K MinHash minima) into fixed-width bucket keys.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Accumulates a sequence of `u64` values into a 128-bit key with two
/// independent mixing streams. Collisions merge buckets (harmless for
/// blocking correctness, negligible at 128 bits).
#[derive(Debug, Clone, Copy)]
pub struct KeyAccumulator {
    lo: u64,
    hi: u64,
}

impl KeyAccumulator {
    /// Starts an empty accumulator.
    pub fn new() -> Self {
        Self {
            lo: 0x243F_6A88_85A3_08D3,
            hi: 0x1319_8A2E_0370_7344,
        }
    }

    /// Folds one value into the key.
    #[inline]
    pub fn push(&mut self, v: u64) {
        self.lo = splitmix64(self.lo ^ v);
        self.hi = splitmix64(self.hi ^ v.rotate_left(32));
    }

    /// The accumulated 128-bit key.
    #[inline]
    pub fn finish(&self) -> u128 {
        (u128::from(self.hi) << 64) | u128::from(self.lo)
    }
}

impl Default for KeyAccumulator {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn eval_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for m in [1u64, 2, 15, 68, 676, 1 << 40] {
            let h = UniversalHash::random(m, &mut rng);
            for x in [0u64, 1, 675, u64::from(u32::MAX), PRIME - 1] {
                assert!(h.eval(x) < m);
            }
        }
    }

    #[test]
    fn deterministic_for_same_coefficients() {
        let h1 = UniversalHash::with_coefficients(12345, 678, 68);
        let h2 = UniversalHash::with_coefficients(12345, 678, 68);
        for x in 0..100u64 {
            assert_eq!(h1.eval(x), h2.eval(x));
        }
    }

    #[test]
    fn roughly_uniform_over_small_range() {
        // χ²-style sanity check: hashing 0..100_000 into 16 cells should
        // land within 5% of uniform per cell.
        let mut rng = StdRng::seed_from_u64(42);
        let h = UniversalHash::random(16, &mut rng);
        let mut counts = [0u32; 16];
        let n = 100_000u64;
        for x in 0..n {
            counts[h.eval(x) as usize] += 1;
        }
        let expect = n as f64 / 16.0;
        for &c in &counts {
            assert!(
                (f64::from(c) - expect).abs() < 0.05 * expect,
                "cell count {c} far from {expect}"
            );
        }
    }

    #[test]
    fn collision_rate_close_to_one_over_m() {
        // Pr[g(x) = g(y)] for x ≠ y should be ≈ 1/m over random functions
        // (Section 5.2). Empirically verify within a tolerance.
        let mut rng = StdRng::seed_from_u64(3);
        let m = 64u64;
        let trials = 20_000;
        let mut collisions = 0u32;
        for _ in 0..trials {
            let h = UniversalHash::random(m, &mut rng);
            let x = rng.random_range(0..1_000_000u64);
            let y = loop {
                let y = rng.random_range(0..1_000_000u64);
                if y != x {
                    break y;
                }
            };
            if h.eval(x) == h.eval(y) {
                collisions += 1;
            }
        }
        let rate = f64::from(collisions) / f64::from(trials);
        let expect = 1.0 / m as f64;
        assert!(
            (rate - expect).abs() < 0.5 * expect,
            "collision rate {rate} vs expected {expect}"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = UniversalHash::random(0, &mut rng);
    }

    #[test]
    fn key_accumulator_is_order_sensitive() {
        let mut a = KeyAccumulator::new();
        a.push(1);
        a.push(2);
        let mut b = KeyAccumulator::new();
        b.push(2);
        b.push(1);
        assert_ne!(a.finish(), b.finish());
    }

    proptest! {
        #[test]
        fn accumulator_deterministic(vals in proptest::collection::vec(any::<u64>(), 0..20)) {
            let mut a = KeyAccumulator::new();
            let mut b = KeyAccumulator::new();
            for &v in &vals {
                a.push(v);
                b.push(v);
            }
            prop_assert_eq!(a.finish(), b.finish());
        }

        #[test]
        fn eval_in_range_prop(m in 1u64..1_000_000, x in any::<u64>(), seed in any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let h = UniversalHash::random(m, &mut rng);
            prop_assert!(h.eval(x) < m);
        }
    }
}
