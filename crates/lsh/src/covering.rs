//! CoveringLSH — Hamming blocking with **zero false negatives**.
//!
//! Bit-sampling (Definition 3) finds a pair within radius `θ_H` only with
//! probability `1 − δ`; Pagh's CoveringLSH replaces the independent random
//! samplers with a *covering* family: every pair at Hamming distance ≤ `θ_H`
//! is guaranteed to share at least one blocking key, for **every** draw of
//! the family's randomness.
//!
//! Construction. Fix `t = θ_H + 1` and map each of the `m` vector positions
//! to a random **nonzero** label `lab(i) ∈ {0,1}^t \ {0}`. For every nonzero
//! `v ∈ {0,1}^t` (so `L = 2^{θ_H+1} − 1` groups) the group hash `h_v`
//! projects a vector onto the positions whose label has odd parity with `v`
//! (`⟨lab(i), v⟩ = 1` over GF(2)); the remaining positions are *dropped*.
//!
//! Why it covers: let `S` be the set of positions where `x` and `y` differ,
//! `|S| ≤ θ_H`. The labels `{lab(i) : i ∈ S}` span a subspace of dimension
//! ≤ θ_H < t over GF(2), so its orthogonal complement contains a nonzero
//! `v` — and group `v` drops every position of `S`, hence `h_v(x) = h_v(y)`.
//! The argument needs no property of the labels, so the recall guarantee is
//! deterministic; the randomness only spreads *dissimilar* pairs across
//! buckets (each position is kept by exactly `2^{θ_H}` of the groups).
//!
//! Restricting labels to nonzero values is the Fast-CoveringLSH filtering
//! refinement: a zero label would exempt its position from every group,
//! and the family is built by partitioning positions by label rather than
//! enumerating each (position, group) pair from scratch.

use crate::error::FamilyError;
use crate::hashfn::KeyAccumulator;
use rand::{Rng, RngExt};
use rl_bitvec::BitVec;
use serde::{Deserialize, Serialize};

/// Largest supported covering radius: `θ_H ≤ 11` keeps the group count
/// `L = 2^{θ_H+1} − 1` at or below 4095 blocking tables.
pub const MAX_COVERING_THETA: u32 = 11;

/// One covering group `h_v`: the positions it keeps (projects onto).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoveringGroup {
    kept: Vec<u32>,
}

impl CoveringGroup {
    /// The kept (projected) positions, in ascending order.
    pub fn kept(&self) -> &[u32] {
        &self.kept
    }

    /// Number of kept positions.
    pub fn width(&self) -> usize {
        self.kept.len()
    }

    /// The group's blocking key for `v`: the kept bits, packed directly
    /// into a `u128` when they fit, otherwise folded 64 bits at a time
    /// through a [`KeyAccumulator`]. Folding can only merge buckets (a hash
    /// collision), never split them, so it may add false positives but
    /// cannot break the covering guarantee.
    #[inline]
    pub fn key(&self, v: &BitVec) -> u128 {
        self.key_with(|p| v.get(p))
    }

    /// The group's key over a *conceptual* concatenation of attribute
    /// vectors, without materializing it (mirrors
    /// [`crate::BitSampler::key_concat`]).
    pub fn key_concat(&self, attrs: &[&BitVec]) -> u128 {
        self.key_with(|p| {
            let mut p = p;
            for v in attrs {
                if p < v.len() {
                    return v.get(p);
                }
                p -= v.len();
            }
            panic!("covering position beyond concatenated length")
        })
    }

    fn key_with<F: FnMut(usize) -> bool>(&self, mut bit: F) -> u128 {
        if self.kept.len() <= 128 {
            let mut key: u128 = 0;
            for (i, &p) in self.kept.iter().enumerate() {
                key |= u128::from(bit(p as usize)) << i;
            }
            key
        } else {
            let mut acc = KeyAccumulator::new();
            let mut word: u64 = 0;
            let mut filled = 0usize;
            for &p in &self.kept {
                word |= u64::from(bit(p as usize)) << filled;
                filled += 1;
                if filled == 64 {
                    acc.push(word);
                    word = 0;
                    filled = 0;
                }
            }
            if filled > 0 {
                acc.push(word);
            }
            acc.finish()
        }
    }
}

/// A covering family over `m`-bit vectors with radius `theta`:
/// `L = 2^{theta+1} − 1` groups, guaranteed collision for every pair at
/// Hamming distance ≤ `theta`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoveringFamily {
    m: u32,
    theta: u32,
    groups: Vec<CoveringGroup>,
}

impl CoveringFamily {
    /// Draws a covering family: random nonzero `(theta+1)`-bit labels for
    /// the `m` positions, one group per nonzero label-space vector.
    ///
    /// # Errors
    /// `FamilyError::InvalidM` if `m == 0`; `FamilyError::ThetaTooLarge` if
    /// `theta > MAX_COVERING_THETA` (the group count doubles per unit of
    /// radius).
    pub fn random<R: Rng + ?Sized>(m: usize, theta: u32, rng: &mut R) -> Result<Self, FamilyError> {
        if m == 0 {
            return Err(FamilyError::InvalidM { m });
        }
        if theta > MAX_COVERING_THETA {
            return Err(FamilyError::ThetaTooLarge {
                theta,
                groups: (1u128 << (theta + 1)) - 1,
                max_groups: (1usize << (MAX_COVERING_THETA + 1)) - 1,
            });
        }
        let t_bits = theta + 1;
        let num_labels = 1usize << t_bits; // labels live in 1..num_labels
                                           // Partition positions by label first (Fast-CoveringLSH style), so
                                           // each group is assembled from at most 2^t − 1 parity checks over
                                           // label classes instead of m per-position checks.
        let mut by_label: Vec<Vec<u32>> = vec![Vec::new(); num_labels];
        for i in 0..m {
            let label = rng.random_range(1..num_labels);
            by_label[label].push(i as u32);
        }
        let mut groups = Vec::with_capacity(num_labels - 1);
        for v in 1..num_labels {
            let mut kept = Vec::new();
            for (label, positions) in by_label.iter().enumerate().skip(1) {
                if (label & v).count_ones() % 2 == 1 {
                    kept.extend_from_slice(positions);
                }
            }
            kept.sort_unstable();
            groups.push(CoveringGroup { kept });
        }
        Ok(Self {
            m: m as u32,
            theta,
            groups,
        })
    }

    /// Vector size `m` the family was drawn for.
    pub fn m(&self) -> usize {
        self.m as usize
    }

    /// The covering radius `θ_H`.
    pub fn theta(&self) -> u32 {
        self.theta
    }

    /// Number of blocking groups `L = 2^{θ_H+1} − 1`.
    pub fn l(&self) -> usize {
        self.groups.len()
    }

    /// The groups.
    pub fn groups(&self) -> &[CoveringGroup] {
        &self.groups
    }

    /// Mean kept-width across groups — each position lands in exactly
    /// `2^{θ_H}` of the `2^{θ_H+1} − 1` groups, so this is ≈ `m/2`.
    pub fn mean_width(&self) -> f64 {
        if self.groups.is_empty() {
            return 0.0;
        }
        let total: usize = self.groups.iter().map(CoveringGroup::width).sum();
        total as f64 / self.groups.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn flip(v: &mut BitVec, pos: usize) {
        if v.get(pos) {
            v.clear(pos);
        } else {
            v.set(pos);
        }
    }

    #[test]
    fn group_count_is_2_pow_theta_plus_1_minus_1() {
        let mut rng = StdRng::seed_from_u64(1);
        for theta in 0..=4u32 {
            let f = CoveringFamily::random(120, theta, &mut rng).unwrap();
            assert_eq!(f.l(), (1 << (theta + 1)) - 1);
        }
    }

    #[test]
    fn each_position_kept_in_exactly_2_pow_theta_groups() {
        let mut rng = StdRng::seed_from_u64(2);
        let theta = 3u32;
        let f = CoveringFamily::random(50, theta, &mut rng).unwrap();
        let mut counts = vec![0usize; 50];
        for g in f.groups() {
            for &p in g.kept() {
                counts[p as usize] += 1;
            }
        }
        // A nonzero label has odd parity with exactly half the 2^t vectors,
        // i.e. 2^{t−1} = 2^θ of the nonzero ones (0 has even parity).
        assert!(counts.iter().all(|&c| c == 1 << theta));
    }

    #[test]
    fn pairs_within_theta_always_collide() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = 120usize;
        let theta = 4u32;
        for trial in 0..200 {
            let f = CoveringFamily::random(m, theta, &mut rng).unwrap();
            let v1 = BitVec::from_positions(m, (0..40).map(|i| (i * 3 + trial) % m));
            let mut v2 = v1.clone();
            for j in 0..theta as usize {
                flip(&mut v2, (j * 13 + trial * 7) % m);
            }
            assert!(v1.hamming(&v2) <= theta);
            let collides = f.groups().iter().any(|g| g.key(&v1) == g.key(&v2));
            assert!(collides, "covering guarantee violated on trial {trial}");
        }
    }

    #[test]
    fn key_concat_matches_materialized_concat() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = BitVec::from_positions(15, [0, 7, 14]);
        let b = BitVec::from_positions(68, [1, 40, 67]);
        let cat = BitVec::concat([&a, &b]);
        let f = CoveringFamily::random(cat.len(), 3, &mut rng).unwrap();
        for g in f.groups() {
            assert_eq!(g.key(&cat), g.key_concat(&[&a, &b]));
        }
    }

    #[test]
    fn wide_groups_fold_through_accumulator() {
        // m = 400 → kept widths ≈ 200 > 128, exercising the fold path.
        let mut rng = StdRng::seed_from_u64(5);
        let m = 400usize;
        let f = CoveringFamily::random(m, 2, &mut rng).unwrap();
        assert!(f.groups().iter().any(|g| g.width() > 128));
        let v1 = BitVec::from_positions(m, (0..150).map(|i| i * 2));
        let mut v2 = v1.clone();
        flip(&mut v2, 9);
        flip(&mut v2, 250);
        assert_eq!(v1.hamming(&v2), 2);
        // Equal inputs hash equal; the covering guarantee still holds.
        for g in f.groups() {
            assert_eq!(g.key(&v1), g.key(&v1.clone()));
        }
        assert!(f.groups().iter().any(|g| g.key(&v1) == g.key(&v2)));
    }

    #[test]
    fn oversized_theta_is_a_typed_error() {
        let mut rng = StdRng::seed_from_u64(6);
        assert!(matches!(
            CoveringFamily::random(120, MAX_COVERING_THETA + 1, &mut rng),
            Err(FamilyError::ThetaTooLarge { .. })
        ));
        assert!(CoveringFamily::random(0, 2, &mut rng).is_err());
    }

    #[test]
    fn theta_zero_is_exact_match_blocking() {
        // t = 1: a single group keeping every position (all labels are 1).
        let mut rng = StdRng::seed_from_u64(7);
        let f = CoveringFamily::random(40, 0, &mut rng).unwrap();
        assert_eq!(f.l(), 1);
        assert_eq!(f.groups()[0].width(), 40);
    }
}
