//! Locality-sensitive hashing families and blocking tables.
//!
//! Implements every LSH mechanism the paper touches:
//!
//! * [`hamming`] — the bit-sampling Hamming family of Indyk–Motwani used by
//!   the HB blocking/matching mechanism (Section 4.2, Definition 3).
//! * [`minhash`] — MinHash over q-gram index sets, the Jaccard-space
//!   mechanism used by the HARRA baseline (Section 6.1).
//! * [`euclidean`] — the p-stable (Gaussian) family of Datar et al. used by
//!   the SM-EB baseline.
//! * [`params`] — the blocking-group math: base success probability
//!   `p = 1 − θ/m` and `L = ⌈ln δ / ln(1 − p^K)⌉` (Equation 2), plus the
//!   rule-operator bounds of Definitions 4–6.
//! * [`covering`] — Pagh's CoveringLSH: a Hamming family with zero false
//!   negatives inside the covering radius (`L = 2^{θ_H+1} − 1` groups).
//! * [`backend`] — the [`backend::BlockingBackend`] trait and serializable
//!   [`backend::Backend`] enum that let the blocking layer swap the
//!   bit-sampling family for the covering family.
//! * [`table`] — key → id-list blocking tables (the `T_l` hash tables).
//! * [`hashfn`] — pairwise-independent universal hashes
//!   `g(x) = ((a·x + b) mod P) mod m`, shared with the c-vector embedder.
//! * [`error`] — typed construction errors ([`error::FamilyError`]).

pub mod backend;
pub mod covering;
pub mod error;
pub mod euclidean;
pub mod hamming;
pub mod hashfn;
pub mod minhash;
pub mod params;
pub mod table;

pub use backend::{Backend, BackendKind, BlockingBackend};
pub use covering::{CoveringFamily, CoveringGroup, MAX_COVERING_THETA};
pub use error::FamilyError;
pub use hamming::{BitSampleFamily, BitSampler};
pub use hashfn::UniversalHash;
pub use params::{base_success_probability, optimal_l};
pub use table::BlockingTable;
