//! Typed parameter errors for hash-family construction.
//!
//! Family constructors used to `assert!` their parameter ranges; callers
//! that take user-supplied `K` / `θ` values (the pipeline configuration
//! layer) need a recoverable error instead, so oversized parameters are
//! rejected with a message rather than truncating keys or aborting.

use std::fmt;

/// Errors raised while constructing a hash family.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FamilyError {
    /// `K` (base functions per composite key) outside `1..=MAX_K`: keys
    /// pack one bit per base function into a `u128`, so larger `K` would
    /// silently truncate.
    InvalidK {
        /// The requested K.
        k: usize,
        /// The largest representable K.
        max: usize,
    },
    /// The vector size `m` must be positive.
    InvalidM {
        /// The requested m.
        m: usize,
    },
    /// A covering radius whose group count `2^{θ+1} − 1` exceeds the
    /// configured cap — the family would allocate an unusable number of
    /// blocking groups.
    ThetaTooLarge {
        /// The requested Hamming radius.
        theta: u32,
        /// Groups the radius implies.
        groups: u128,
        /// The largest group count allowed.
        max_groups: usize,
    },
    /// A family needs at least one blocking group.
    EmptyFamily,
}

impl fmt::Display for FamilyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FamilyError::InvalidK { k, max } => write!(
                f,
                "K = {k} base functions per key is outside 1..={max}; keys pack one \
                 bit per function into a u128"
            ),
            FamilyError::InvalidM { m } => write!(f, "vector size m = {m} must be positive"),
            FamilyError::ThetaTooLarge {
                theta,
                groups,
                max_groups,
            } => write!(
                f,
                "covering radius θ = {theta} needs 2^{} − 1 = {groups} blocking groups, \
                 above the cap of {max_groups}; lower θ or use the random-sampling backend",
                theta + 1
            ),
            FamilyError::EmptyFamily => write!(f, "a family needs at least one blocking group"),
        }
    }
}

impl std::error::Error for FamilyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = FamilyError::InvalidK { k: 200, max: 128 };
        assert!(e.to_string().contains("200"));
        assert!(e.to_string().contains("128"));
        let e = FamilyError::ThetaTooLarge {
            theta: 30,
            groups: (1u128 << 31) - 1,
            max_groups: 4095,
        };
        assert!(e.to_string().contains("4095"));
    }
}
