//! MinHash LSH over q-gram index sets — the Jaccard-space mechanism used by
//! the HARRA baseline (Section 6.1).
//!
//! Each base function applies a random permutation-like universal hash to
//! every element of the set `U_s` and keeps the minimum; for two sets the
//! minima agree with probability equal to their Jaccard similarity. A
//! composite function concatenates `K` minima into a blocking key.

use crate::hashfn::{splitmix64, KeyAccumulator, UniversalHash, PRIME};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Pre-mixes an element before the linear hash. Pairwise-independent linear
/// hashes are not min-wise independent, and q-gram indexes are small
/// structured integers; scrambling them through SplitMix64 removes the
/// resulting bias in the min statistic.
#[inline]
fn scramble(x: u64) -> u64 {
    splitmix64(x) % PRIME
}

/// A composite MinHash function: `K` independent permutation hashes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MinHasher {
    hashes: Vec<UniversalHash>,
}

/// Sentinel minimum for an empty set; distinct from any real hash value
/// because permutation hashes map into `[0, PRIME)`.
const EMPTY_MIN: u64 = u64::MAX;

impl MinHasher {
    /// Draws a composite MinHash of `k` base permutations.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn random<R: Rng + ?Sized>(k: usize, rng: &mut R) -> Self {
        assert!(k > 0, "k must be positive");
        Self {
            hashes: (0..k).map(|_| UniversalHash::random(PRIME, rng)).collect(),
        }
    }

    /// Number of base permutations `K`.
    pub fn k(&self) -> usize {
        self.hashes.len()
    }

    /// The `K` minima for a set of element indexes.
    pub fn minima(&self, set: &[u64]) -> Vec<u64> {
        self.hashes
            .iter()
            .map(|h| {
                set.iter()
                    .map(|&x| h.eval(scramble(x)))
                    .min()
                    .unwrap_or(EMPTY_MIN)
            })
            .collect()
    }

    /// The composite blocking key: the `K` minima folded into 128 bits.
    pub fn key(&self, set: &[u64]) -> u128 {
        let mut acc = KeyAccumulator::new();
        for h in &self.hashes {
            acc.push(
                set.iter()
                    .map(|&x| h.eval(scramble(x)))
                    .min()
                    .unwrap_or(EMPTY_MIN),
            );
        }
        acc.finish()
    }
}

/// `L` independent composite MinHash functions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MinHashFamily {
    hashers: Vec<MinHasher>,
}

impl MinHashFamily {
    /// Draws `l` composite functions of `k` permutations each.
    pub fn random<R: Rng + ?Sized>(k: usize, l: usize, rng: &mut R) -> Self {
        assert!(l > 0, "need at least one blocking group");
        Self {
            hashers: (0..l).map(|_| MinHasher::random(k, rng)).collect(),
        }
    }

    /// The composite functions.
    pub fn hashers(&self) -> &[MinHasher] {
        &self.hashers
    }

    /// Number of blocking groups `L`.
    pub fn l(&self) -> usize {
        self.hashers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identical_sets_always_collide() {
        let mut rng = StdRng::seed_from_u64(1);
        let set = vec![5u64, 17, 300, 4000];
        for _ in 0..20 {
            let h = MinHasher::random(5, &mut rng);
            assert_eq!(h.key(&set), h.key(&set.clone()));
        }
    }

    #[test]
    fn empty_set_is_stable() {
        let mut rng = StdRng::seed_from_u64(2);
        let h = MinHasher::random(3, &mut rng);
        assert_eq!(h.key(&[]), h.key(&[]));
        assert_ne!(h.key(&[]), h.key(&[1]));
    }

    #[test]
    fn single_minhash_estimates_jaccard() {
        // Pr[min agree] should approximate the Jaccard similarity.
        let mut rng = StdRng::seed_from_u64(3);
        let a: Vec<u64> = (0..60).collect();
        let b: Vec<u64> = (30..90).collect(); // |∩|=30, |∪|=90 → J=1/3
        let trials = 30_000;
        let mut hits = 0u32;
        for _ in 0..trials {
            let h = MinHasher::random(1, &mut rng);
            if h.minima(&a)[0] == h.minima(&b)[0] {
                hits += 1;
            }
        }
        let rate = f64::from(hits) / f64::from(trials);
        assert!((rate - 1.0 / 3.0).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn composite_collision_rate_is_jaccard_pow_k() {
        let mut rng = StdRng::seed_from_u64(4);
        let a: Vec<u64> = (0..40).collect();
        let b: Vec<u64> = (8..48).collect(); // |∩|=32, |∪|=48 → J=2/3
        let k = 3;
        let expect = (2.0f64 / 3.0).powi(k as i32);
        let trials = 30_000;
        let mut hits = 0u32;
        for _ in 0..trials {
            let h = MinHasher::random(k, &mut rng);
            if h.key(&a) == h.key(&b) {
                hits += 1;
            }
        }
        let rate = f64::from(hits) / f64::from(trials);
        assert!((rate - expect).abs() < 0.02, "rate {rate} vs {expect}");
    }

    #[test]
    fn family_shape() {
        let mut rng = StdRng::seed_from_u64(5);
        let f = MinHashFamily::random(5, 30, &mut rng);
        assert_eq!(f.l(), 30);
        assert!(f.hashers().iter().all(|h| h.k() == 5));
    }
}
