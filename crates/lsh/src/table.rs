//! Blocking tables — the hash tables `T_l` of Section 4.2.
//!
//! Each table maps a composite blocking key to the list of record `Id`s that
//! hashed to it. Following the paper (footnote 2), buckets store only ids;
//! vectors are retrieved from the caller's store during matching.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A single blocking table `T_l`: key → bucket of record ids.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BlockingTable {
    buckets: HashMap<u128, Vec<u64>>,
}

impl BlockingTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a table sized for roughly `n` inserts.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            buckets: HashMap::with_capacity(n),
        }
    }

    /// Inserts `id` into the bucket for `key`.
    pub fn insert(&mut self, key: u128, id: u64) {
        self.buckets.entry(key).or_default().push(id);
    }

    /// The bucket for `key` (the paper's `get(x)` primitive, Table 2).
    /// Probing an empty table short-circuits before the `HashMap` hashes
    /// the key — servers routinely probe structures that have not been
    /// indexed yet (e.g. right after startup).
    pub fn get(&self, key: u128) -> &[u64] {
        if self.buckets.is_empty() {
            return &[];
        }
        self.buckets.get(&key).map_or(&[], Vec::as_slice)
    }

    /// True when no key has been inserted.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Number of non-empty buckets (alias of [`Self::num_buckets`], the
    /// name used by the server's Stats reporting).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Number of non-empty buckets.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Total number of stored ids.
    pub fn num_entries(&self) -> usize {
        self.buckets.values().map(Vec::len).sum()
    }

    /// Size of the largest bucket — the paper's over-population diagnostic
    /// for sparse q-gram vectors (Section 5.2).
    pub fn max_bucket(&self) -> usize {
        self.buckets.values().map(Vec::len).max().unwrap_or(0)
    }

    /// Iterates over `(key, bucket)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&u128, &Vec<u64>)> {
        self.buckets.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get() {
        let mut t = BlockingTable::new();
        t.insert(42, 1);
        t.insert(42, 2);
        t.insert(7, 3);
        assert_eq!(t.get(42), &[1, 2]);
        assert_eq!(t.get(7), &[3]);
        assert_eq!(t.get(99), &[] as &[u64]);
    }

    #[test]
    fn stats() {
        let mut t = BlockingTable::with_capacity(10);
        for i in 0..5 {
            t.insert(1, i);
        }
        t.insert(2, 100);
        assert_eq!(t.num_buckets(), 2);
        assert_eq!(t.num_entries(), 6);
        assert_eq!(t.max_bucket(), 5);
    }

    #[test]
    fn empty_table() {
        let t = BlockingTable::new();
        assert!(t.is_empty());
        assert_eq!(t.num_buckets(), 0);
        assert_eq!(t.bucket_count(), 0);
        assert_eq!(t.num_entries(), 0);
        assert_eq!(t.max_bucket(), 0);
        // The empty fast path must answer like the HashMap path.
        assert_eq!(t.get(0), &[] as &[u64]);
        assert_eq!(t.get(u128::MAX), &[] as &[u64]);
    }

    #[test]
    fn duplicate_ids_are_kept() {
        // The table is a multiset; de-duplication happens in the matcher
        // (Algorithm 2), not here.
        let mut t = BlockingTable::new();
        t.insert(1, 9);
        t.insert(1, 9);
        assert_eq!(t.get(1), &[9, 9]);
    }
}
