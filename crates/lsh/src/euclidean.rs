//! Euclidean p-stable LSH (Datar, Immorlica, Indyk, Mirrokni, SCG 2004).
//!
//! Used by the SM-EB baseline: StringMap embeds attribute strings into ℝ^d
//! and this family blocks the resulting vectors. A base function projects a
//! point onto a Gaussian random direction and quantizes:
//! `h(v) = ⌊(a·v + b) / w⌋`. For two points at distance `c`, the collision
//! probability is the closed form
//! `p(c) = 1 − 2Φ(−w/c) − (2c/(√(2π)·w))·(1 − e^{−w²/(2c²)})`.

use crate::hashfn::KeyAccumulator;
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// One base p-stable hash: a Gaussian direction, an offset, and a bucket
/// width `w`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PStableHash {
    direction: Vec<f64>,
    offset: f64,
    width: f64,
}

/// Samples a standard normal via Box–Muller (rand's distributions crate is
/// outside the dependency budget).
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1 = rng.random::<f64>();
        let u2 = rng.random::<f64>();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

impl PStableHash {
    /// Draws a base hash for `dim`-dimensional points with bucket width `w`.
    ///
    /// # Panics
    /// Panics if `dim == 0` or `w <= 0`.
    pub fn random<R: Rng + ?Sized>(dim: usize, w: f64, rng: &mut R) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert!(w > 0.0, "bucket width must be positive");
        Self {
            direction: (0..dim).map(|_| standard_normal(rng)).collect(),
            offset: rng.random::<f64>() * w,
            width: w,
        }
    }

    /// Evaluates `⌊(a·v + b)/w⌋`.
    ///
    /// # Panics
    /// Panics if `v.len()` differs from the hash's dimension.
    pub fn eval(&self, v: &[f64]) -> i64 {
        assert_eq!(v.len(), self.direction.len(), "dimension mismatch");
        let dot: f64 = self
            .direction
            .iter()
            .zip(v.iter())
            .map(|(a, x)| a * x)
            .sum();
        ((dot + self.offset) / self.width).floor() as i64
    }
}

/// A composite Euclidean hash: `K` base functions folded into a key.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EuclideanHasher {
    bases: Vec<PStableHash>,
}

impl EuclideanHasher {
    /// Draws `k` base functions over `dim` dimensions with width `w`.
    pub fn random<R: Rng + ?Sized>(dim: usize, w: f64, k: usize, rng: &mut R) -> Self {
        assert!(k > 0, "k must be positive");
        Self {
            bases: (0..k).map(|_| PStableHash::random(dim, w, rng)).collect(),
        }
    }

    /// The composite blocking key for point `v`.
    pub fn key(&self, v: &[f64]) -> u128 {
        let mut acc = KeyAccumulator::new();
        for b in &self.bases {
            acc.push(b.eval(v) as u64);
        }
        acc.finish()
    }
}

/// `L` independent composite Euclidean hashes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EuclideanFamily {
    hashers: Vec<EuclideanHasher>,
}

impl EuclideanFamily {
    /// Draws the family.
    pub fn random<R: Rng + ?Sized>(dim: usize, w: f64, k: usize, l: usize, rng: &mut R) -> Self {
        assert!(l > 0, "need at least one blocking group");
        Self {
            hashers: (0..l)
                .map(|_| EuclideanHasher::random(dim, w, k, rng))
                .collect(),
        }
    }

    /// The composite functions.
    pub fn hashers(&self) -> &[EuclideanHasher] {
        &self.hashers
    }

    /// Number of blocking groups `L`.
    pub fn l(&self) -> usize {
        self.hashers.len()
    }
}

/// Standard normal CDF Φ via the Abramowitz–Stegun erf approximation
/// (max error ≈ 1.5e−7, ample for parameter selection).
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Collision probability of a single p-stable base hash for two points at
/// Euclidean distance `c` with bucket width `w` (Datar et al., Eq. for the
/// Gaussian case).
///
/// # Panics
/// Panics unless `c > 0` and `w > 0`. At `c → 0` the probability tends to 1.
pub fn base_collision_probability(c: f64, w: f64) -> f64 {
    assert!(c > 0.0 && w > 0.0, "distances and widths must be positive");
    let r = w / c;
    1.0 - 2.0 * normal_cdf(-r)
        - (2.0 / (std::f64::consts::TAU.sqrt() * r)) * (1.0 - (-r * r / 2.0).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identical_points_collide() {
        let mut rng = StdRng::seed_from_u64(1);
        let v = vec![0.3, -1.2, 4.5];
        for _ in 0..20 {
            let h = EuclideanHasher::random(3, 4.0, 5, &mut rng);
            assert_eq!(h.key(&v), h.key(&v.clone()));
        }
    }

    #[test]
    fn normal_cdf_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
    }

    #[test]
    fn base_probability_monotone_in_distance() {
        let w = 4.0;
        let p1 = base_collision_probability(1.0, w);
        let p2 = base_collision_probability(2.0, w);
        let p4 = base_collision_probability(4.0, w);
        assert!(p1 > p2 && p2 > p4, "{p1} {p2} {p4}");
        assert!(p1 > 0.75, "close pairs should usually collide: {p1}");
    }

    #[test]
    fn empirical_collision_rate_matches_formula() {
        let mut rng = StdRng::seed_from_u64(9);
        let w = 4.0;
        let c = 2.0;
        let a = vec![0.0; 8];
        let mut b = vec![0.0; 8];
        b[0] = c; // distance exactly c
        let expect = base_collision_probability(c, w);
        let trials = 30_000;
        let mut hits = 0u32;
        for _ in 0..trials {
            let h = PStableHash::random(8, w, &mut rng);
            if h.eval(&a) == h.eval(&b) {
                hits += 1;
            }
        }
        let rate = f64::from(hits) / f64::from(trials);
        assert!((rate - expect).abs() < 0.02, "rate {rate} vs {expect}");
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(12);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dim_mismatch_panics() {
        let mut rng = StdRng::seed_from_u64(2);
        let h = PStableHash::random(3, 1.0, &mut rng);
        let _ = h.eval(&[1.0, 2.0]);
    }
}
