//! The bit-sampling Hamming LSH family (Section 4.2, Definition 3).
//!
//! A base hash function returns the value of a uniformly chosen bit position
//! of a vector in ℋ; a composite function `h_l` concatenates `K` base
//! functions into a blocking key. For a pair at Hamming distance `u_H ≤ θ_H`
//! the composite keys collide with probability at least `p^K`,
//! `p = 1 − θ_H/m`.

use crate::error::FamilyError;
use rand::{Rng, RngExt};
use rl_bitvec::BitVec;
use serde::{Deserialize, Serialize};

/// Maximum number of base functions per composite key; keys pack one bit per
/// base function into a `u128`.
pub const MAX_K: usize = 128;

/// A composite hash `h_l`: `K` sampled bit positions of an `m`-bit vector.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitSampler {
    positions: Vec<u32>,
}

impl BitSampler {
    /// Samples `k` positions uniformly (with replacement, as in the paper's
    /// family definition) from `{0, …, m−1}`.
    ///
    /// # Errors
    /// `FamilyError::InvalidM` if `m == 0`; `FamilyError::InvalidK` if
    /// `k == 0` or `k > MAX_K` — keys pack one bit per base function into a
    /// `u128`, so a larger `K` would silently truncate.
    pub fn random<R: Rng + ?Sized>(m: usize, k: usize, rng: &mut R) -> Result<Self, FamilyError> {
        if m == 0 {
            return Err(FamilyError::InvalidM { m });
        }
        if k == 0 || k > MAX_K {
            return Err(FamilyError::InvalidK { k, max: MAX_K });
        }
        let positions = (0..k).map(|_| rng.random_range(0..m) as u32).collect();
        Ok(Self { positions })
    }

    /// Builds a sampler from explicit positions (attribute-level blocking
    /// composes per-attribute samplers this way).
    ///
    /// # Errors
    /// `FamilyError::InvalidK` if `positions` is empty or longer than
    /// `MAX_K`.
    pub fn from_positions(positions: Vec<u32>) -> Result<Self, FamilyError> {
        if positions.is_empty() || positions.len() > MAX_K {
            return Err(FamilyError::InvalidK {
                k: positions.len(),
                max: MAX_K,
            });
        }
        Ok(Self { positions })
    }

    /// The sampled positions.
    pub fn positions(&self) -> &[u32] {
        &self.positions
    }

    /// Number of base functions `K`.
    pub fn k(&self) -> usize {
        self.positions.len()
    }

    /// Applies the composite hash: packs the sampled bits into a key.
    ///
    /// # Panics
    /// Panics if any position is out of range for `v`.
    #[inline]
    pub fn key(&self, v: &BitVec) -> u128 {
        let mut key: u128 = 0;
        for (i, &p) in self.positions.iter().enumerate() {
            key |= u128::from(v.get(p as usize)) << i;
        }
        key
    }

    /// Applies the composite hash to a *conceptual* concatenation of
    /// attribute vectors without materializing it: `attrs[a]` is the vector
    /// of attribute `a`, and the sampler's positions index the concatenation
    /// in order.
    pub fn key_concat(&self, attrs: &[&BitVec]) -> u128 {
        let mut key: u128 = 0;
        'pos: for (i, &p) in self.positions.iter().enumerate() {
            let mut p = p as usize;
            for v in attrs {
                if p < v.len() {
                    key |= u128::from(v.get(p)) << i;
                    continue 'pos;
                }
                p -= v.len();
            }
            panic!("sampled position beyond concatenated length");
        }
        key
    }
}

/// `L` independent composite hash functions — one per blocking group `T_l`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BitSampleFamily {
    samplers: Vec<BitSampler>,
}

impl BitSampleFamily {
    /// Draws `l` independent samplers of `k` positions over `m` bits.
    ///
    /// # Errors
    /// `FamilyError::EmptyFamily` if `l == 0`, or any error from
    /// [`BitSampler::random`].
    pub fn random<R: Rng + ?Sized>(
        m: usize,
        k: usize,
        l: usize,
        rng: &mut R,
    ) -> Result<Self, FamilyError> {
        if l == 0 {
            return Err(FamilyError::EmptyFamily);
        }
        let samplers = (0..l)
            .map(|_| BitSampler::random(m, k, rng))
            .collect::<Result<_, _>>()?;
        Ok(Self { samplers })
    }

    /// Wraps pre-drawn samplers into a family. Callers that must preserve a
    /// specific RNG draw order (e.g. table-major draws across several fused
    /// families) draw the samplers themselves and assemble families here.
    ///
    /// # Errors
    /// `FamilyError::EmptyFamily` if `samplers` is empty.
    pub fn from_samplers(samplers: Vec<BitSampler>) -> Result<Self, FamilyError> {
        if samplers.is_empty() {
            return Err(FamilyError::EmptyFamily);
        }
        Ok(Self { samplers })
    }

    /// The composite functions.
    pub fn samplers(&self) -> &[BitSampler] {
        &self.samplers
    }

    /// Number of blocking groups `L`.
    pub fn l(&self) -> usize {
        self.samplers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn key_packs_sampled_bits() {
        let v = BitVec::from_positions(8, [1, 3, 5]);
        let s = BitSampler::from_positions(vec![1, 2, 3, 5]).unwrap();
        // bits: pos1=1, pos2=0, pos3=1, pos5=1 → key 0b1101
        assert_eq!(s.key(&v), 0b1101);
    }

    #[test]
    fn equal_vectors_always_collide() {
        let mut rng = StdRng::seed_from_u64(1);
        let v = BitVec::from_positions(120, [0, 3, 77, 119]);
        for _ in 0..20 {
            let s = BitSampler::random(120, 30, &mut rng).unwrap();
            assert_eq!(s.key(&v), s.key(&v.clone()));
        }
    }

    #[test]
    fn key_concat_matches_materialized_concat() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = BitVec::from_positions(15, [0, 7, 14]);
        let b = BitVec::from_positions(68, [1, 40, 67]);
        let c = BitVec::from_positions(22, [5]);
        let cat = BitVec::concat([&a, &b, &c]);
        for _ in 0..50 {
            let s = BitSampler::random(cat.len(), 10, &mut rng).unwrap();
            assert_eq!(s.key(&cat), s.key_concat(&[&a, &b, &c]));
        }
    }

    #[test]
    fn family_has_l_groups() {
        let mut rng = StdRng::seed_from_u64(2);
        let f = BitSampleFamily::random(120, 30, 6, &mut rng).unwrap();
        assert_eq!(f.l(), 6);
        assert!(f.samplers().iter().all(|s| s.k() == 30));
    }

    #[test]
    fn collision_probability_tracks_definition_3() {
        // Empirical check of Pr[h(v1) = h(v2)] ≈ p^K for vectors at
        // controlled Hamming distance.
        let mut rng = StdRng::seed_from_u64(11);
        let m = 120usize;
        let theta = 4u32;
        let k = 10usize;
        let v1 = BitVec::from_positions(m, (0..40).map(|i| i * 3));
        let mut v2 = v1.clone();
        // Flip exactly theta bits.
        for i in 0..theta as usize {
            let pos = i * 7 + 1;
            if v2.get(pos) {
                v2.clear(pos);
            } else {
                v2.set(pos);
            }
        }
        assert_eq!(v1.hamming(&v2), theta);
        let p = crate::params::base_success_probability(theta, m);
        let expect = p.powi(k as i32);
        let trials = 40_000;
        let mut hits = 0u32;
        for _ in 0..trials {
            let s = BitSampler::random(m, k, &mut rng).unwrap();
            if s.key(&v1) == s.key(&v2) {
                hits += 1;
            }
        }
        let rate = f64::from(hits) / f64::from(trials);
        assert!(
            (rate - expect).abs() < 0.05 * expect + 0.01,
            "rate {rate} vs expected {expect}"
        );
    }

    #[test]
    fn oversized_k_is_a_typed_error() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            BitSampler::random(100, 129, &mut rng).unwrap_err(),
            crate::error::FamilyError::InvalidK { k: 129, max: 128 }
        );
        assert_eq!(
            BitSampler::from_positions((0..200).collect()).unwrap_err(),
            crate::error::FamilyError::InvalidK { k: 200, max: 128 }
        );
        assert!(BitSampler::random(0, 8, &mut rng).is_err());
        assert!(BitSampleFamily::random(100, 8, 0, &mut rng).is_err());
    }

    proptest! {
        #[test]
        fn keys_deterministic(
            ones in proptest::collection::btree_set(0usize..200, 0..30),
            seed in any::<u64>(),
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let v = BitVec::from_positions(200, ones);
            let s = BitSampler::random(200, 16, &mut rng).unwrap();
            prop_assert_eq!(s.key(&v), s.key(&v));
        }

        #[test]
        fn differing_key_implies_differing_vectors(
            ones in proptest::collection::btree_set(0usize..64, 1..20),
            seed in any::<u64>(),
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let v1 = BitVec::from_positions(64, ones.iter().copied());
            let v2 = v1.clone();
            let s = BitSampler::random(64, 8, &mut rng).unwrap();
            // contrapositive of "equal vectors collide"
            prop_assert_eq!(s.key(&v1), s.key(&v2));
        }
    }
}
