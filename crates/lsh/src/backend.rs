//! Pluggable blocking backends.
//!
//! A blocking backend answers one question: *given a vector, what is its
//! composite key for blocking table `l`?* Two families implement it:
//!
//! * [`BitSampleFamily`] — the paper's random bit-sampling (Definition 3):
//!   probabilistic recall ≥ `1 − δ`, with `L` from Equation 2.
//! * [`CoveringFamily`] — Pagh's CoveringLSH: `L = 2^{θ_H+1} − 1` groups
//!   with **zero false negatives** for pairs within radius `θ_H`.
//!
//! The [`Backend`] enum is the serializable closed set of backends; the
//! blocking layer stores it inside each structure so snapshots carry the
//! backend tag and its parameters.

use crate::covering::CoveringFamily;
use crate::hamming::BitSampleFamily;
use rl_bitvec::BitVec;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which backend family a structure uses — the tag reported by server
/// stats and carried in snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BackendKind {
    /// Random bit-sampling (Definition 3), recall ≥ 1 − δ.
    RandomSampling,
    /// CoveringLSH, recall = 1 within the covering radius.
    Covering,
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendKind::RandomSampling => write!(f, "random"),
            BackendKind::Covering => write!(f, "covering"),
        }
    }
}

/// Key generation for `L` blocking tables over one bit-vector source.
pub trait BlockingBackend {
    /// The backend tag.
    fn kind(&self) -> BackendKind;

    /// Number of blocking tables `L` this backend keys.
    fn l(&self) -> usize;

    /// Width in bits of table `l`'s key, capped at the 128 bits a key can
    /// physically hold (multi-probe neighbour enumeration flips key bits,
    /// so it needs the populated width).
    fn key_bits(&self, l: usize) -> usize;

    /// Composite key of `v` for table `l`.
    fn key(&self, l: usize, v: &BitVec) -> u128;

    /// Composite key for table `l` over a conceptual concatenation of
    /// attribute vectors (not materialized).
    fn key_concat(&self, l: usize, attrs: &[&BitVec]) -> u128;
}

impl BlockingBackend for BitSampleFamily {
    fn kind(&self) -> BackendKind {
        BackendKind::RandomSampling
    }

    fn l(&self) -> usize {
        self.l()
    }

    fn key_bits(&self, l: usize) -> usize {
        self.samplers()[l].k()
    }

    fn key(&self, l: usize, v: &BitVec) -> u128 {
        self.samplers()[l].key(v)
    }

    fn key_concat(&self, l: usize, attrs: &[&BitVec]) -> u128 {
        self.samplers()[l].key_concat(attrs)
    }
}

impl BlockingBackend for CoveringFamily {
    fn kind(&self) -> BackendKind {
        BackendKind::Covering
    }

    fn l(&self) -> usize {
        self.l()
    }

    fn key_bits(&self, l: usize) -> usize {
        self.groups()[l].width().min(128)
    }

    fn key(&self, l: usize, v: &BitVec) -> u128 {
        self.groups()[l].key(v)
    }

    fn key_concat(&self, l: usize, attrs: &[&BitVec]) -> u128 {
        self.groups()[l].key_concat(attrs)
    }
}

/// The closed, serializable set of backends a blocking structure can hold.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Backend {
    /// Random bit-sampling family.
    RandomSampling(BitSampleFamily),
    /// Covering family.
    Covering(CoveringFamily),
}

impl BlockingBackend for Backend {
    fn kind(&self) -> BackendKind {
        match self {
            Backend::RandomSampling(f) => f.kind(),
            Backend::Covering(f) => f.kind(),
        }
    }

    fn l(&self) -> usize {
        match self {
            Backend::RandomSampling(f) => BlockingBackend::l(f),
            Backend::Covering(f) => BlockingBackend::l(f),
        }
    }

    fn key_bits(&self, l: usize) -> usize {
        match self {
            Backend::RandomSampling(f) => f.key_bits(l),
            Backend::Covering(f) => f.key_bits(l),
        }
    }

    fn key(&self, l: usize, v: &BitVec) -> u128 {
        match self {
            Backend::RandomSampling(f) => f.key(l, v),
            Backend::Covering(f) => f.key(l, v),
        }
    }

    fn key_concat(&self, l: usize, attrs: &[&BitVec]) -> u128 {
        match self {
            Backend::RandomSampling(f) => f.key_concat(l, attrs),
            Backend::Covering(f) => f.key_concat(l, attrs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_sampling_backend_matches_direct_sampler_keys() {
        let mut rng = StdRng::seed_from_u64(1);
        let f = BitSampleFamily::random(120, 30, 4, &mut rng).unwrap();
        let v = BitVec::from_positions(120, [3, 40, 80, 119]);
        for l in 0..4 {
            assert_eq!(
                BlockingBackend::key(&f, l, &v),
                f.samplers()[l].key(&v),
                "trait dispatch must not change keys"
            );
        }
        let b = Backend::RandomSampling(f.clone());
        assert_eq!(b.kind(), BackendKind::RandomSampling);
        assert_eq!(BlockingBackend::l(&b), 4);
        for l in 0..4 {
            assert_eq!(b.key(l, &v), f.samplers()[l].key(&v));
        }
    }

    #[test]
    fn covering_backend_dispatches() {
        let mut rng = StdRng::seed_from_u64(2);
        let f = CoveringFamily::random(60, 2, &mut rng).unwrap();
        let v = BitVec::from_positions(60, [1, 30, 59]);
        let b = Backend::Covering(f.clone());
        assert_eq!(b.kind(), BackendKind::Covering);
        assert_eq!(BlockingBackend::l(&b), 7);
        for l in 0..7 {
            assert_eq!(b.key(l, &v), f.groups()[l].key(&v));
        }
    }

    #[test]
    fn kind_display_matches_cli_names() {
        assert_eq!(BackendKind::RandomSampling.to_string(), "random");
        assert_eq!(BackendKind::Covering.to_string(), "covering");
    }
}
