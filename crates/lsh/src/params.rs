//! Blocking-group parameter math (Section 4.2 and Definitions 4–6).
//!
//! The HB mechanism amplifies a base hash family by concatenating `K` base
//! functions per table and running `L` independent tables. For a pair within
//! the Hamming threshold `θ_H` on vectors of `m` bits, a base bit-sample
//! collides with probability `p = 1 − θ_H/m`, a composite key with
//! probability `≥ p^K`, and `L = ⌈ln δ / ln(1 − p^K)⌉` tables (Equation 2)
//! guarantee recall `≥ 1 − δ`.

/// Success probability of a single bit-sample for a pair at Hamming
/// threshold `theta` on `m`-bit vectors: `p = 1 − θ/m` (Definition 3).
///
/// # Panics
/// Panics if `m == 0` or `theta > m`.
pub fn base_success_probability(theta: u32, m: usize) -> f64 {
    assert!(m > 0, "vector size m must be positive");
    assert!(
        theta as usize <= m,
        "threshold {theta} exceeds vector size {m}"
    );
    1.0 - f64::from(theta) / m as f64
}

/// Number of blocking groups `L = ⌈ln δ / ln(1 − p_collide)⌉` (Equation 2)
/// for a composite collision probability `p_collide` and failure budget `δ`.
///
/// `p_collide` is the probability that *one* table's composite key collides
/// for a truly similar pair — `p^K` for record-level HB, or the rule-adjusted
/// `p_∧` / `p_∨` bounds of Definitions 4–5.
///
/// # Panics
/// Panics unless `0 < delta < 1` and `0 < p_collide ≤ 1`.
pub fn optimal_l(p_collide: f64, delta: f64) -> usize {
    assert!(
        delta > 0.0 && delta < 1.0,
        "delta must lie in (0, 1), got {delta}"
    );
    assert!(
        p_collide > 0.0 && p_collide <= 1.0,
        "collision probability must lie in (0, 1], got {p_collide}"
    );
    if p_collide >= 1.0 {
        return 1;
    }
    let l = delta.ln() / (1.0 - p_collide).ln();
    (l.ceil() as usize).max(1)
}

/// Recall guarantee delivered by `l` tables at per-table collision
/// probability `p_collide`: `1 − (1 − p_collide)^l`.
pub fn recall_lower_bound(p_collide: f64, l: usize) -> f64 {
    1.0 - (1.0 - p_collide).powf(l as f64)
}

/// Definition 4 (AND operator): the composite collision probability for a
/// conjunction over attributes, `p_∧ = Π_i p_i^{K_i}`.
///
/// `terms` yields `(p_i, K_i)` pairs.
pub fn and_probability<I>(terms: I) -> f64
where
    I: IntoIterator<Item = (f64, u32)>,
{
    terms.into_iter().map(|(p, k)| p.powi(k as i32)).product()
}

/// Definition 5 (OR operator): collision probability in *any* structure via
/// inclusion–exclusion, `p_∨ = 1 − Π_i (1 − p_i^{K_i})`.
pub fn or_probability<I>(terms: I) -> f64
where
    I: IntoIterator<Item = (f64, u32)>,
{
    1.0 - terms
        .into_iter()
        .map(|(p, k)| 1.0 - p.powi(k as i32))
        .product::<f64>()
}

/// Definition 6 (NOT operator): probability of a pair *not* colliding in a
/// structure, `p_¬ = 1 − p^K`.
pub fn not_probability(p: f64, k: u32) -> f64 {
    1.0 - p.powi(k as i32)
}

/// Cost model for the optimal-K selection of Karapiperis & Verykios
/// (COMSIS 2014) — the method the paper cites for choosing `K` "that
/// minimizes the estimated running time" (Section 4.2).
#[derive(Debug, Clone, Copy)]
pub struct KCostModel {
    /// Records indexed per data set `n`.
    pub n: usize,
    /// Vector size `m` in bits.
    pub m: usize,
    /// Hamming threshold `θ` for similar pairs.
    pub theta: u32,
    /// Failure budget δ.
    pub delta: f64,
    /// Collision probability of a base hash for an *average dissimilar*
    /// pair (`1 − ū/m` with ū the typical distance between random records;
    /// estimate it by sampling pairs).
    pub p_dissimilar: f64,
    /// Relative cost of one candidate distance computation versus one
    /// key-hash/insert operation (≈ 1 for compact c-vectors).
    pub verify_cost: f64,
}

impl KCostModel {
    /// Estimated running-time proxy at a given `K`:
    /// `L·n·(1 + verify_cost·n·p_dissimilar^K)` — table construction plus
    /// expected candidate verifications across probes.
    pub fn cost(&self, k: u32) -> f64 {
        let p1 = base_success_probability(self.theta, self.m);
        let pk = p1.powi(k as i32);
        if pk <= 0.0 {
            return f64::INFINITY;
        }
        let l = optimal_l(pk, self.delta) as f64;
        let n = self.n as f64;
        let candidates_per_probe = n * self.p_dissimilar.powi(k as i32);
        l * n * (1.0 + self.verify_cost * candidates_per_probe)
    }

    /// Scans `k_range` and returns the cost-minimizing `K`.
    ///
    /// # Panics
    /// Panics on an empty range.
    pub fn optimal_k(&self, k_range: std::ops::RangeInclusive<u32>) -> u32 {
        k_range
            .map(|k| (k, self.cost(k)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty K range")
            .0
    }
}

/// Per-table success probability under multi-probe querying with up to `t`
/// flipped key bits (Lv et al., VLDB 2007, adapted to bit-sampling): a pair
/// is found when at most `t` of the `K` sampled bits differ,
/// `Σ_{i=0..t} C(K,i) · p^{K−i} · (1−p)^i`.
///
/// # Panics
/// Panics if `t > k`.
pub fn multiprobe_collision_probability(p: f64, k: u32, t: u32) -> f64 {
    assert!(t <= k, "cannot flip more bits than the key has");
    let mut total = 0.0;
    let mut binom = 1.0f64; // C(k, i)
    for i in 0..=t {
        total += binom * p.powi((k - i) as i32) * (1.0 - p).powi(i as i32);
        binom = binom * f64::from(k - i) / f64::from(i + 1);
    }
    total.min(1.0)
}

/// One point of a recall-versus-distance curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecallPoint {
    /// Hamming distance `u`.
    pub distance: u32,
    /// Probability that a pair at this distance is formulated by at least
    /// one of the `l` tables: `1 − (1 − (1 − u/m)^K)^L`.
    pub recall: f64,
}

/// The full amplification curve of an `(m, K, L)` configuration: recall as
/// a function of pair distance, from 0 to `max_distance`. This is the
/// S-curve that makes LSH a *distance-threshold* filter — steep around the
/// design threshold, near-1 below it, near-0 far above it.
pub fn recall_curve(m: usize, k: u32, l: usize, max_distance: u32) -> Vec<RecallPoint> {
    assert!(m > 0, "vector size must be positive");
    (0..=max_distance.min(m as u32))
        .map(|u| {
            let p = base_success_probability(u, m);
            RecallPoint {
                distance: u,
                recall: recall_lower_bound(p.powi(k as i32), l),
            }
        })
        .collect()
}

/// Estimates `p_dissimilar` (the average base-hash collision probability of
/// non-matching pairs) from a sample of pairwise distances.
pub fn estimate_p_dissimilar(distances: &[u32], m: usize) -> f64 {
    assert!(m > 0, "vector size must be positive");
    if distances.is_empty() {
        return 0.5;
    }
    let mean = distances.iter().map(|&d| f64::from(d)).sum::<f64>() / distances.len() as f64;
    (1.0 - mean / m as f64).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn base_probability_matches_definition() {
        assert!((base_success_probability(4, 120) - (1.0 - 4.0 / 120.0)).abs() < 1e-12);
        assert_eq!(base_success_probability(0, 10), 1.0);
        assert_eq!(base_success_probability(10, 10), 0.0);
    }

    #[test]
    fn paper_bfh_pl_l_is_4() {
        // §6.1: BfH with m̄ = 2000 bits, θ = 45, K = 30, δ = 0.1 → L = 4.
        let p = base_success_probability(45, 2000);
        let l = optimal_l(p.powi(30), 0.1);
        assert_eq!(l, 4);
    }

    #[test]
    fn paper_cbvhb_pl_l_is_6() {
        // §6.2 (NCVR, PL): m̄_opt = 120, θ = 4, K = 30, δ = 0.1 → L = 6.
        let p = base_success_probability(4, 120);
        let l = optimal_l(p.powi(30), 0.1);
        assert_eq!(l, 6);
    }

    #[test]
    fn paper_cbvhb_dblp_pl_l_is_3() {
        // §6.2 (DBLP, PL): m̄_opt = 267, θ = 4, K = 30, δ = 0.1 → L = 3.
        let p = base_success_probability(4, 267);
        let l = optimal_l(p.powi(30), 0.1);
        assert_eq!(l, 3);
    }

    #[test]
    fn certain_collision_needs_one_table() {
        assert_eq!(optimal_l(1.0, 0.1), 1);
    }

    #[test]
    fn recall_bound_reaches_target() {
        let p = base_success_probability(4, 120).powi(30);
        let l = optimal_l(p, 0.1);
        assert!(recall_lower_bound(p, l) >= 0.9);
        // And one fewer table would miss the target (tightness of ceil).
        if l > 1 {
            assert!(recall_lower_bound(p, l - 1) < 0.9);
        }
    }

    #[test]
    fn and_or_not_probabilities() {
        let terms = [(0.9f64, 2u32), (0.8, 1)];
        let p_and = and_probability(terms);
        assert!((p_and - 0.81 * 0.8).abs() < 1e-12);
        let p_or = or_probability(terms);
        assert!((p_or - (0.81 + 0.8 - 0.81 * 0.8)).abs() < 1e-12);
        assert!((not_probability(0.9, 2) - 0.19).abs() < 1e-12);
    }

    #[test]
    fn and_l_larger_than_record_level_or_l_smaller() {
        // §5.4: AND rules need more groups, OR rules fewer, than the same
        // probability mass at record level.
        let p = 0.95f64;
        let record = optimal_l(p.powi(10), 0.1);
        let and_rule = optimal_l(and_probability([(p, 5), (p, 5), (p, 5)]), 0.1);
        let or_rule = optimal_l(or_probability([(p, 5), (p, 5)]), 0.1);
        assert!(and_rule > record);
        assert!(or_rule < record);
    }

    #[test]
    fn k_cost_model_is_u_shaped() {
        // At 1M-record scale the cost curve falls (bucket selectivity) then
        // rises (table count): the paper's Figure 8(a) trade-off.
        let model = KCostModel {
            n: 1_000_000,
            m: 120,
            theta: 4,
            delta: 0.1,
            p_dissimilar: 0.6,
            verify_cost: 1.0,
        };
        let k_opt = model.optimal_k(5..=45);
        assert!(
            (15..=40).contains(&k_opt),
            "optimum {k_opt} should be interior"
        );
        assert!(model.cost(5) > model.cost(k_opt));
        assert!(model.cost(45) > model.cost(k_opt));
    }

    #[test]
    fn k_cost_model_small_n_prefers_small_k() {
        // With few records, bucket over-population never bites, so the
        // optimum shifts left — why Figure 8(a)'s left branch needs scale.
        let small = KCostModel {
            n: 1_000,
            m: 120,
            theta: 4,
            delta: 0.1,
            p_dissimilar: 0.6,
            verify_cost: 1.0,
        };
        let large = KCostModel {
            n: 1_000_000,
            ..small
        };
        assert!(small.optimal_k(5..=45) <= large.optimal_k(5..=45));
    }

    #[test]
    fn multiprobe_boosts_per_table_probability() {
        let p = 0.9f64;
        let exact = multiprobe_collision_probability(p, 20, 0);
        assert!((exact - p.powi(20)).abs() < 1e-12);
        let one = multiprobe_collision_probability(p, 20, 1);
        let two = multiprobe_collision_probability(p, 20, 2);
        assert!(one > exact && two > one);
        assert!(two <= 1.0);
        // Fewer tables needed at the same δ.
        assert!(optimal_l(one, 0.1) < optimal_l(exact, 0.1));
    }

    #[test]
    fn multiprobe_full_flip_budget_is_certain() {
        // Allowing all K bits to differ means every key "collides".
        let p = 0.5f64;
        assert!((multiprobe_collision_probability(p, 8, 8) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn recall_curve_is_a_decreasing_s_curve() {
        let m = 120;
        let theta = 4u32;
        let p = base_success_probability(theta, m);
        let k = 30u32;
        let l = optimal_l(p.powi(k as i32), 0.1);
        let curve = recall_curve(m, k, l, 40);
        assert_eq!(curve[0].recall, 1.0, "distance 0 always collides");
        // Monotone non-increasing.
        for w in curve.windows(2) {
            assert!(w[1].recall <= w[0].recall + 1e-12);
        }
        // ≥ 1−δ at the design threshold, low far beyond it.
        assert!(curve[theta as usize].recall >= 0.9);
        assert!(curve[40].recall < 0.1, "far pairs mostly filtered");
    }

    #[test]
    fn estimate_p_dissimilar_from_sample() {
        assert!((estimate_p_dissimilar(&[60, 60, 60], 120) - 0.5).abs() < 1e-12);
        assert_eq!(estimate_p_dissimilar(&[], 120), 0.5);
        assert_eq!(estimate_p_dissimilar(&[240], 120), 0.0); // clamped
    }

    #[test]
    #[should_panic(expected = "delta")]
    fn bad_delta_panics() {
        let _ = optimal_l(0.5, 1.5);
    }

    #[test]
    #[should_panic(expected = "exceeds vector size")]
    fn threshold_above_m_panics() {
        let _ = base_success_probability(11, 10);
    }

    proptest! {
        #[test]
        fn l_monotone_in_p(p1 in 0.01f64..0.99, dp in 0.0f64..0.5) {
            let p2 = (p1 + dp).min(0.999);
            prop_assert!(optimal_l(p2, 0.1) <= optimal_l(p1, 0.1));
        }

        #[test]
        fn or_at_least_max_term(p1 in 0.01f64..0.99, p2 in 0.01f64..0.99) {
            let or = or_probability([(p1, 3), (p2, 3)]);
            prop_assert!(or >= p1.powi(3) - 1e-12);
            prop_assert!(or >= p2.powi(3) - 1e-12);
            prop_assert!(or <= 1.0 + 1e-12);
        }

        #[test]
        fn and_at_most_min_term(p1 in 0.01f64..0.99, p2 in 0.01f64..0.99) {
            let and = and_probability([(p1, 3), (p2, 3)]);
            prop_assert!(and <= p1.powi(3) + 1e-12);
            prop_assert!(and <= p2.powi(3) + 1e-12);
            prop_assert!(and >= 0.0);
        }

        #[test]
        fn recall_bound_met_for_any_params(theta in 0u32..20, k in 1u32..40) {
            let m = 120usize;
            let p = base_success_probability(theta.min(m as u32), m);
            if p > 0.0 {
                let pk = p.powi(k as i32);
                if pk > 1e-6 {
                    let l = optimal_l(pk, 0.1);
                    prop_assert!(recall_lower_bound(pk, l) >= 0.9 - 1e-9);
                }
            }
        }
    }
}
