//! The [`BitVec`] type: a fixed-length bit vector packed into `u64` words.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A fixed-length bit vector.
///
/// Lengths are fixed at construction: all distance and concatenation
/// operations check length compatibility. Bit `i` lives in word `i / 64`,
/// bit position `i % 64` (LSB-first), and padding bits beyond `len` are kept
/// zero as an invariant so `count_ones` and `hamming` never see garbage.
///
/// ```
/// use rl_bitvec::BitVec;
/// let a = BitVec::from_positions(120, [3, 64, 99]);
/// let b = BitVec::from_positions(120, [3, 64, 100]);
/// assert_eq!(a.hamming(&b), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitVec {
    len: usize,
    words: Vec<u64>,
}

impl BitVec {
    /// Creates an all-zero bit vector of `len` bits.
    pub fn zeros(len: usize) -> Self {
        Self {
            len,
            words: vec![0; len.div_ceil(64)],
        }
    }

    /// Creates a bit vector of `len` bits with the given positions set.
    ///
    /// Out-of-range positions panic; duplicate positions are idempotent
    /// (matching how a q-gram set maps onto a vector).
    pub fn from_positions<I>(len: usize, positions: I) -> Self
    where
        I: IntoIterator<Item = usize>,
    {
        let mut v = Self::zeros(len);
        for p in positions {
            v.set(p);
        }
        v
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the vector has zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i` to 1.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(
            i < self.len,
            "bit index {i} out of range (len {})",
            self.len
        );
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clears bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        assert!(
            i < self.len,
            "bit index {i} out of range (len {})",
            self.len
        );
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Returns bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bit index {i} out of range (len {})",
            self.len
        );
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of set bits.
    #[inline]
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Hamming distance to `other`: the number of differing bits.
    ///
    /// # Panics
    /// Panics if lengths differ — distances between different spaces are a
    /// logic error, not a runtime condition.
    #[inline]
    pub fn hamming(&self, other: &Self) -> u32 {
        assert_eq!(
            self.len, other.len,
            "hamming distance requires equal lengths"
        );
        crate::ops::hamming_words(&self.words, &other.words)
    }

    /// The underlying words (LSB-first packing, zero-padded tail).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Iterator over the indexes of set bits, ascending.
    pub fn ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let tz = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + tz)
                }
            })
        })
    }

    /// Concatenates several bit vectors into one (attribute-level vectors →
    /// record-level vector, Section 4.1 / 5.2).
    pub fn concat<'a, I>(parts: I) -> Self
    where
        I: IntoIterator<Item = &'a BitVec>,
    {
        let parts: Vec<&BitVec> = parts.into_iter().collect();
        let total: usize = parts.iter().map(|p| p.len).sum();
        let mut out = Self::zeros(total);
        let mut offset = 0;
        for p in parts {
            for i in p.ones() {
                out.set(offset + i);
            }
            offset += p.len;
        }
        out
    }

    /// Bitwise AND population count with `other` (used for Jaccard over
    /// bit-vector representations).
    pub fn and_count(&self, other: &Self) -> usize {
        assert_eq!(self.len, other.len);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Bitwise OR population count with `other`.
    pub fn or_count(&self, other: &Self) -> usize {
        assert_eq!(self.len, other.len);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a | b).count_ones() as usize)
            .sum()
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec[{}; ones=", self.len)?;
        f.debug_list().entries(self.ones()).finish()?;
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zeros_has_no_ones() {
        let v = BitVec::zeros(130);
        assert_eq!(v.len(), 130);
        assert_eq!(v.count_ones(), 0);
        assert!(!v.get(129));
    }

    #[test]
    fn set_get_clear_roundtrip() {
        let mut v = BitVec::zeros(100);
        for i in [0, 1, 63, 64, 65, 99] {
            v.set(i);
            assert!(v.get(i));
        }
        assert_eq!(v.count_ones(), 6);
        v.clear(64);
        assert!(!v.get(64));
        assert_eq!(v.count_ones(), 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        BitVec::zeros(10).set(10);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn hamming_length_mismatch_panics() {
        let _ = BitVec::zeros(10).hamming(&BitVec::zeros(11));
    }

    #[test]
    fn hamming_counts_differing_bits() {
        let a = BitVec::from_positions(200, [0, 5, 70, 150]);
        let b = BitVec::from_positions(200, [0, 6, 70, 151]);
        assert_eq!(a.hamming(&b), 4);
        assert_eq!(a.hamming(&a), 0);
    }

    #[test]
    fn ones_iterates_ascending() {
        let v = BitVec::from_positions(200, [150, 3, 64, 3]);
        let ones: Vec<usize> = v.ones().collect();
        assert_eq!(ones, vec![3, 64, 150]);
    }

    #[test]
    fn concat_offsets_parts() {
        let a = BitVec::from_positions(10, [1, 9]);
        let b = BitVec::from_positions(70, [0, 69]);
        let c = BitVec::concat([&a, &b]);
        assert_eq!(c.len(), 80);
        let ones: Vec<usize> = c.ones().collect();
        assert_eq!(ones, vec![1, 9, 10, 79]);
    }

    #[test]
    fn concat_empty_is_empty() {
        let c = BitVec::concat(std::iter::empty());
        assert_eq!(c.len(), 0);
        assert_eq!(c.count_ones(), 0);
    }

    #[test]
    fn and_or_counts() {
        let a = BitVec::from_positions(128, [0, 1, 2, 100]);
        let b = BitVec::from_positions(128, [1, 2, 3, 101]);
        assert_eq!(a.and_count(&b), 2);
        assert_eq!(a.or_count(&b), 6);
    }

    #[test]
    fn zero_length_vector() {
        let v = BitVec::zeros(0);
        assert!(v.is_empty());
        assert_eq!(v.count_ones(), 0);
        assert_eq!(v.hamming(&BitVec::zeros(0)), 0);
    }

    proptest! {
        #[test]
        fn hamming_equals_symmetric_difference(
            xs in proptest::collection::btree_set(0usize..300, 0..40),
            ys in proptest::collection::btree_set(0usize..300, 0..40),
        ) {
            let a = BitVec::from_positions(300, xs.iter().copied());
            let b = BitVec::from_positions(300, ys.iter().copied());
            let sym = xs.symmetric_difference(&ys).count() as u32;
            prop_assert_eq!(a.hamming(&b), sym);
        }

        #[test]
        fn hamming_is_metric(
            xs in proptest::collection::btree_set(0usize..128, 0..20),
            ys in proptest::collection::btree_set(0usize..128, 0..20),
            zs in proptest::collection::btree_set(0usize..128, 0..20),
        ) {
            let a = BitVec::from_positions(128, xs);
            let b = BitVec::from_positions(128, ys);
            let c = BitVec::from_positions(128, zs);
            prop_assert_eq!(a.hamming(&b), b.hamming(&a));
            prop_assert!(a.hamming(&c) <= a.hamming(&b) + b.hamming(&c));
            prop_assert_eq!(a.hamming(&a), 0);
        }

        #[test]
        fn ones_roundtrip(xs in proptest::collection::btree_set(0usize..500, 0..60)) {
            let v = BitVec::from_positions(500, xs.iter().copied());
            let back: Vec<usize> = v.ones().collect();
            let expect: Vec<usize> = xs.into_iter().collect();
            prop_assert_eq!(back, expect);
            prop_assert_eq!(v.count_ones(), v.ones().count());
        }

        #[test]
        fn concat_preserves_counts(
            xs in proptest::collection::btree_set(0usize..90, 0..20),
            ys in proptest::collection::btree_set(0usize..70, 0..20),
        ) {
            let a = BitVec::from_positions(90, xs);
            let b = BitVec::from_positions(70, ys);
            let c = BitVec::concat([&a, &b]);
            prop_assert_eq!(c.count_ones(), a.count_ones() + b.count_ones());
            // Concatenated Hamming distance decomposes per part.
            let c2 = BitVec::concat([&b, &a]);
            prop_assert_eq!(c.count_ones(), c2.count_ones());
        }
    }
}
