//! Fixed-width bit vectors with fast Hamming distance.
//!
//! This crate is the substrate for both Hamming spaces of the paper: the
//! deterministic q-gram-vector space ℋ (`|S|^q` bits per attribute) and the
//! compact c-vector space Ĥ (`m_opt` bits per attribute). Bits are packed
//! into `u64` words so that Hamming distance is a word-wise XOR + `popcount`
//! loop — the "computed very fast" property the paper relies on for
//! real-time settings.

pub mod bitvec;
pub mod ops;

pub use bitvec::BitVec;
pub use ops::{hamming_words, jaccard_bits, naive_hamming};
