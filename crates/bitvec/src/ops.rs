//! Low-level word operations: the fast paths and their naive references.
//!
//! `hamming_words` is the production kernel (XOR + popcount per word). The
//! `naive_hamming` per-bit loop exists only as the baseline for the
//! `ablation_popcount` bench, demonstrating why packed words matter for the
//! paper's "distances computed very fast" claim.

use crate::BitVec;

/// Word-wise Hamming distance kernel: `Σ popcount(a[i] ^ b[i])`.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn hamming_words(a: &[u64], b: &[u64]) -> u32 {
    assert_eq!(a.len(), b.len(), "word slices must align");
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x ^ y).count_ones())
        .sum()
}

/// Reference per-bit Hamming distance (ablation baseline — do not use in
/// production paths).
pub fn naive_hamming(a: &BitVec, b: &BitVec) -> u32 {
    assert_eq!(a.len(), b.len(), "hamming distance requires equal lengths");
    (0..a.len()).filter(|&i| a.get(i) != b.get(i)).count() as u32
}

/// Jaccard similarity between two equal-length bit vectors:
/// `|a ∧ b| / |a ∨ b|`, with two all-zero vectors defined as similarity 1.
pub fn jaccard_bits(a: &BitVec, b: &BitVec) -> f64 {
    let or = a.or_count(b);
    if or == 0 {
        return 1.0;
    }
    a.and_count(b) as f64 / or as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn hamming_words_basic() {
        assert_eq!(hamming_words(&[0b1010], &[0b0110]), 2);
        assert_eq!(hamming_words(&[], &[]), 0);
        assert_eq!(hamming_words(&[u64::MAX], &[0]), 64);
    }

    #[test]
    fn jaccard_bits_cases() {
        let a = BitVec::from_positions(64, [1, 2, 3]);
        let b = BitVec::from_positions(64, [2, 3, 4]);
        assert!((jaccard_bits(&a, &b) - 0.5).abs() < 1e-12);
        let z = BitVec::zeros(64);
        assert_eq!(jaccard_bits(&z, &z), 1.0);
        assert_eq!(jaccard_bits(&a, &z), 0.0);
    }

    proptest! {
        #[test]
        fn naive_matches_fast(
            xs in proptest::collection::btree_set(0usize..200, 0..30),
            ys in proptest::collection::btree_set(0usize..200, 0..30),
        ) {
            let a = BitVec::from_positions(200, xs);
            let b = BitVec::from_positions(200, ys);
            prop_assert_eq!(a.hamming(&b), naive_hamming(&a, &b));
        }

        #[test]
        fn jaccard_in_unit_interval(
            xs in proptest::collection::btree_set(0usize..100, 0..30),
            ys in proptest::collection::btree_set(0usize..100, 0..30),
        ) {
            let a = BitVec::from_positions(100, xs);
            let b = BitVec::from_positions(100, ys);
            let j = jaccard_bits(&a, &b);
            prop_assert!((0.0..=1.0).contains(&j));
        }
    }
}
