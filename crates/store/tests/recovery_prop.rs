//! Crash-recovery property test (satellite of the durability PR): a
//! random mutation sequence is appended to a WAL segment, the file is
//! truncated at a random byte offset — simulating a crash that tore the
//! tail — and recovery must yield **exactly the longest valid prefix** of
//! the appended ops, then keep accepting appends.

use cbv_hb::Record;
use proptest::prelude::*;
use rl_store::wal::{SyncPolicy, Wal, WalOp};
use rl_store::{Store, StoreOptions};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique scratch directory per generated case (cases run in one
/// process, so a counter is enough to keep them apart).
fn scratch_dir() -> PathBuf {
    static CASE: AtomicU64 = AtomicU64::new(0);
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("rl-store-prop-{}-{n}", std::process::id()))
}

fn op_strategy() -> impl Strategy<Value = WalOp> {
    let name = (0u64..3000).prop_map(|n| format!("N{n:04}"));
    prop_oneof![
        (0u64..500, name.clone(), name.clone())
            .prop_map(|(id, a, b)| WalOp::Insert(Record::new(id, [a, b]))),
        (0u64..500, name.clone(), name)
            .prop_map(|(id, a, b)| WalOp::Observe(Record::new(id, [a, b]))),
        (0u64..500).prop_map(WalOp::Delete),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn recovery_yields_exactly_the_longest_valid_prefix(
        ops in proptest::collection::vec(op_strategy(), 1..32),
        cut_seed in 0u64..u64::MAX,
    ) {
        let dir = scratch_dir();
        std::fs::create_dir_all(&dir).unwrap();
        // Write the sequence through a real segment, remembering the byte
        // boundary after every frame.
        let seg = dir.join("wal-000000.log");
        let mut wal = Wal::create(&seg, SyncPolicy::Never).unwrap();
        let mut boundaries = Vec::with_capacity(ops.len());
        for op in &ops {
            boundaries.push(wal.append(op).unwrap());
        }
        wal.sync().unwrap();
        let file_len = wal.len();
        drop(wal);

        // Tear the tail at an arbitrary offset (including 0 — a crash
        // right after the file was created — and file_len — no tear).
        let cut = cut_seed % (file_len + 1);
        std::fs::OpenOptions::new()
            .write(true)
            .open(&seg)
            .unwrap()
            .set_len(cut)
            .unwrap();

        // The longest valid prefix: every frame whose end fits under the
        // cut. A cut inside the 8-byte header invalidates everything; a
        // cut exactly on a frame boundary tears nothing.
        let header = 8u64;
        let keep = boundaries.iter().filter(|&&end| end <= cut).count();
        let valid_end = boundaries
            .iter()
            .copied()
            .filter(|&end| end <= cut)
            .max()
            .unwrap_or(header);
        let expected_torn = if cut < header { cut } else { cut - valid_end };

        let (mut store, recovery) = Store::open(&dir, StoreOptions::default()).unwrap();
        prop_assert!(recovery.snapshot.is_none());
        prop_assert_eq!(&recovery.ops, &ops[..keep]);
        prop_assert_eq!(recovery.report.replayed_ops, keep as u64);
        prop_assert_eq!(recovery.report.truncated_bytes, expected_torn);

        // The store must keep accepting appends after recovery, and a
        // second recovery must see prefix + new op.
        let extra = WalOp::Delete(u64::MAX);
        store.append(&extra).unwrap();
        drop(store);
        let (_store2, again) = Store::open(&dir, StoreOptions::default()).unwrap();
        let mut expected: Vec<WalOp> = ops[..keep].to_vec();
        expected.push(extra);
        prop_assert_eq!(again.ops, expected);
        prop_assert_eq!(again.report.truncated_bytes, 0);

        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Fencing property (satellite of the self-healing-replication PR): a
    /// WAL holding frames stamped with arbitrary epochs replays **exactly
    /// the longest prefix with non-decreasing epochs** — the first frame
    /// stamped below an epoch seen earlier (stale-primary residue) ends
    /// the log like a torn frame, and everything after it is truncated.
    #[test]
    fn mixed_epoch_replay_stops_at_the_first_stale_frame(
        stamped in proptest::collection::vec((op_strategy(), 0u64..4), 1..32),
    ) {
        let dir = scratch_dir();
        std::fs::create_dir_all(&dir).unwrap();
        let seg = dir.join("wal-000001.log");
        let mut wal = Wal::create(&seg, SyncPolicy::Never).unwrap();
        for (op, epoch) in &stamped {
            // Forge a writer that stamps whatever epoch the case says —
            // including one *below* what it wrote before, which is
            // exactly what a demoted primary's zombie appends look like.
            wal.set_epoch(*epoch);
            wal.append(op).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);

        // Expected: the longest prefix where epochs never decrease.
        let mut high = 0u64;
        let mut keep = 0usize;
        for (_, epoch) in &stamped {
            if *epoch < high {
                break;
            }
            high = *epoch;
            keep += 1;
        }
        let expected: Vec<WalOp> = stamped[..keep].iter().map(|(op, _)| op.clone()).collect();

        let seg_replay = rl_store::replay_from_epoch(&seg, 0).unwrap();
        prop_assert_eq!(&seg_replay.ops, &expected);
        prop_assert_eq!(seg_replay.max_epoch, high);
        prop_assert_eq!(seg_replay.torn_bytes > 0, keep < stamped.len());

        // Store-level recovery applies the same fence and keeps working
        // at the recovered (highest) epoch afterwards.
        let (mut store, recovery) = Store::open(&dir, StoreOptions::default()).unwrap();
        prop_assert_eq!(&recovery.ops, &expected);
        prop_assert_eq!(store.epoch(), high);
        let extra = WalOp::Delete(u64::MAX);
        store.append(&extra).unwrap();
        drop(store);
        let (_store2, again) = Store::open(&dir, StoreOptions::default()).unwrap();
        let mut expected_after: Vec<WalOp> = expected.clone();
        expected_after.push(extra);
        prop_assert_eq!(again.ops, expected_after);
        prop_assert_eq!(again.report.epoch, high);

        std::fs::remove_dir_all(&dir).unwrap();
    }
}
