//! Mixed-format recovery (acceptance gate of the wire PR): a data
//! directory written by the pre-upgrade store — v1 CRC'd-JSON WAL
//! segments — must keep recovering after the upgrade, while every *new*
//! segment the upgraded store creates uses the v2 binary format. A
//! directory can therefore hold both formats side by side, and replay
//! must walk them in order.

use cbv_hb::Record;
use rl_store::wal::{crc32, replay};
use rl_store::{segment_path, Store, StoreOptions, WalFormat, WalOp, WAL_MAGIC, WAL_MAGIC_V2};
use std::path::{Path, PathBuf};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rl-store-mixed-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn rec(id: u64) -> Record {
    Record::new(id, [format!("FIRST{id}"), format!("LAST{id}")])
}

/// Byte-identical to what the pre-upgrade (PR 4–6) WAL wrote.
fn write_v1_segment(path: &Path, ops: &[WalOp]) {
    let mut bytes = WAL_MAGIC.to_vec();
    for op in ops {
        let payload = serde_json::to_string(op).unwrap().into_bytes();
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
    }
    std::fs::write(path, bytes).unwrap();
}

#[test]
fn v1_directory_recovers_and_new_segments_are_v2() {
    let dir = scratch("upgrade");
    let old_ops = vec![
        WalOp::Insert(rec(1)),
        WalOp::Insert(rec(2)),
        WalOp::Delete(1),
    ];
    write_v1_segment(&segment_path(&dir, 1), &old_ops);

    // The upgraded store opens the old directory and replays the JSON ops.
    let (mut store, recovery) = Store::open(&dir, StoreOptions::default()).unwrap();
    assert_eq!(recovery.ops, old_ops);
    assert!(recovery.snapshot.is_none());

    // Appends continue into the *v1* segment (a segment never mixes
    // formats internally)…
    store.append(&WalOp::Insert(rec(3))).unwrap();
    let head = std::fs::read(segment_path(&dir, 1)).unwrap();
    assert_eq!(&head[..8], &WAL_MAGIC);
    assert_eq!(
        replay(&segment_path(&dir, 1)).unwrap().ops.len(),
        4,
        "v1 segment with a post-upgrade append still replays in full"
    );

    // …while rotation starts a fresh v2 segment.
    let rotated = store.rotate().unwrap();
    assert_eq!(rotated, 1);
    store.append(&WalOp::Observe(rec(4))).unwrap();
    store.append(&WalOp::Delete(2)).unwrap();
    store.sync().unwrap();
    let head = std::fs::read(segment_path(&dir, 2)).unwrap();
    assert_eq!(&head[..8], &WAL_MAGIC_V2);
    assert_eq!(
        replay(&segment_path(&dir, 2)).unwrap().ops,
        vec![WalOp::Observe(rec(4)), WalOp::Delete(2)]
    );
    drop(store);

    // A restart replays both formats, in order, as one log.
    let (_store, recovery) = Store::open(&dir, StoreOptions::default()).unwrap();
    assert_eq!(
        recovery.ops,
        vec![
            WalOp::Insert(rec(1)),
            WalOp::Insert(rec(2)),
            WalOp::Delete(1),
            WalOp::Insert(rec(3)),
            WalOp::Observe(rec(4)),
            WalOp::Delete(2),
        ]
    );
    assert_eq!(recovery.report.segments_replayed, 2);
    assert_eq!(recovery.report.truncated_bytes, 0);
}

#[test]
fn torn_v1_tail_still_truncates_to_valid_prefix() {
    let dir = scratch("torn-v1");
    let ops = vec![WalOp::Insert(rec(1)), WalOp::Insert(rec(2))];
    let seg = segment_path(&dir, 1);
    write_v1_segment(&seg, &ops);
    // Tear: append half a v1 header.
    let mut bytes = std::fs::read(&seg).unwrap();
    let good = bytes.len() as u64;
    bytes.extend_from_slice(&[44, 0, 0, 0, 9]);
    std::fs::write(&seg, &bytes).unwrap();

    let (store, recovery) = Store::open(&dir, StoreOptions::default()).unwrap();
    assert_eq!(recovery.ops, ops);
    assert_eq!(recovery.report.truncated_bytes, 5);
    assert_eq!(std::fs::metadata(&seg).unwrap().len(), good);
    assert_eq!(store.active_format(), WalFormat::V1Json);
}
