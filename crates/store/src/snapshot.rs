//! Atomic, versioned index snapshots.
//!
//! A snapshot is one JSON document holding the full [`ShardedState`] —
//! schema (hash coefficients included), classifier, and every shard's
//! populated blocking plan + record store — plus the server's streaming
//! side state. The header carries a format magic, a format version, and a
//! hash of the serialized schema, so a reload can reject files from a
//! different format or an incompatible index before touching any state.
//!
//! Writes go through [`crate::atomic::write_atomic`]: temp sibling +
//! fsync + rename, so a crash mid-write never corrupts an existing
//! snapshot, and stale temps from crashed writers are swept on the next
//! successful save.
//!
//! This module lived in `rl-server` before the durability subsystem
//! existed; `rl-server` still re-exports it under the old paths.

use crate::atomic::write_atomic;
use cbv_hb::sharded::ShardedState;
use cbv_hb::RecordSchema;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Format magic: identifies a file as an rl-server snapshot.
pub const SNAPSHOT_MAGIC: &str = "RLSNAP1";

/// Current snapshot format version. Version 3 serializes each blocking
/// structure's tables as a pluggable block store (in-memory buckets or
/// an mmap manifest + delta overlay); version 2 serialized raw
/// `tables` arrays (readable only by pre-blockstore builds), and version
/// 1 files predate pluggable backends. Neither older version can be
/// read.
pub const SNAPSHOT_VERSION: u32 = 3;

/// Errors raised while saving or loading snapshots (and checkpoints,
/// which embed them). Every variant's Display names the offending file,
/// so a recovery failure is diagnosable from the message alone.
#[derive(Debug)]
pub enum SnapshotError {
    /// Filesystem failure: which operation, on which path, and the
    /// underlying [`std::io::Error`].
    Io {
        /// The operation that failed (`"create"`, `"write"`, `"fsync"`,
        /// `"rename"`, `"read"`).
        op: &'static str,
        /// The file the operation was applied to.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// The file is not a snapshot, or is from an incompatible format
    /// version, or its schema hash does not match its schema. `path` is
    /// `None` only for in-memory validation (no file involved yet).
    Format {
        /// The file that failed validation, when one is involved.
        path: Option<PathBuf>,
        /// What was wrong.
        msg: String,
    },
    /// JSON (de)serialization failure. `path` is `None` when the
    /// document was still in memory (encode before any file was chosen).
    Serde {
        /// The file being read or written, when one is involved.
        path: Option<PathBuf>,
        /// The serializer's message.
        msg: String,
    },
}

impl SnapshotError {
    pub(crate) fn io(op: &'static str, path: &Path, source: std::io::Error) -> Self {
        SnapshotError::Io {
            op,
            path: path.to_path_buf(),
            source,
        }
    }

    fn fmt_path(path: &Option<PathBuf>) -> String {
        path.as_ref()
            .map(|p| format!(" in {}", p.display()))
            .unwrap_or_default()
    }
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io { op, path, source } => {
                write!(f, "snapshot I/O: {op} {}: {source}", path.display())
            }
            SnapshotError::Format { path, msg } => {
                write!(f, "snapshot format{}: {msg}", Self::fmt_path(path))
            }
            SnapshotError::Serde { path, msg } => {
                write!(f, "snapshot encoding{}: {msg}", Self::fmt_path(path))
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// The on-disk snapshot document.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Snapshot {
    /// Must equal [`SNAPSHOT_MAGIC`].
    pub magic: String,
    /// Must equal [`SNAPSHOT_VERSION`].
    pub version: u32,
    /// FNV-1a hash of the serialized schema, hex-encoded. Verified on
    /// load so a snapshot cannot silently pair records with the wrong
    /// embedding coefficients.
    pub schema_hash: String,
    /// The sharded pipeline state.
    pub state: ShardedState,
    /// Matched pairs accumulated by `Stream` requests (rebuilds the
    /// dedup union-find on restore).
    pub stream_pairs: Vec<(u64, u64)>,
    /// Records observed through `Stream`.
    pub streamed: u64,
}

/// Hex-encoded FNV-1a 64 over the schema's canonical JSON form. The serde
/// shim serializes maps with sorted keys, so the encoding is deterministic
/// for equal schemas.
pub fn schema_hash(schema: &RecordSchema) -> Result<String, SnapshotError> {
    let json = serde_json::to_string(schema).map_err(|e| SnapshotError::Serde {
        path: None,
        msg: e.to_string(),
    })?;
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in json.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    Ok(format!("{hash:016x}"))
}

impl Snapshot {
    /// Wraps a pipeline state into a versioned snapshot document.
    ///
    /// # Errors
    /// Returns [`SnapshotError::Serde`] if the schema cannot be hashed.
    pub fn new(
        state: ShardedState,
        stream_pairs: Vec<(u64, u64)>,
        streamed: u64,
    ) -> Result<Self, SnapshotError> {
        Ok(Self {
            magic: SNAPSHOT_MAGIC.to_string(),
            version: SNAPSHOT_VERSION,
            schema_hash: schema_hash(&state.schema)?,
            state,
            stream_pairs,
            streamed,
        })
    }

    /// Writes the snapshot atomically (see [`crate::atomic::write_atomic`]).
    ///
    /// # Errors
    /// Returns [`SnapshotError::Io`] (naming the path) or
    /// [`SnapshotError::Serde`] on encoding failure.
    pub fn save(&self, path: &Path) -> Result<(), SnapshotError> {
        let json = serde_json::to_string(self).map_err(|e| SnapshotError::Serde {
            path: Some(path.to_path_buf()),
            msg: e.to_string(),
        })?;
        write_atomic(path, json.as_bytes())
    }

    /// Loads and validates a snapshot: magic, version, and schema hash
    /// must all check out.
    ///
    /// # Errors
    /// Returns [`SnapshotError::Io`] when the file cannot be read,
    /// [`SnapshotError::Serde`] when it is not JSON for this document,
    /// and [`SnapshotError::Format`] when validation fails — all naming
    /// the offending path.
    pub fn load(path: &Path) -> Result<Self, SnapshotError> {
        let json = std::fs::read_to_string(path).map_err(|e| SnapshotError::io("read", path, e))?;
        let snapshot: Snapshot = serde_json::from_str(&json).map_err(|e| SnapshotError::Serde {
            path: Some(path.to_path_buf()),
            msg: e.to_string(),
        })?;
        snapshot.validate(Some(path))?;
        Ok(snapshot)
    }

    /// Header validation shared by [`Self::load`] and checkpoint loading:
    /// magic, version, and schema hash must all check out. `path` (when
    /// known) is carried into the error for diagnosability.
    pub fn validate(&self, path: Option<&Path>) -> Result<(), SnapshotError> {
        let fail = |msg: String| {
            Err(SnapshotError::Format {
                path: path.map(Path::to_path_buf),
                msg,
            })
        };
        if self.magic != SNAPSHOT_MAGIC {
            return fail(format!(
                "bad magic {:?} (expected {SNAPSHOT_MAGIC:?})",
                self.magic
            ));
        }
        if self.version != SNAPSHOT_VERSION {
            let hint = if self.version < SNAPSHOT_VERSION {
                "; the file predates the pluggable block store — re-index and snapshot again"
            } else {
                ""
            };
            return fail(format!(
                "unsupported version {} (this build reads {SNAPSHOT_VERSION}){hint}",
                self.version
            ));
        }
        let actual = schema_hash(&self.state.schema)?;
        if actual != self.schema_hash {
            return fail(format!(
                "schema hash mismatch: header {} vs content {actual}",
                self.schema_hash
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbv_hb::sharded::ShardedPipeline;
    use cbv_hb::{AttributeSpec, LinkageConfig, Record, RecordSchema, Rule};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use textdist::Alphabet;

    fn sample_state() -> ShardedState {
        let mut rng = StdRng::seed_from_u64(3);
        let schema = RecordSchema::build(
            Alphabet::linkage(),
            vec![
                AttributeSpec::new("FirstName", 2, 15, false, 5),
                AttributeSpec::new("LastName", 2, 15, false, 5),
            ],
            &mut rng,
        );
        let rule = Rule::and([Rule::pred(0, 4), Rule::pred(1, 4)]);
        let mut p =
            ShardedPipeline::new(schema, LinkageConfig::rule_aware(rule), 2, &mut rng).unwrap();
        p.index(&[
            Record::new(1, ["JOHN", "SMITH"]),
            Record::new(2, ["MARY", "JONES"]),
        ])
        .unwrap();
        let state = p.export_state().unwrap();
        p.shutdown();
        state
    }

    #[test]
    fn save_load_roundtrip() {
        let state = sample_state();
        let dir = std::env::temp_dir().join("rl-store-snap-test-roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.snap");
        let snap = Snapshot::new(state, vec![(1, 2)], 3).unwrap();
        snap.save(&path).unwrap();
        let loaded = Snapshot::load(&path).unwrap();
        assert_eq!(loaded.stream_pairs, vec![(1, 2)]);
        assert_eq!(loaded.streamed, 3);
        assert_eq!(loaded.state.indexed, 2);
        // The restored pipeline must answer probes like the original.
        let p = ShardedPipeline::from_state(loaded.state).unwrap();
        let (m, _) = p.link(&[Record::new(10, ["JON", "SMITH"])]).unwrap();
        assert_eq!(m, vec![(1, 10)]);
        p.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rejects_bad_magic_version_and_hash() {
        let state = sample_state();
        let dir = std::env::temp_dir().join("rl-store-snap-test-reject");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.snap");
        let good = Snapshot::new(state, vec![], 0).unwrap();

        let mut bad = good.clone();
        bad.magic = "NOTASNAP".into();
        bad.save(&path).unwrap();
        assert!(matches!(
            Snapshot::load(&path),
            Err(SnapshotError::Format { .. })
        ));

        let mut bad = good.clone();
        bad.version = SNAPSHOT_VERSION + 1;
        bad.save(&path).unwrap();
        assert!(matches!(
            Snapshot::load(&path),
            Err(SnapshotError::Format { .. })
        ));

        let mut bad = good.clone();
        bad.schema_hash = "0".repeat(16);
        bad.save(&path).unwrap();
        assert!(matches!(
            Snapshot::load(&path),
            Err(SnapshotError::Format { .. })
        ));

        good.save(&path).unwrap();
        assert!(Snapshot::load(&path).is_ok());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_and_format_errors_name_the_path() {
        // Regression (satellite): SnapshotError variants used to drop the
        // offending path, making recovery failures undiagnosable.
        let dir = std::env::temp_dir().join("rl-store-snap-test-path-ctx");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.snap");

        // Io: missing file.
        let missing = dir.join("nope.snap");
        let msg = Snapshot::load(&missing).unwrap_err().to_string();
        assert!(msg.contains("nope.snap"), "Io must name the path: {msg}");

        // Serde: not JSON at all.
        std::fs::write(&path, "not json").unwrap();
        let msg = Snapshot::load(&path).unwrap_err().to_string();
        assert!(
            msg.contains("index.snap"),
            "Serde must name the path: {msg}"
        );

        // Format: wrong magic.
        let mut bad = Snapshot::new(sample_state(), vec![], 0).unwrap();
        bad.magic = "NOTASNAP".into();
        bad.save(&path).unwrap();
        let msg = Snapshot::load(&path).unwrap_err().to_string();
        assert!(
            msg.contains("index.snap"),
            "Format must name the path: {msg}"
        );

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn version_1_snapshot_rejected_with_backend_hint() {
        // A pre-backend snapshot (version 1) must fail with an error that
        // tells the operator why the file is unreadable, not a generic
        // deserialization failure.
        let state = sample_state();
        let dir = std::env::temp_dir().join("rl-store-snap-test-v1");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.snap");
        let mut old = Snapshot::new(state, vec![], 0).unwrap();
        old.version = 1;
        old.save(&path).unwrap();
        match Snapshot::load(&path) {
            Err(SnapshotError::Format { msg, .. }) => {
                assert!(msg.contains("unsupported version 1"), "{msg}");
                assert!(msg.contains("predates the pluggable block store"), "{msg}");
            }
            other => panic!("expected format error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_is_atomic_no_temp_left_behind() {
        let state = sample_state();
        let dir = std::env::temp_dir().join("rl-store-snap-test-atomic");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.snap");
        Snapshot::new(state, vec![], 0)
            .unwrap()
            .save(&path)
            .unwrap();
        let entries: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(entries, vec!["index.snap"]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_saves_do_not_clobber_each_other() {
        // Two overlapping in-process saves to one path: both must land a
        // complete document (the in-flight set keeps the sweep off live
        // temps).
        let state = sample_state();
        let dir = std::env::temp_dir().join("rl-store-snap-test-concurrent");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.snap");
        let snap = Snapshot::new(state, vec![], 0).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| snap.save(&path).unwrap());
            }
        });
        assert!(Snapshot::load(&path).is_ok());
        let entries: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(entries, vec!["index.snap"], "no temps left behind");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn schema_hash_is_stable_and_discriminating() {
        let state_a = sample_state();
        let state_b = sample_state(); // same seed → identical schema
        let ha = schema_hash(&state_a.schema).unwrap();
        assert_eq!(ha, schema_hash(&state_b.schema).unwrap());
        let mut rng = StdRng::seed_from_u64(99);
        let other = RecordSchema::build(
            Alphabet::linkage(),
            vec![AttributeSpec::new("X", 2, 20, false, 5)],
            &mut rng,
        );
        assert_ne!(ha, schema_hash(&other).unwrap());
    }
}
