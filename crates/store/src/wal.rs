//! The write-ahead log: append-only, length-prefixed, CRC-checksummed.
//!
//! A WAL segment is an 8-byte magic header followed by frames. Two
//! segment formats coexist, discriminated by the magic:
//!
//! - **v1** (`RLWAL1`) — the original CRC'd-JSON format: each frame is
//!   `len: u32 LE | crc: u32 LE | JSON WalOp`. Read-compatible forever;
//!   a v1 segment reopened for appending keeps receiving v1 frames, so a
//!   segment is never mixed-format internally.
//! - **v2** (`RLWAL2`) — `rl-wire` frames (magic + version + tag + len +
//!   CRC-32 over header and payload) carrying a compact binary [`WalOp`]
//!   encoding. All newly created segments use v2; the same framing runs
//!   on the protocol v7 socket and the replication stream.
//!
//! A crash mid-append leaves a *torn* final frame (short header, short
//! payload, or CRC mismatch); [`replay`] detects it, reports the longest
//! valid prefix, and the store truncates the file there — acknowledged
//! mutations before the tear are never lost, and a torn tail never
//! prevents startup.
//!
//! ## Durability knob
//!
//! [`SyncPolicy`] controls fsync cadence. `Always` syncs every append
//! (every acknowledged write survives power loss). `GroupCommit(d)` syncs
//! at most every `d` (an OS crash can lose up to `d` of acknowledged
//! writes; a mere process crash loses nothing, since frames are written
//! to the file descriptor before the reply). `Never` leaves syncing to
//! the OS entirely.
//!
//! `GroupCommit` only checks the interval inside [`Wal::append`], so the
//! "at most `d` lost" bound needs a periodic [`Wal::sync`] from the
//! caller when traffic stops — otherwise the unsynced tail of the last
//! burst stays unsynced until the next append. rl-server runs a
//! background flusher on the group-commit cadence for exactly this.

use crate::error::StoreError;
use cbv_hb::Record;
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Magic bytes opening a v1 (CRC'd-JSON) WAL segment.
pub const WAL_MAGIC: [u8; 8] = *b"RLWAL1\0\0";

/// Magic bytes opening a v2 (binary `rl-wire`-framed) WAL segment.
pub const WAL_MAGIC_V2: [u8; 8] = *b"RLWAL2\0\0";

/// `rl-wire` frame tag for a binary-encoded [`WalOp`] in a v2 segment.
/// Carries no epoch: frames written while the store's epoch is 0 use this
/// tag, keeping pre-epoch segments byte-identical.
pub const WAL_FRAME_TAG: u8 = 1;

/// `rl-wire` frame tag for an epoch-stamped op: payload is
/// `epoch u64 LE | binary WalOp`. Written for every op once the store's
/// primary epoch is non-zero, so replay and the replication sender can
/// fence frames from a demoted primary.
pub const WAL_FRAME_EPOCH_TAG: u8 = 2;

/// `rl-wire` frame tag persisting an epoch bump: payload is `epoch u64 LE`
/// alone. Written as the first frame of the fresh segment a promote
/// rotates to; it carries no op and consumes no op sequence, it only makes
/// the bump durable before any mutation is accepted at the new epoch.
pub const WAL_EPOCH_MARK_TAG: u8 = 3;

/// Frames larger than this are treated as corruption, not allocation
/// requests (a torn length prefix can decode to anything).
const MAX_FRAME_LEN: u32 = 256 * 1024 * 1024;

/// On-disk frame format of one segment, decided by its magic header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalFormat {
    /// `len | crc | JSON` frames under the `RLWAL1` magic.
    V1Json,
    /// `rl-wire` frames with binary ops under the `RLWAL2` magic.
    V2Binary,
}

impl WalFormat {
    fn from_magic(magic: &[u8]) -> Option<WalFormat> {
        if magic == WAL_MAGIC {
            Some(WalFormat::V1Json)
        } else if magic == WAL_MAGIC_V2 {
            Some(WalFormat::V2Binary)
        } else {
            None
        }
    }
}

/// One logged index mutation. Replayed in order, these reconstruct the
/// exact post-crash index state on top of the last checkpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WalOp {
    /// Index (or upsert) one record into data set A.
    Insert(Record),
    /// Streaming observe: match against history, then index. Replay
    /// re-runs the observe, which deterministically reproduces the
    /// stream-match pairs feeding the dedup forest.
    Observe(Record),
    /// Remove the record with this id (tombstone delete).
    Delete(u64),
    /// Reshard cutover commit: the shard-map change (split of `source`
    /// into the new shard `target`, or merge of `source` onto `target`)
    /// took effect at this position in the op stream. Only the *commit* is
    /// logged — the copy phase is not, so a crash mid-migration replays to
    /// a WAL with no `Reshard` op and the migration deterministically
    /// never happened. Replay applies it as a synchronous reshard, which
    /// recomputes the identical deterministic plan.
    Reshard {
        /// `false` = split, `true` = merge.
        merge: bool,
        /// Source shard index.
        source: u64,
        /// Target shard index (informational for splits: replay recomputes
        /// it as the map's next shard id).
        target: u64,
    },
}

/// When appended frames are fsync'd.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// fsync every append before acknowledging.
    Always,
    /// Group commit: fsync at most once per interval. Bounds data loss
    /// under power failure / OS crash to one interval of acknowledged
    /// writes; a process crash alone loses nothing.
    GroupCommit(Duration),
    /// Never fsync explicitly; the OS flushes on its own schedule.
    Never,
}

// IEEE CRC-32 (the zlib/Ethernet polynomial). The implementation moved
// to `rl-wire` so socket frames, replication frames, and WAL frames
// share one checksum; re-exported here for existing callers.
pub use rl_wire::crc32;

// Binary op tags inside a v2 frame payload.
const OP_INSERT: u8 = 1;
const OP_OBSERVE: u8 = 2;
const OP_DELETE: u8 = 3;
const OP_RESHARD: u8 = 4;

impl WalOp {
    /// Appends the compact binary encoding to `out`:
    /// `op tag (1) | id u64 LE | nfields u16 LE | (len u32 LE | bytes)*`
    /// for record ops, `op tag | id u64 LE` for deletes.
    pub fn encode_bin(&self, out: &mut Vec<u8>) {
        match self {
            WalOp::Insert(rec) => encode_record(OP_INSERT, rec, out),
            WalOp::Observe(rec) => encode_record(OP_OBSERVE, rec, out),
            WalOp::Delete(id) => {
                out.push(OP_DELETE);
                out.extend_from_slice(&id.to_le_bytes());
            }
            WalOp::Reshard {
                merge,
                source,
                target,
            } => {
                out.push(OP_RESHARD);
                out.push(u8::from(*merge));
                out.extend_from_slice(&source.to_le_bytes());
                out.extend_from_slice(&target.to_le_bytes());
            }
        }
    }

    /// Decodes one binary op, requiring the buffer to contain exactly it.
    ///
    /// # Errors
    /// A description of the malformation (callers map it onto their own
    /// corruption error).
    pub fn decode_bin(bytes: &[u8]) -> Result<WalOp, String> {
        let mut cur = Cursor(bytes);
        let tag = cur.u8()?;
        let op = match tag {
            OP_DELETE => WalOp::Delete(cur.u64()?),
            OP_RESHARD => {
                let flag = cur.u8()?;
                if flag > 1 {
                    return Err(format!("bad reshard kind flag {flag}"));
                }
                WalOp::Reshard {
                    merge: flag == 1,
                    source: cur.u64()?,
                    target: cur.u64()?,
                }
            }
            OP_INSERT | OP_OBSERVE => {
                let id = cur.u64()?;
                let nfields = cur.u16()? as usize;
                let mut fields = Vec::with_capacity(nfields.min(1024));
                for _ in 0..nfields {
                    let len = cur.u32()? as usize;
                    let raw = cur.take(len)?;
                    let s =
                        std::str::from_utf8(raw).map_err(|e| format!("field not utf-8: {e}"))?;
                    fields.push(s.to_string());
                }
                let rec = Record { id, fields };
                if tag == OP_INSERT {
                    WalOp::Insert(rec)
                } else {
                    WalOp::Observe(rec)
                }
            }
            other => return Err(format!("unknown op tag {other}")),
        };
        if !cur.0.is_empty() {
            return Err(format!("{} trailing bytes after op", cur.0.len()));
        }
        Ok(op)
    }
}

fn encode_record(tag: u8, rec: &Record, out: &mut Vec<u8>) {
    out.push(tag);
    out.extend_from_slice(&rec.id.to_le_bytes());
    out.extend_from_slice(&(rec.fields.len() as u16).to_le_bytes());
    for field in &rec.fields {
        out.extend_from_slice(&(field.len() as u32).to_le_bytes());
        out.extend_from_slice(field.as_bytes());
    }
}

/// A bounds-checked little-endian reader over a byte slice.
struct Cursor<'a>(&'a [u8]);

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.0.len() < n {
            return Err(format!(
                "op truncated: need {n} bytes, have {}",
                self.0.len()
            ));
        }
        let (head, rest) = self.0.split_at(n);
        self.0 = rest;
        Ok(head)
    }
    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

/// An open WAL segment being appended to.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    file: File,
    /// Bytes in the segment (header included).
    len: u64,
    appends: u64,
    policy: SyncPolicy,
    last_sync: Instant,
    /// Appends written since the last fsync.
    unsynced: u64,
    /// Frame format, fixed at create/open time by the segment magic.
    format: WalFormat,
    /// Primary epoch stamped into appended frames. 0 writes legacy
    /// [`WAL_FRAME_TAG`] frames; non-zero writes [`WAL_FRAME_EPOCH_TAG`]
    /// frames. The store keeps this in sync with its own epoch.
    epoch: u64,
    /// Set when a failed append left torn bytes on disk that could not be
    /// rolled back. A poisoned segment rejects every further append:
    /// anything written after the tear would be silently dropped by
    /// replay, so accepting (and acknowledging) more writes would violate
    /// acknowledge-after-durable. Reopening the segment (restart →
    /// [`replay`] → [`Wal::open_append`]) clears the torn tail.
    poisoned: bool,
}

impl Wal {
    /// Creates a fresh segment at `path` (truncating anything there) and
    /// syncs the header. New segments always use the v2 binary format.
    ///
    /// # Errors
    /// Returns [`StoreError::Io`] naming the path on failure.
    pub fn create(path: &Path, policy: SyncPolicy) -> Result<Self, StoreError> {
        let mut file = File::create(path).map_err(|e| StoreError::io("create", path, e))?;
        file.write_all(&WAL_MAGIC_V2)
            .map_err(|e| StoreError::io("write", path, e))?;
        file.sync_all()
            .map_err(|e| StoreError::io("fsync", path, e))?;
        // Persist the directory entry too: without this, a power loss can
        // drop the whole segment (fsync'd frames included) even though
        // every append in it was acknowledged.
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            crate::atomic::fsync_dir(dir).map_err(|e| StoreError::io("fsync-dir", dir, e))?;
        }
        Ok(Self {
            path: path.to_path_buf(),
            file,
            len: WAL_MAGIC.len() as u64,
            appends: 0,
            policy,
            last_sync: Instant::now(),
            unsynced: 0,
            poisoned: false,
            format: WalFormat::V2Binary,
            epoch: 0,
        })
    }

    /// Opens an existing segment for appending after recovery decided its
    /// valid length: the file is truncated to `valid_len` (dropping any
    /// torn tail) and positioned at the end. A `valid_len` shorter than
    /// the header re-initializes the segment. The segment keeps the frame
    /// format its magic declares — a pre-upgrade v1 segment continues to
    /// receive v1 frames, so no file is ever mixed-format internally.
    ///
    /// # Errors
    /// Returns [`StoreError::Io`] naming the path on failure and
    /// [`StoreError::NotAWal`] on a foreign header.
    pub fn open_append(
        path: &Path,
        policy: SyncPolicy,
        valid_len: u64,
    ) -> Result<Self, StoreError> {
        if valid_len < WAL_MAGIC.len() as u64 {
            // A crash between create and the header write left a stub;
            // start the segment over.
            return Self::create(path, policy);
        }
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| StoreError::io("open", path, e))?;
        let mut magic = [0u8; WAL_MAGIC.len()];
        file.read_exact(&mut magic)
            .map_err(|e| StoreError::io("read", path, e))?;
        let format = WalFormat::from_magic(&magic).ok_or_else(|| StoreError::NotAWal {
            path: path.to_path_buf(),
            msg: format!("bad magic {magic:?}"),
        })?;
        file.set_len(valid_len)
            .map_err(|e| StoreError::io("truncate", path, e))?;
        file.seek(SeekFrom::End(0))
            .map_err(|e| StoreError::io("seek", path, e))?;
        Ok(Self {
            path: path.to_path_buf(),
            file,
            len: valid_len,
            appends: 0,
            policy,
            last_sync: Instant::now(),
            unsynced: 0,
            poisoned: false,
            format,
            epoch: 0,
        })
    }

    /// The segment's frame format (decided by its magic header).
    pub fn format(&self) -> WalFormat {
        self.format
    }

    /// Sets the primary epoch stamped into subsequent appends. Only
    /// meaningful on v2 segments; v1 frames have no epoch field and are
    /// always read back as epoch 0 (the store rotates to a v2 segment
    /// before ever raising the epoch, so this never loses a stamp).
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// The epoch currently stamped into appends.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Appends an epoch-bump marker frame (no op, no op-sequence): the
    /// durable record that this segment's writer holds `epoch`. Also
    /// raises the stamp for subsequent appends.
    ///
    /// # Errors
    /// Returns [`StoreError::Io`] on write failure or when the segment is
    /// v1 (markers only exist in the v2 framing; the store rotates before
    /// bumping, so a v1 target is a logic error surfaced loudly).
    pub fn append_marker(&mut self, epoch: u64) -> Result<(), StoreError> {
        if self.format != WalFormat::V2Binary {
            return Err(StoreError::io(
                "append",
                &self.path,
                std::io::Error::other("epoch markers require a v2 segment"),
            ));
        }
        if self.poisoned {
            return Err(StoreError::io(
                "append",
                &self.path,
                std::io::Error::other("segment poisoned by an earlier failed append"),
            ));
        }
        let mut buf = Vec::new();
        rl_wire::encode_frame_into(WAL_EPOCH_MARK_TAG, &epoch.to_le_bytes(), &mut buf);
        if let Err(e) = self.file.write_all(&buf) {
            if self.rollback_to_len().is_err() {
                self.poisoned = true;
            }
            return Err(StoreError::io("append", &self.path, e));
        }
        self.len += buf.len() as u64;
        self.unsynced += 1;
        self.epoch = epoch;
        Ok(())
    }

    /// Appends one framed op and applies the sync policy. Returns the
    /// segment length after the append.
    ///
    /// # Errors
    /// Returns [`StoreError::Io`] naming the path on failure; the caller
    /// must not acknowledge the mutation in that case.
    pub fn append(&mut self, op: &WalOp) -> Result<u64, StoreError> {
        self.append_batch(std::slice::from_ref(op))
    }

    /// Appends several ops as **one write**: either every frame lands in
    /// the file or (after rollback) none does, so a mid-batch failure can
    /// never leave a durable prefix of a rejected batch. Returns the
    /// segment length after the append.
    ///
    /// On a failed write (e.g. `ENOSPC` mid-frame) the file is truncated
    /// back to the last good frame boundary; if even that fails, the
    /// segment is *poisoned* — every further append is rejected until the
    /// WAL is reopened — because frames written after torn bytes are
    /// unreachable to [`replay`] and would be silently lost on restart.
    ///
    /// # Errors
    /// Returns [`StoreError::Io`] naming the path on failure; the caller
    /// must not acknowledge the mutations in that case.
    pub fn append_batch(&mut self, ops: &[WalOp]) -> Result<u64, StoreError> {
        if self.poisoned {
            return Err(StoreError::io(
                "append",
                &self.path,
                std::io::Error::other(
                    "segment poisoned by an earlier failed append (torn bytes could not \
                     be rolled back); reopen the WAL to recover the valid prefix",
                ),
            ));
        }
        if ops.is_empty() {
            return Ok(self.len);
        }
        let mut buf = Vec::new();
        let mut payload = Vec::new();
        for op in ops {
            payload.clear();
            match self.format {
                WalFormat::V2Binary => {
                    if self.epoch == 0 {
                        op.encode_bin(&mut payload);
                        rl_wire::encode_frame_into(WAL_FRAME_TAG, &payload, &mut buf);
                    } else {
                        payload.extend_from_slice(&self.epoch.to_le_bytes());
                        op.encode_bin(&mut payload);
                        rl_wire::encode_frame_into(WAL_FRAME_EPOCH_TAG, &payload, &mut buf);
                    }
                }
                WalFormat::V1Json => {
                    payload = serde_json::to_string(op)
                        .map_err(|e| {
                            StoreError::io(
                                "encode",
                                &self.path,
                                std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()),
                            )
                        })?
                        .into_bytes();
                    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                    buf.extend_from_slice(&crc32(&payload).to_le_bytes());
                    buf.extend_from_slice(&payload);
                }
            }
        }
        if let Err(e) = self.file.write_all(&buf) {
            if self.rollback_to_len().is_err() {
                self.poisoned = true;
            }
            return Err(StoreError::io("append", &self.path, e));
        }
        self.len += buf.len() as u64;
        self.appends += ops.len() as u64;
        self.unsynced += ops.len() as u64;
        match self.policy {
            SyncPolicy::Always => self.sync()?,
            SyncPolicy::GroupCommit(interval) => {
                if self.last_sync.elapsed() >= interval {
                    self.sync()?;
                }
            }
            SyncPolicy::Never => {}
        }
        Ok(self.len)
    }

    /// Discards whatever a failed append left past `self.len` (a torn
    /// partial frame) and repositions the cursor at the end, so the next
    /// append writes at a frame boundary replay can reach.
    fn rollback_to_len(&mut self) -> Result<(), StoreError> {
        self.file
            .set_len(self.len)
            .map_err(|e| StoreError::io("truncate", &self.path, e))?;
        self.file
            .seek(SeekFrom::Start(self.len))
            .map_err(|e| StoreError::io("seek", &self.path, e))?;
        Ok(())
    }

    /// Forces an fsync now (checkpoint rotation and shutdown call this
    /// regardless of policy).
    ///
    /// # Errors
    /// Returns [`StoreError::Io`] naming the path on failure.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        if self.unsynced > 0 {
            self.file
                .sync_data()
                .map_err(|e| StoreError::io("fsync", &self.path, e))?;
        }
        self.last_sync = Instant::now();
        self.unsynced = 0;
        Ok(())
    }

    /// Bytes in the segment, header included.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the segment holds no frames (header only).
    pub fn is_empty(&self) -> bool {
        self.len <= WAL_MAGIC.len() as u64
    }

    /// Frames appended through this handle (not counting pre-existing
    /// ones).
    pub fn appends(&self) -> u64 {
        self.appends
    }

    /// The segment's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// One frame decoded by a [`WalReader`].
#[derive(Debug)]
pub struct ReadFrame {
    /// The decoded op.
    pub op: WalOp,
    /// Framed size on disk (header + payload), for byte-lag accounting.
    pub frame_len: u64,
    /// Primary epoch the frame was written under (0 for legacy frames and
    /// every v1 frame).
    pub epoch: u64,
}

/// A cursor over one WAL segment for *tailing*: unlike [`replay`], which
/// reads a whole file at once, a `WalReader` decodes frames incrementally
/// from its current position and treats an incomplete final frame as
/// "nothing yet" rather than end-of-log. Replication streams the durable
/// log to followers with this — a frame that is half-written when the
/// reader reaches it becomes readable on the next poll, because appends
/// land as a single `write_all` per batch.
#[derive(Debug)]
pub struct WalReader {
    path: PathBuf,
    file: File,
    pos: u64,
    format: WalFormat,
    /// Highest epoch seen so far (markers included). A later frame with a
    /// lower epoch is stale-primary residue recovery should have
    /// truncated; the reader reports it as corruption rather than ship it.
    cur_epoch: u64,
}

impl WalReader {
    /// Opens a segment for reading and validates its magic header.
    ///
    /// # Errors
    /// Returns [`StoreError::Io`] when the file cannot be opened/read and
    /// [`StoreError::NotAWal`] on a foreign header. A file shorter than
    /// the magic (creation in flight) is reported as `Io` with
    /// `UnexpectedEof` — callers retry.
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        let mut file = File::open(path).map_err(|e| StoreError::io("open", path, e))?;
        let mut magic = [0u8; WAL_MAGIC.len()];
        file.read_exact(&mut magic)
            .map_err(|e| StoreError::io("read", path, e))?;
        let format = WalFormat::from_magic(&magic).ok_or_else(|| StoreError::NotAWal {
            path: path.to_path_buf(),
            msg: format!("bad magic {magic:?}"),
        })?;
        Ok(Self {
            path: path.to_path_buf(),
            file,
            pos: WAL_MAGIC.len() as u64,
            format,
            cur_epoch: 0,
        })
    }

    /// The segment's frame format (decided by its magic header).
    pub fn format(&self) -> WalFormat {
        self.format
    }

    /// Highest epoch observed so far (epoch-bump markers included).
    pub fn epoch(&self) -> u64 {
        self.cur_epoch
    }

    /// Decodes the next complete frame at the cursor. `Ok(None)` means no
    /// complete, CRC-valid frame is available *yet* — either clean EOF on
    /// a rotated segment or an append still in flight on the active one;
    /// the caller polls again or moves to the next segment. The cursor
    /// only advances past frames that decoded successfully.
    ///
    /// # Errors
    /// Returns [`StoreError::Io`] on read failure or on a frame that can
    /// never become valid (oversized length prefix, CRC-valid but
    /// undecodable payload) — genuine corruption the tailer must not spin
    /// on.
    pub fn next_frame(&mut self) -> Result<Option<ReadFrame>, StoreError> {
        self.file
            .seek(SeekFrom::Start(self.pos))
            .map_err(|e| StoreError::io("seek", &self.path, e))?;
        match self.format {
            WalFormat::V1Json => self.next_frame_v1(),
            WalFormat::V2Binary => self.next_frame_v2(),
        }
    }

    fn next_frame_v1(&mut self) -> Result<Option<ReadFrame>, StoreError> {
        let mut header = [0u8; 8];
        match read_full(&mut self.file, &mut header) {
            Ok(true) => {}
            Ok(false) => return Ok(None),
            Err(e) => return Err(StoreError::io("read", &self.path, e)),
        }
        let len = u32::from_le_bytes(header[0..4].try_into().unwrap());
        let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
        if len > MAX_FRAME_LEN {
            return Err(StoreError::io(
                "read",
                &self.path,
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("frame length {len} exceeds maximum (corrupt segment)"),
                ),
            ));
        }
        let mut payload = vec![0u8; len as usize];
        match read_full(&mut self.file, &mut payload) {
            Ok(true) => {}
            Ok(false) => return Ok(None),
            Err(e) => return Err(StoreError::io("read", &self.path, e)),
        }
        if crc32(&payload) != crc {
            // Could be an append in flight (header landed, payload bytes
            // still buffered) — report "nothing yet" and let the caller
            // poll; a genuinely corrupt frame keeps failing and the
            // segment-advance logic upstream turns that into a resync.
            return Ok(None);
        }
        let op = serde_json::from_slice::<WalOp>(&payload).map_err(|e| {
            StoreError::io(
                "decode",
                &self.path,
                std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()),
            )
        })?;
        let frame_len = 8 + u64::from(len);
        self.pos += frame_len;
        Ok(Some(ReadFrame {
            op,
            frame_len,
            epoch: 0,
        }))
    }

    fn next_frame_v2(&mut self) -> Result<Option<ReadFrame>, StoreError> {
        // Loops only to skip epoch-bump markers (at most a handful per
        // segment); every op frame returns.
        loop {
            let mut header = [0u8; rl_wire::HEADER_LEN];
            match read_full(&mut self.file, &mut header) {
                Ok(true) => {}
                Ok(false) => return Ok(None),
                Err(e) => return Err(StoreError::io("read", &self.path, e)),
            }
            // Magic/version damage at a frame boundary can never heal into a
            // valid frame — appends land header-first — so it is corruption,
            // not an append in flight.
            if header[0..2] != rl_wire::MAGIC || header[2] != rl_wire::WIRE_VERSION {
                return Err(self.corrupt("bad frame header (corrupt segment)"));
            }
            let len = u32::from_le_bytes(header[4..8].try_into().unwrap());
            if len > MAX_FRAME_LEN {
                return Err(self.corrupt(&format!(
                    "frame length {len} exceeds maximum (corrupt segment)"
                )));
            }
            let mut payload = vec![0u8; len as usize];
            match read_full(&mut self.file, &mut payload) {
                Ok(true) => {}
                Ok(false) => return Ok(None),
                Err(e) => return Err(StoreError::io("read", &self.path, e)),
            }
            let tag = match rl_wire::verify_frame(&header, &payload) {
                Ok(tag) => tag,
                // A CRC mismatch with all bytes present can still be an
                // append whose payload write is racing us; report "nothing
                // yet", as the v1 path does.
                Err(rl_wire::WireError::Corrupt { .. }) => return Ok(None),
                Err(e) => return Err(self.corrupt(&e.to_string())),
            };
            let frame_len = rl_wire::HEADER_LEN as u64 + u64::from(len);
            let (epoch, op_bytes) = match tag {
                WAL_FRAME_TAG => (0u64, payload.as_slice()),
                WAL_FRAME_EPOCH_TAG => {
                    if payload.len() < 8 {
                        return Err(self.corrupt("epoch frame shorter than its epoch field"));
                    }
                    let epoch = u64::from_le_bytes(payload[..8].try_into().unwrap());
                    (epoch, &payload[8..])
                }
                WAL_EPOCH_MARK_TAG => {
                    if payload.len() != 8 {
                        return Err(self.corrupt("malformed epoch marker"));
                    }
                    let epoch = u64::from_le_bytes(payload[..8].try_into().unwrap());
                    if epoch < self.cur_epoch {
                        return Err(self.corrupt(&format!(
                            "stale-epoch marker ({epoch} after {})",
                            self.cur_epoch
                        )));
                    }
                    self.cur_epoch = epoch;
                    self.pos += frame_len;
                    continue;
                }
                other => {
                    return Err(
                        self.corrupt(&format!("unexpected frame tag {other} in wal segment"))
                    )
                }
            };
            if epoch < self.cur_epoch {
                // Recovery truncates stale-primary residue; finding it here
                // means the file is inconsistent — never ship it.
                return Err(self.corrupt(&format!(
                    "stale-epoch frame ({epoch} after {})",
                    self.cur_epoch
                )));
            }
            let op = WalOp::decode_bin(op_bytes)
                .map_err(|e| self.corrupt(&format!("undecodable op: {e}")))?;
            self.cur_epoch = epoch;
            self.pos += frame_len;
            return Ok(Some(ReadFrame {
                op,
                frame_len,
                epoch,
            }));
        }
    }

    fn corrupt(&self, msg: &str) -> StoreError {
        StoreError::io(
            "read",
            &self.path,
            std::io::Error::new(std::io::ErrorKind::InvalidData, msg),
        )
    }

    /// Byte offset of the cursor (start of the next undecoded frame).
    pub fn pos(&self) -> u64 {
        self.pos
    }

    /// Current on-disk length of the segment (an active segment grows
    /// between calls).
    ///
    /// # Errors
    /// Returns [`StoreError::Io`] naming the path on failure.
    pub fn file_len(&self) -> Result<u64, StoreError> {
        self.file
            .metadata()
            .map(|m| m.len())
            .map_err(|e| StoreError::io("stat", &self.path, e))
    }

    /// The segment's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Reads exactly `buf.len()` bytes unless EOF intervenes: `Ok(true)` on a
/// full read, `Ok(false)` on EOF before the buffer filled (partial frame).
fn read_full(file: &mut File, buf: &mut [u8]) -> std::io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match file.read(&mut buf[filled..]) {
            Ok(0) => return Ok(false),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// The outcome of scanning one segment.
#[derive(Debug)]
pub struct ReplaySegment {
    /// The decoded ops, in append order — the longest valid prefix.
    pub ops: Vec<WalOp>,
    /// Byte length of that prefix (where the store truncates to).
    pub valid_len: u64,
    /// Bytes past the valid prefix (0 for a clean segment).
    pub torn_bytes: u64,
    /// Highest primary epoch seen in the valid prefix (markers included),
    /// at least the `min_epoch` the scan started from.
    pub max_epoch: u64,
}

/// Scans a segment, decoding frames until the end of file or the first
/// torn/corrupt frame. Never fails on a torn tail — that is the expected
/// crash signature — only on an unreadable file or a foreign header.
/// Equivalent to [`replay_from_epoch`] with a floor of 0.
///
/// # Errors
/// Returns [`StoreError::Io`] when the file cannot be read and
/// [`StoreError::NotAWal`] when it starts with something other than the
/// WAL magic (8 or more bytes of it).
pub fn replay(path: &Path) -> Result<ReplaySegment, StoreError> {
    replay_from_epoch(path, 0)
}

/// [`replay`] with an epoch floor: a frame stamped with an epoch lower
/// than `min_epoch` — or lower than any epoch seen earlier in the segment
/// — is **stale-primary residue** and ends the valid prefix exactly like a
/// torn frame. This is the fencing half of recovery: ops a demoted primary
/// appended after its successor took over are truncated, never replayed.
/// Epochs only ever rise within the valid prefix.
///
/// # Errors
/// Same as [`replay`].
pub fn replay_from_epoch(path: &Path, min_epoch: u64) -> Result<ReplaySegment, StoreError> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| StoreError::io("read", path, e))?;
    if bytes.len() < WAL_MAGIC.len() {
        // A stub left by a crash between create and header write.
        return Ok(ReplaySegment {
            ops: Vec::new(),
            valid_len: 0,
            torn_bytes: bytes.len() as u64,
            max_epoch: min_epoch,
        });
    }
    let Some(format) = WalFormat::from_magic(&bytes[..WAL_MAGIC.len()]) else {
        return Err(StoreError::NotAWal {
            path: path.to_path_buf(),
            msg: format!("bad magic {:?}", &bytes[..WAL_MAGIC.len()]),
        });
    };
    let mut ops = Vec::new();
    let mut pos = WAL_MAGIC.len();
    let mut epoch = min_epoch;
    match format {
        // Stops at clean EOF or the first torn header. v1 frames carry no
        // epoch (they are all epoch 0), so a non-zero floor makes the
        // whole segment stale.
        WalFormat::V1Json => {
            while epoch == 0 && pos < bytes.len() {
                let Some(header) = bytes.get(pos..pos + 8) else {
                    break;
                };
                let len = u32::from_le_bytes(header[0..4].try_into().unwrap());
                let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
                if len > MAX_FRAME_LEN {
                    break; // torn length prefix
                }
                let Some(payload) = bytes.get(pos + 8..pos + 8 + len as usize) else {
                    break; // torn payload
                };
                if crc32(payload) != crc {
                    break; // corrupt frame
                }
                let Ok(op) = serde_json::from_slice::<WalOp>(payload) else {
                    break; // CRC-valid but undecodable: treat as end of log
                };
                ops.push(op);
                pos += 8 + len as usize;
            }
        }
        WalFormat::V2Binary => {
            while pos < bytes.len() {
                // Any parse failure — torn header, short payload, bad
                // CRC, wrong tag, undecodable op, stale epoch — ends the
                // valid prefix; same longest-valid-prefix semantics as v1.
                let Ok(Some((tag, payload, consumed))) =
                    rl_wire::peek_frame(&bytes[pos..], MAX_FRAME_LEN)
                else {
                    break;
                };
                match tag {
                    WAL_FRAME_TAG => {
                        if epoch > 0 {
                            break; // un-stamped frame after a bump: stale
                        }
                        let Ok(op) = WalOp::decode_bin(payload) else {
                            break;
                        };
                        ops.push(op);
                    }
                    WAL_FRAME_EPOCH_TAG => {
                        let Some(fe) = payload
                            .get(..8)
                            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
                        else {
                            break;
                        };
                        if fe < epoch {
                            break; // stale-epoch frame
                        }
                        let Ok(op) = WalOp::decode_bin(&payload[8..]) else {
                            break;
                        };
                        epoch = fe;
                        ops.push(op);
                    }
                    WAL_EPOCH_MARK_TAG => {
                        let Some(fe) = (payload.len() == 8)
                            .then(|| u64::from_le_bytes(payload.try_into().unwrap()))
                        else {
                            break;
                        };
                        if fe < epoch {
                            break; // stale marker
                        }
                        epoch = fe;
                    }
                    _ => break,
                }
                pos += consumed;
            }
        }
    }
    Ok(ReplaySegment {
        valid_len: pos as u64,
        torn_bytes: (bytes.len() - pos) as u64,
        ops,
        max_epoch: epoch,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64) -> Record {
        Record::new(id, ["JOHN", "SMITH"])
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("rl-store-wal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC-32 test vectors.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"hello"), 0x3610_A686);
    }

    #[test]
    fn append_replay_roundtrip() {
        let path = tmp("roundtrip.log");
        let ops = vec![
            WalOp::Insert(rec(1)),
            WalOp::Observe(rec(2)),
            WalOp::Delete(1),
        ];
        let mut wal = Wal::create(&path, SyncPolicy::Always).unwrap();
        for op in &ops {
            wal.append(op).unwrap();
        }
        assert_eq!(wal.appends(), 3);
        let seg = replay(&path).unwrap();
        assert_eq!(seg.ops, ops);
        assert_eq!(seg.valid_len, wal.len());
        assert_eq!(seg.torn_bytes, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_yields_longest_valid_prefix() {
        let path = tmp("torn.log");
        let mut wal = Wal::create(&path, SyncPolicy::Never).unwrap();
        let mut lens = vec![wal.len()];
        for i in 0..5 {
            lens.push(wal.append(&WalOp::Insert(rec(i))).unwrap());
        }
        drop(wal);
        let full = std::fs::read(&path).unwrap();
        // Truncate mid-way through the 4th frame.
        let cut = (lens[3] + 3) as usize;
        std::fs::write(&path, &full[..cut]).unwrap();
        let seg = replay(&path).unwrap();
        assert_eq!(seg.ops.len(), 3, "3 complete frames before the tear");
        assert_eq!(seg.valid_len, lens[3]);
        assert_eq!(seg.torn_bytes, cut as u64 - lens[3]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_crc_stops_replay() {
        let path = tmp("crc.log");
        let mut wal = Wal::create(&path, SyncPolicy::Never).unwrap();
        let mut lens = vec![wal.len()];
        for i in 0..3 {
            lens.push(wal.append(&WalOp::Insert(rec(i))).unwrap());
        }
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one payload byte inside the 2nd frame.
        let target = lens[1] as usize + 12;
        bytes[target] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let seg = replay(&path).unwrap();
        assert_eq!(seg.ops, vec![WalOp::Insert(rec(0))]);
        assert_eq!(seg.valid_len, lens[1]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_append_truncates_and_continues() {
        let path = tmp("reopen.log");
        let mut wal = Wal::create(&path, SyncPolicy::Never).unwrap();
        for i in 0..3 {
            wal.append(&WalOp::Insert(rec(i))).unwrap();
        }
        let good = wal.len();
        drop(wal);
        // Simulate a torn append.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[5, 0, 0, 0, 9, 9]); // half a header + junk
        std::fs::write(&path, &bytes).unwrap();

        let seg = replay(&path).unwrap();
        assert_eq!(seg.valid_len, good);
        let mut wal = Wal::open_append(&path, SyncPolicy::Always, seg.valid_len).unwrap();
        wal.append(&WalOp::Delete(1)).unwrap();
        drop(wal);
        let seg = replay(&path).unwrap();
        assert_eq!(seg.ops.len(), 4);
        assert_eq!(seg.ops[3], WalOp::Delete(1));
        assert_eq!(seg.torn_bytes, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn header_stub_restarts_cleanly() {
        let path = tmp("stub.log");
        std::fs::write(&path, b"RLW").unwrap(); // crash mid-header
        let seg = replay(&path).unwrap();
        assert!(seg.ops.is_empty());
        assert_eq!(seg.valid_len, 0);
        let mut wal = Wal::open_append(&path, SyncPolicy::Always, seg.valid_len).unwrap();
        wal.append(&WalOp::Insert(rec(7))).unwrap();
        drop(wal);
        assert_eq!(replay(&path).unwrap().ops, vec![WalOp::Insert(rec(7))]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn foreign_file_is_rejected() {
        let path = tmp("foreign.log");
        std::fs::write(&path, b"definitely not a wal").unwrap();
        assert!(matches!(replay(&path), Err(StoreError::NotAWal { .. })));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_batch_is_one_frame_per_op() {
        let path = tmp("batch.log");
        let ops = vec![
            WalOp::Insert(rec(1)),
            WalOp::Delete(1),
            WalOp::Observe(rec(2)),
        ];
        let mut wal = Wal::create(&path, SyncPolicy::Always).unwrap();
        let len = wal.append_batch(&ops).unwrap();
        assert_eq!(wal.appends(), 3);
        assert_eq!(len, wal.len());
        let seg = replay(&path).unwrap();
        assert_eq!(seg.ops, ops);
        assert_eq!(seg.torn_bytes, 0);
        // An empty batch is a no-op, not an error.
        assert_eq!(wal.append_batch(&[]).unwrap(), len);
        assert_eq!(wal.appends(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rollback_discards_torn_bytes_and_appends_continue() {
        let path = tmp("rollback.log");
        let mut wal = Wal::create(&path, SyncPolicy::Always).unwrap();
        wal.append(&WalOp::Insert(rec(1))).unwrap();
        let good = wal.len();
        // Simulate the state a failed write_all leaves behind: a partial
        // frame on disk past the last acknowledged boundary.
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            f.write_all(&[7, 0, 0, 0, 9]).unwrap(); // half a header
        }
        wal.rollback_to_len().unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), good);
        // The next append lands at a reachable frame boundary.
        wal.append(&WalOp::Delete(1)).unwrap();
        let seg = replay(&path).unwrap();
        assert_eq!(seg.ops, vec![WalOp::Insert(rec(1)), WalOp::Delete(1)]);
        assert_eq!(seg.torn_bytes, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn poisoned_segment_rejects_appends_until_reopened() {
        let path = tmp("poison.log");
        let mut wal = Wal::create(&path, SyncPolicy::Always).unwrap();
        wal.append(&WalOp::Insert(rec(1))).unwrap();
        wal.poisoned = true;
        let err = wal.append(&WalOp::Insert(rec(2))).unwrap_err();
        assert!(err.to_string().contains("poisoned"), "{err}");
        // Reopening after replay clears the poison.
        drop(wal);
        let seg = replay(&path).unwrap();
        let mut wal = Wal::open_append(&path, SyncPolicy::Always, seg.valid_len).unwrap();
        wal.append(&WalOp::Insert(rec(2))).unwrap();
        assert_eq!(replay(&path).unwrap().ops.len(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reader_tails_frames_and_sees_later_appends() {
        let path = tmp("reader.log");
        let mut wal = Wal::create(&path, SyncPolicy::Never).unwrap();
        wal.append(&WalOp::Insert(rec(1))).unwrap();
        wal.append(&WalOp::Delete(1)).unwrap();

        let mut reader = WalReader::open(&path).unwrap();
        let f1 = reader.next_frame().unwrap().unwrap();
        assert_eq!(f1.op, WalOp::Insert(rec(1)));
        let f2 = reader.next_frame().unwrap().unwrap();
        assert_eq!(f2.op, WalOp::Delete(1));
        assert_eq!(reader.pos(), wal.len());
        assert!(reader.next_frame().unwrap().is_none(), "caught up");

        // An append made after the reader caught up becomes visible on the
        // next poll — the tailing contract replication relies on.
        wal.append(&WalOp::Observe(rec(2))).unwrap();
        let f3 = reader.next_frame().unwrap().unwrap();
        assert_eq!(f3.op, WalOp::Observe(rec(2)));
        assert_eq!(reader.file_len().unwrap(), reader.pos());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reader_treats_partial_frame_as_nothing_yet() {
        let path = tmp("reader-partial.log");
        let mut wal = Wal::create(&path, SyncPolicy::Never).unwrap();
        wal.append(&WalOp::Insert(rec(1))).unwrap();
        drop(wal);
        // Half a header past the valid frame: an append in flight.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[9, 0, 0]).unwrap();
        }
        let mut reader = WalReader::open(&path).unwrap();
        assert!(reader.next_frame().unwrap().is_some());
        let at = reader.pos();
        assert!(reader.next_frame().unwrap().is_none());
        assert_eq!(reader.pos(), at, "cursor does not advance past a tear");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reader_rejects_foreign_file_and_oversized_frame() {
        let path = tmp("reader-foreign.log");
        std::fs::write(&path, b"definitely not a wal").unwrap();
        assert!(matches!(
            WalReader::open(&path),
            Err(StoreError::NotAWal { .. })
        ));
        // Oversized length prefix is corruption, not a retryable tail.
        let mut bytes = WAL_MAGIC.to_vec();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0, 0, 0, 0]);
        std::fs::write(&path, &bytes).unwrap();
        let mut reader = WalReader::open(&path).unwrap();
        assert!(reader.next_frame().is_err());
        std::fs::remove_file(&path).unwrap();
    }

    /// Hand-encodes a v1 (CRC'd-JSON) segment, byte-identical to what the
    /// pre-upgrade WAL wrote — the compatibility fixture for mixed-format
    /// recovery.
    fn write_v1_segment(path: &Path, ops: &[WalOp]) {
        let mut bytes = WAL_MAGIC.to_vec();
        for op in ops {
            let payload = serde_json::to_string(op).unwrap().into_bytes();
            bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
            bytes.extend_from_slice(&payload);
        }
        std::fs::write(path, bytes).unwrap();
    }

    #[test]
    fn new_segments_are_v2_binary() {
        let path = tmp("v2.log");
        let wal = Wal::create(&path, SyncPolicy::Never).unwrap();
        assert_eq!(wal.format(), WalFormat::V2Binary);
        drop(wal);
        let head = std::fs::read(&path).unwrap();
        assert_eq!(&head[..8], &WAL_MAGIC_V2);
        assert_eq!(
            WalReader::open(&path).unwrap().format(),
            WalFormat::V2Binary
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn v1_segment_replays_and_stays_v1_on_reopen() {
        let path = tmp("v1-compat.log");
        let ops = vec![
            WalOp::Insert(rec(1)),
            WalOp::Observe(rec(2)),
            WalOp::Delete(1),
        ];
        write_v1_segment(&path, &ops);

        // Replay decodes the JSON frames.
        let seg = replay(&path).unwrap();
        assert_eq!(seg.ops, ops);
        assert_eq!(seg.torn_bytes, 0);

        // The tailer reads them too (replication from an old segment).
        let mut reader = WalReader::open(&path).unwrap();
        assert_eq!(reader.format(), WalFormat::V1Json);
        for want in &ops {
            assert_eq!(&reader.next_frame().unwrap().unwrap().op, want);
        }
        assert!(reader.next_frame().unwrap().is_none());

        // Reopening for append keeps the segment v1: the new frame must
        // be readable by the same v1 replay.
        let mut wal = Wal::open_append(&path, SyncPolicy::Never, seg.valid_len).unwrap();
        assert_eq!(wal.format(), WalFormat::V1Json);
        wal.append(&WalOp::Insert(rec(9))).unwrap();
        drop(wal);
        let seg = replay(&path).unwrap();
        assert_eq!(seg.ops.len(), 4);
        assert_eq!(seg.ops[3], WalOp::Insert(rec(9)));
        assert_eq!(seg.torn_bytes, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn binary_op_codec_roundtrips() {
        let ops = [
            WalOp::Insert(Record::new(u64::MAX, ["", "Ünïcode", "x"])),
            WalOp::Observe(Record {
                id: 0,
                fields: Vec::new(),
            }),
            WalOp::Delete(42),
            WalOp::Reshard {
                merge: false,
                source: 0,
                target: 7,
            },
            WalOp::Reshard {
                merge: true,
                source: u64::MAX,
                target: 3,
            },
        ];
        for op in &ops {
            let mut buf = Vec::new();
            op.encode_bin(&mut buf);
            assert_eq!(&WalOp::decode_bin(&buf).unwrap(), op);
            // Every truncation is rejected, and trailing bytes are too.
            for cut in 0..buf.len() {
                assert!(WalOp::decode_bin(&buf[..cut]).is_err(), "cut {cut}");
            }
            let mut longer = buf.clone();
            longer.push(0);
            assert!(WalOp::decode_bin(&longer).is_err());
        }
        assert!(WalOp::decode_bin(&[99]).is_err(), "unknown tag");
        // A reshard frame with a flag that is neither split nor merge is
        // corruption, not a silent default.
        let mut bad = Vec::new();
        WalOp::Reshard {
            merge: false,
            source: 1,
            target: 2,
        }
        .encode_bin(&mut bad);
        bad[1] = 9;
        assert!(WalOp::decode_bin(&bad).is_err(), "bad reshard flag");
    }

    #[test]
    fn epoch_frames_roundtrip_and_marker_is_skipped() {
        let path = tmp("epoch.log");
        let mut wal = Wal::create(&path, SyncPolicy::Never).unwrap();
        wal.append(&WalOp::Insert(rec(1))).unwrap(); // epoch 0 → legacy tag
        wal.append_marker(2).unwrap(); // bump persists, no op-seq consumed
        assert_eq!(wal.epoch(), 2);
        wal.append(&WalOp::Insert(rec(2))).unwrap(); // stamped frame
        drop(wal);

        let seg = replay(&path).unwrap();
        assert_eq!(
            seg.ops,
            vec![WalOp::Insert(rec(1)), WalOp::Insert(rec(2))],
            "marker carries no op"
        );
        assert_eq!(seg.max_epoch, 2);
        assert_eq!(seg.torn_bytes, 0);

        let mut reader = WalReader::open(&path).unwrap();
        let f1 = reader.next_frame().unwrap().unwrap();
        assert_eq!((f1.op, f1.epoch), (WalOp::Insert(rec(1)), 0));
        let f2 = reader.next_frame().unwrap().unwrap();
        assert_eq!((f2.op, f2.epoch), (WalOp::Insert(rec(2)), 2));
        assert_eq!(reader.epoch(), 2);
        assert!(reader.next_frame().unwrap().is_none());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stale_epoch_frame_ends_the_valid_prefix() {
        let path = tmp("stale-epoch.log");
        let mut wal = Wal::create(&path, SyncPolicy::Never).unwrap();
        wal.append_marker(1).unwrap();
        wal.append(&WalOp::Insert(rec(1))).unwrap();
        let good = wal.len();
        // A demoted primary's zombie append: stamped below the segment's
        // high epoch.
        wal.set_epoch(0);
        wal.append(&WalOp::Insert(rec(2))).unwrap();
        drop(wal);

        let seg = replay(&path).unwrap();
        assert_eq!(seg.ops, vec![WalOp::Insert(rec(1))]);
        assert_eq!(seg.valid_len, good);
        assert!(seg.torn_bytes > 0, "stale frame truncated like a tear");
        assert_eq!(seg.max_epoch, 1);

        // The tailer refuses to ship stale residue.
        let mut reader = WalReader::open(&path).unwrap();
        assert!(reader.next_frame().unwrap().is_some());
        let err = reader.next_frame().unwrap_err();
        assert!(err.to_string().contains("stale-epoch"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn replay_epoch_floor_fences_older_frames() {
        let path = tmp("epoch-floor.log");
        let mut wal = Wal::create(&path, SyncPolicy::Never).unwrap();
        wal.set_epoch(3);
        wal.append(&WalOp::Insert(rec(1))).unwrap();
        drop(wal);
        // At or below the stamp the frame replays; above it, it is stale.
        let seg = replay_from_epoch(&path, 3).unwrap();
        assert_eq!(seg.ops.len(), 1);
        assert_eq!(seg.max_epoch, 3);
        let seg = replay_from_epoch(&path, 5).unwrap();
        assert!(seg.ops.is_empty());
        assert_eq!(seg.max_epoch, 5);
        assert!(seg.torn_bytes > 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn group_commit_defers_sync() {
        // Behavioural smoke: appends under a long group-commit interval
        // stay unsynced until an explicit sync.
        let path = tmp("group.log");
        let mut wal =
            Wal::create(&path, SyncPolicy::GroupCommit(Duration::from_secs(3600))).unwrap();
        for i in 0..10 {
            wal.append(&WalOp::Insert(rec(i))).unwrap();
        }
        assert!(wal.unsynced > 0, "no fsync within the interval");
        wal.sync().unwrap();
        assert_eq!(wal.unsynced, 0);
        // The data is in the file regardless of fsync.
        assert_eq!(replay(&path).unwrap().ops.len(), 10);
        std::fs::remove_file(&path).unwrap();
    }
}
