//! # rl-store — durable storage for the linkage index
//!
//! The compact c-vectors of Section 5.2 make the whole cBV-HB index cheap
//! to persist; this crate turns that observation into a dependency-light
//! durability subsystem for the linkage service:
//!
//! - [`wal`] — an append-only, length-prefixed, CRC-checksummed
//!   **write-ahead log** of index mutations ([`WalOp`]: insert / observe /
//!   delete), fsync'd per append or on a configurable group-commit
//!   interval ([`SyncPolicy`]).
//! - [`snapshot`] — the atomic, versioned index **snapshot** document
//!   (moved here from `rl-server`, which re-exports it unchanged).
//! - [`checkpoint`] — a snapshot **plus the WAL position it covers**, so
//!   recovery knows which log suffix still needs replay.
//! - [`store`] — [`Store`]: the data-directory manager tying the three
//!   together — open/recover, append, rotate, checkpoint, prune.
//!
//! ## Recovery contract
//!
//! [`Store::open`] loads the latest valid checkpoint (if any) and returns
//! the WAL tail to replay. A torn or corrupt final frame — the signature
//! a crash leaves mid-append — is **truncated with a warning, never a
//! refusal to start**: recovery yields exactly the longest valid prefix
//! of acknowledged mutations. See `docs/STORAGE.md` for formats and
//! tuning.

pub mod atomic;
pub mod checkpoint;
pub mod error;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use checkpoint::{Checkpoint, CHECKPOINT_MAGIC, CHECKPOINT_VERSION};
pub use error::StoreError;
pub use snapshot::{schema_hash, Snapshot, SnapshotError, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
pub use store::{
    scan_segments, segment_path, Recovery, RecoveryReport, Store, StoreOptions, CHECKPOINT_FILE,
};
pub use wal::{
    crc32, replay_from_epoch, ReadFrame, SyncPolicy, Wal, WalFormat, WalOp, WalReader,
    WAL_EPOCH_MARK_TAG, WAL_FRAME_EPOCH_TAG, WAL_FRAME_TAG, WAL_MAGIC, WAL_MAGIC_V2,
};
