//! [`Store`]: the data-directory manager tying WAL, checkpoint, and
//! recovery together.
//!
//! ## Directory layout
//!
//! ```text
//! <data-dir>/
//!   checkpoint.snap   # latest checkpoint (atomic rename; may be absent)
//!   wal-000001.log    # WAL segments, monotonically numbered
//!   wal-000002.log    # ... the highest-numbered one is being appended to
//! ```
//!
//! ## Checkpoint protocol
//!
//! 1. [`Store::begin_checkpoint`] — fsync and rotate: the active segment
//!    is closed and a new one opened; the closed segment's sequence is the
//!    `covered` watermark. Mutations keep flowing into the new segment
//!    while the caller exports the (now-stable-prefix) index state.
//! 2. [`Store::commit_checkpoint`] — atomically write `checkpoint.snap`
//!    embedding the exported snapshot and `covered`, then prune every
//!    segment with sequence ≤ `covered`.
//!
//! A crash anywhere in this window is safe: before the checkpoint rename
//! lands, recovery uses the *previous* checkpoint and replays the old
//! segments (still present); after the rename but before the prune
//! finishes, recovery deletes the covered segments itself. Replaying an
//! op the checkpoint already contains would also be harmless — inserts
//! replace by id, deletes of absent ids are no-ops.

use crate::checkpoint::Checkpoint;
use crate::error::StoreError;
use crate::snapshot::{Snapshot, SnapshotError};
use crate::wal::{replay_from_epoch, SyncPolicy, Wal, WalOp};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Name of the checkpoint document inside a data directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.snap";

/// Tuning for a [`Store`].
#[derive(Debug, Clone, Copy)]
pub struct StoreOptions {
    /// fsync cadence for WAL appends.
    pub sync: SyncPolicy,
}

impl Default for StoreOptions {
    fn default() -> Self {
        Self {
            sync: SyncPolicy::Always,
        }
    }
}

/// What [`Store::open`] recovered from the data directory. Applying
/// `snapshot` (if any) and then `ops` in order reproduces the exact state
/// at the last acknowledged, durable mutation.
#[derive(Debug)]
pub struct Recovery {
    /// The latest checkpoint's snapshot, absent on a fresh directory.
    pub snapshot: Option<Snapshot>,
    /// WAL ops past the checkpoint, in append order.
    pub ops: Vec<WalOp>,
    /// What happened during recovery (for logs and metrics).
    pub report: RecoveryReport,
}

/// Diagnostics from one recovery pass.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// WAL sequence covered by the loaded checkpoint (`None` without one).
    pub checkpoint_seq: Option<u64>,
    /// Ops replayed from the WAL tail.
    pub replayed_ops: u64,
    /// Segments the replayed ops came from.
    pub segments_replayed: u64,
    /// Bytes dropped from torn/corrupt frames (0 on a clean shutdown).
    pub truncated_bytes: u64,
    /// Primary epoch recovered (checkpoint epoch or any higher epoch seen
    /// in the replayed tail).
    pub epoch: u64,
    /// Wall-clock time spent loading the checkpoint and scanning the WAL.
    pub duration: Duration,
}

/// An open data directory: the active WAL segment plus checkpoint
/// management. One `Store` owns the directory; callers serialize access
/// (the server holds it under its state write lock).
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    wal: Wal,
    /// Sequence of the active segment.
    seq: u64,
    /// Bytes in retained segments older than the active one.
    prior_bytes: u64,
    /// Total appends through this handle, across rotations.
    appends: u64,
    /// Global sequence of the last appended op (checkpoint watermark +
    /// every op since the data directory was created). Replication
    /// numbers WAL frames with this.
    op_seq: u64,
    /// Global op sequence the committed checkpoint covers: the first
    /// frame in the retained segments is op `base_ops + 1`.
    base_ops: u64,
    /// `op_seq` captured at [`Store::begin_checkpoint`]'s rotation, so
    /// [`Store::commit_checkpoint`] stamps the matching watermark.
    pending_ckpt_ops: Option<u64>,
    /// Primary epoch: stamped into every appended frame, bumped by
    /// [`Store::bump_epoch`] on promote, adopted from the stream by
    /// [`Store::observe_epoch`] on a follower. Recovered as the maximum of
    /// the checkpoint's epoch and every epoch seen in the replayed tail.
    epoch: u64,
    opts: StoreOptions,
}

/// Path of the WAL segment numbered `seq` inside `dir`.
pub fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq:06}.log"))
}

fn parse_segment_seq(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?
        .strip_suffix(".log")?
        .parse()
        .ok()
}

/// All WAL segment sequences in `dir`, sorted ascending.
///
/// # Errors
/// Returns [`StoreError::Io`] when the directory cannot be read.
pub fn scan_segments(dir: &Path) -> Result<Vec<u64>, StoreError> {
    let entries = std::fs::read_dir(dir).map_err(|e| StoreError::io("read_dir", dir, e))?;
    let mut seqs: Vec<u64> = entries
        .flatten()
        .filter_map(|e| parse_segment_seq(&e.file_name().to_string_lossy()))
        .collect();
    seqs.sort_unstable();
    Ok(seqs)
}

impl Store {
    /// Opens (creating if needed) a data directory and recovers its
    /// state: loads the latest checkpoint, replays the WAL tail, and
    /// truncates any torn final frame **with a warning, never a refusal
    /// to start**. Returns the store (ready for appends) plus everything
    /// needed to rebuild the index.
    ///
    /// # Errors
    /// Returns [`StoreError`] on filesystem failure or a *corrupt
    /// checkpoint* (unlike a torn WAL tail, the checkpoint is written
    /// atomically, so corruption there is damage recovery must not paper
    /// over — the error names the file).
    pub fn open(dir: &Path, opts: StoreOptions) -> Result<(Self, Recovery), StoreError> {
        let started = std::time::Instant::now();
        std::fs::create_dir_all(dir).map_err(|e| StoreError::io("create_dir", dir, e))?;

        let ckpt_path = dir.join(CHECKPOINT_FILE);
        let checkpoint = match Checkpoint::load(&ckpt_path) {
            Ok(c) => Some(c),
            Err(SnapshotError::Io { ref source, .. })
                if source.kind() == std::io::ErrorKind::NotFound =>
            {
                None
            }
            Err(e) => return Err(e.into()),
        };
        let covered = checkpoint.as_ref().map(|c| c.wal_seq);

        // Finish any prune a crash interrupted: segments the checkpoint
        // covers are dead weight.
        let mut seqs = scan_segments(dir)?;
        if let Some(covered) = covered {
            let mut pruned = false;
            for &seq in seqs.iter().filter(|&&s| s <= covered) {
                pruned |= std::fs::remove_file(segment_path(dir, seq)).is_ok();
            }
            if pruned {
                let _ = crate::atomic::fsync_dir(dir);
            }
            seqs.retain(|&s| s > covered);
        }

        let mut ops = Vec::new();
        let mut report = RecoveryReport {
            checkpoint_seq: covered,
            ..RecoveryReport::default()
        };
        // (active segment seq, valid length to reuse) — None means start a
        // fresh segment instead of reusing the last one.
        let mut reuse: Option<(u64, u64)> = None;
        let mut abandoned_after = None;
        // Damaged/unreplayable segments to rename out of the WAL namespace
        // (`<name>.abandoned`): kept on disk for forensics, but no longer
        // scanned — otherwise every later open would re-abandon at the
        // same spot and never replay segments appended *after* this
        // recovery, silently dropping acknowledged writes.
        let mut quarantine: Vec<u64> = Vec::new();
        // The epoch floor rises across segments: a frame stamped below it
        // (stale-primary residue) ends the valid prefix like a tear.
        let mut epoch = checkpoint.as_ref().map(|c| c.epoch).unwrap_or(0);
        for (i, &seq) in seqs.iter().enumerate() {
            let path = segment_path(dir, seq);
            let last = i == seqs.len() - 1;
            let seg = match replay_from_epoch(&path, epoch) {
                Ok(seg) => seg,
                Err(StoreError::NotAWal { path, msg }) => {
                    eprintln!(
                        "rl-store: WARNING: {} is not a WAL segment ({msg}); \
                         abandoning replay at seq {seq}",
                        path.display()
                    );
                    // Everything from the foreign file onward is
                    // unreplayable (later ops may depend on its contents).
                    // The new active segment must number past *every*
                    // scanned segment, never over a valid later one.
                    quarantine.extend(seqs[i..].iter().copied());
                    abandoned_after = Some(*seqs.last().unwrap());
                    break;
                }
                Err(e) => return Err(e),
            };
            if seg.torn_bytes > 0 {
                eprintln!(
                    "rl-store: WARNING: truncating {} torn byte(s) at end of {} \
                     (crash mid-append); recovering the longest valid prefix",
                    seg.torn_bytes,
                    path.display()
                );
                report.truncated_bytes += seg.torn_bytes;
            }
            report.replayed_ops += seg.ops.len() as u64;
            report.segments_replayed += 1;
            epoch = seg.max_epoch;
            ops.extend(seg.ops);
            if last {
                reuse = Some((seq, seg.valid_len));
            } else if seg.torn_bytes > 0 {
                // A tear in a non-final segment means later segments were
                // written after corruption crept in; their ordering
                // guarantee is gone. Keep the recovered prefix (truncate
                // the tear away so the next open replays this segment
                // cleanly), quarantine the rest, and append to a fresh
                // segment numbered past everything scanned.
                eprintln!(
                    "rl-store: WARNING: tear in non-final segment {}; \
                     later segments are not replayed",
                    path.display()
                );
                if let Err(e) = std::fs::OpenOptions::new()
                    .write(true)
                    .open(&path)
                    .and_then(|f| f.set_len(seg.valid_len))
                {
                    eprintln!(
                        "rl-store: WARNING: could not truncate torn segment {}: {e}",
                        path.display()
                    );
                }
                quarantine.extend(seqs[i + 1..].iter().copied());
                abandoned_after = Some(*seqs.last().unwrap());
                break;
            }
        }

        for seq in quarantine {
            let from = segment_path(dir, seq);
            let to = from.with_extension("log.abandoned");
            match std::fs::rename(&from, &to) {
                Ok(()) => eprintln!(
                    "rl-store: WARNING: quarantined unreplayable segment as {}",
                    to.display()
                ),
                Err(e) => eprintln!(
                    "rl-store: WARNING: could not quarantine {}: {e}",
                    from.display()
                ),
            }
        }

        let (mut seq, mut wal) = match (reuse, abandoned_after) {
            (_, Some(max)) => {
                let seq = max + 1;
                (seq, Wal::create(&segment_path(dir, seq), opts.sync)?)
            }
            (Some((seq, valid_len)), None) => (
                seq,
                Wal::open_append(&segment_path(dir, seq), opts.sync, valid_len)?,
            ),
            (None, None) => {
                let seq = covered.unwrap_or(0) + 1;
                (seq, Wal::create(&segment_path(dir, seq), opts.sync)?)
            }
        };
        if epoch > 0 && wal.format() == crate::wal::WalFormat::V1Json {
            // An epoch'd store must never append un-stamped v1 frames (the
            // floor would truncate them on the next replay); leave the v1
            // segment behind and continue on a fresh v2 one.
            seq += 1;
            wal = Wal::create(&segment_path(dir, seq), opts.sync)?;
        }
        wal.set_epoch(epoch);

        let prior_bytes = scan_segments(dir)?
            .into_iter()
            .filter(|&s| s != seq)
            .map(|s| {
                std::fs::metadata(segment_path(dir, s))
                    .map(|m| m.len())
                    .unwrap_or(0)
            })
            .sum();

        report.duration = started.elapsed();
        report.epoch = epoch;
        let base_ops = checkpoint.as_ref().map(|c| c.ops).unwrap_or(0);
        let store = Self {
            dir: dir.to_path_buf(),
            wal,
            seq,
            prior_bytes,
            appends: 0,
            op_seq: base_ops + ops.len() as u64,
            base_ops,
            pending_ckpt_ops: None,
            epoch,
            opts,
        };
        let recovery = Recovery {
            snapshot: checkpoint.map(|c| c.snapshot),
            ops,
            report,
        };
        Ok((store, recovery))
    }

    /// Appends one mutation to the WAL (durability per the sync policy).
    /// Must complete before the mutation is acknowledged.
    ///
    /// # Errors
    /// Returns [`StoreError::Io`] naming the segment on failure.
    pub fn append(&mut self, op: &WalOp) -> Result<(), StoreError> {
        self.wal.append(op)?;
        self.appends += 1;
        self.op_seq += 1;
        Ok(())
    }

    /// Appends a batch of mutations all-or-nothing (one write; see
    /// [`Wal::append_batch`]): on failure none of the batch is durable, so
    /// a rejected multi-record request never leaves a prefix in the WAL to
    /// resurface at replay.
    ///
    /// # Errors
    /// Returns [`StoreError::Io`] naming the segment on failure.
    pub fn append_batch(&mut self, ops: &[WalOp]) -> Result<(), StoreError> {
        self.wal.append_batch(ops)?;
        self.appends += ops.len() as u64;
        self.op_seq += ops.len() as u64;
        Ok(())
    }

    /// Forces an fsync of the active segment regardless of policy.
    ///
    /// # Errors
    /// Returns [`StoreError::Io`] naming the segment on failure.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.wal.sync()
    }

    /// Phase 1 of a checkpoint: fsync, close the active segment, open the
    /// next one. Returns the covered watermark to pass to
    /// [`Self::commit_checkpoint`] once the caller has exported state.
    ///
    /// # Errors
    /// Returns [`StoreError::Io`] on fsync or segment-creation failure.
    pub fn begin_checkpoint(&mut self) -> Result<u64, StoreError> {
        self.pending_ckpt_ops = Some(self.op_seq);
        self.rotate()
    }

    /// fsyncs and closes the active segment, opening the next one.
    /// Returns the sequence of the segment just closed. Promotion rotates
    /// so a freshly-promoted primary starts its mutation stream on a
    /// segment boundary; checkpoints rotate through
    /// [`Self::begin_checkpoint`].
    ///
    /// # Errors
    /// Returns [`StoreError::Io`] on fsync or segment-creation failure.
    pub fn rotate(&mut self) -> Result<u64, StoreError> {
        self.wal.sync()?;
        let covered = self.seq;
        self.seq += 1;
        let mut next = Wal::create(&segment_path(&self.dir, self.seq), self.opts.sync)?;
        next.set_epoch(self.epoch);
        let old = std::mem::replace(&mut self.wal, next);
        self.prior_bytes += old.len();
        Ok(covered)
    }

    /// The current primary epoch (0 until the first promote in the
    /// directory's history).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Promotes this store to a new primary epoch: bumps the epoch,
    /// rotates to a fresh segment, and makes the bump durable with an
    /// epoch marker frame **before returning** — so no mutation can be
    /// acknowledged at the new epoch until a crashed restart would recover
    /// it. A crash before the marker lands merely loses the bump, which is
    /// safe: nothing was accepted under it. Returns the new epoch.
    ///
    /// # Errors
    /// Returns [`StoreError::Io`] on rotation, marker append, or fsync
    /// failure; the epoch is **not** considered bumped in that case.
    pub fn bump_epoch(&mut self) -> Result<u64, StoreError> {
        let next = self.epoch + 1;
        self.rotate()?;
        self.wal.append_marker(next)?;
        self.wal.sync()?;
        self.epoch = next;
        Ok(next)
    }

    /// Adopts a higher epoch observed on the replication stream (a
    /// follower learning its primary was re-elected). Subsequent local
    /// appends are stamped with it; lower or equal epochs are no-ops. If
    /// the active segment is a pre-upgrade v1 file (which cannot carry
    /// stamps), it is rotated out first.
    ///
    /// # Errors
    /// Returns [`StoreError::Io`] if the protective rotation fails.
    pub fn observe_epoch(&mut self, epoch: u64) -> Result<(), StoreError> {
        if epoch <= self.epoch {
            return Ok(());
        }
        if self.wal.format() == crate::wal::WalFormat::V1Json {
            self.rotate()?;
        }
        self.epoch = epoch;
        self.wal.set_epoch(epoch);
        Ok(())
    }

    /// Phase 2 of a checkpoint: atomically publish `checkpoint.snap` and
    /// prune the covered segments. `snapshot` must reflect at least every
    /// mutation up to the `covered` watermark from
    /// [`Self::begin_checkpoint`] (exporting *after* the rotation
    /// guarantees that).
    ///
    /// # Errors
    /// Returns [`StoreError::Snapshot`] if the checkpoint cannot be
    /// written; pruning failures are best-effort (a leftover covered
    /// segment is deleted on the next open).
    pub fn commit_checkpoint(
        &mut self,
        snapshot: Snapshot,
        covered: u64,
    ) -> Result<(), StoreError> {
        let ops = self.pending_ckpt_ops.take().unwrap_or(self.op_seq);
        Checkpoint::new(covered, snapshot)
            .with_ops(ops)
            .with_epoch(self.epoch)
            .save(&self.dir.join(CHECKPOINT_FILE))?;
        self.base_ops = ops;
        let mut pruned = false;
        for seq in scan_segments(&self.dir)?
            .into_iter()
            .filter(|&s| s <= covered)
        {
            let path = segment_path(&self.dir, seq);
            let len = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            if std::fs::remove_file(&path).is_ok() {
                self.prior_bytes = self.prior_bytes.saturating_sub(len);
                pruned = true;
            }
        }
        if pruned {
            // Best-effort, like the prune itself: a resurrected covered
            // segment is re-deleted (not replayed) on the next open. The
            // ordering that matters — checkpoint durable before any prune
            // — is already guaranteed by the directory fsync inside the
            // checkpoint's atomic save.
            let _ = crate::atomic::fsync_dir(&self.dir);
        }
        Ok(())
    }

    /// Live WAL bytes across all retained segments (the
    /// `rl_wal_bytes` gauge).
    pub fn wal_bytes(&self) -> u64 {
        self.prior_bytes + self.wal.len()
    }

    /// Total appends through this handle (the `rl_wal_appends_total`
    /// counter), across rotations.
    pub fn appends(&self) -> u64 {
        self.appends
    }

    /// The data directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Sequence number of the active WAL segment.
    pub fn active_seq(&self) -> u64 {
        self.seq
    }

    /// Frame format of the active WAL segment: v2 for anything created
    /// after the wire upgrade, v1 for a pre-upgrade segment reopened by
    /// recovery (it keeps its format until rotation).
    pub fn active_format(&self) -> crate::wal::WalFormat {
        self.wal.format()
    }

    /// Global sequence of the last appended op (checkpoint watermark plus
    /// every append since). Frame `op_seq` is the newest mutation in the
    /// WAL; a fresh directory starts at 0.
    pub fn op_seq(&self) -> u64 {
        self.op_seq
    }

    /// Global op sequence covered by the committed checkpoint: the first
    /// frame in the retained segments is op `base_ops() + 1`. A
    /// subscriber asking for history older than this must resync from a
    /// checkpoint instead.
    pub fn base_ops(&self) -> u64 {
        self.base_ops
    }

    /// Replaces the directory's entire contents with `ckpt`: writes it as
    /// the committed checkpoint, deletes every WAL segment, and opens a
    /// fresh active segment past both the checkpoint's watermark and the
    /// previous active sequence. A follower too far behind the primary's
    /// retained log calls this to restart from a shipped checkpoint; the
    /// caller must rebuild its in-memory state from `ckpt.snapshot`.
    ///
    /// # Errors
    /// Returns [`StoreError`] on filesystem failure; on error the store
    /// may be left with no active segment frames but the checkpoint and
    /// recovery path remain consistent (the checkpoint lands atomically
    /// before any segment is deleted).
    pub fn reset_to_checkpoint(&mut self, ckpt: &Checkpoint) -> Result<(), StoreError> {
        ckpt.save(&self.dir.join(CHECKPOINT_FILE))?;
        let mut removed = false;
        for seq in scan_segments(&self.dir)? {
            removed |= std::fs::remove_file(segment_path(&self.dir, seq)).is_ok();
        }
        if removed {
            let _ = crate::atomic::fsync_dir(&self.dir);
        }
        self.seq = self.seq.max(ckpt.wal_seq) + 1;
        self.wal = Wal::create(&segment_path(&self.dir, self.seq), self.opts.sync)?;
        self.prior_bytes = 0;
        self.base_ops = ckpt.ops;
        self.op_seq = ckpt.ops;
        self.pending_ckpt_ops = None;
        // The shipped checkpoint carries the primary's epoch; the save
        // above already made it durable here.
        self.epoch = self.epoch.max(ckpt.epoch);
        self.wal.set_epoch(self.epoch);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::replay;
    use cbv_hb::sharded::ShardedPipeline;
    use cbv_hb::{AttributeSpec, LinkageConfig, Record, RecordSchema, Rule};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use textdist::Alphabet;

    fn rec(id: u64) -> Record {
        Record::new(id, ["JOHN", "SMITH"])
    }

    fn sample_snapshot(indexed: &[u64]) -> Snapshot {
        let mut rng = StdRng::seed_from_u64(3);
        let schema = RecordSchema::build(
            Alphabet::linkage(),
            vec![
                AttributeSpec::new("FirstName", 2, 15, false, 5),
                AttributeSpec::new("LastName", 2, 15, false, 5),
            ],
            &mut rng,
        );
        let rule = Rule::and([Rule::pred(0, 4), Rule::pred(1, 4)]);
        let mut p =
            ShardedPipeline::new(schema, LinkageConfig::rule_aware(rule), 2, &mut rng).unwrap();
        let records: Vec<Record> = indexed.iter().map(|&id| rec(id)).collect();
        p.index(&records).unwrap();
        let state = p.export_state().unwrap();
        p.shutdown();
        Snapshot::new(state, vec![], 0).unwrap()
    }

    fn fresh_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rl-store-store-test-{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fresh_dir_then_reopen_replays_everything() {
        let dir = fresh_dir("fresh");
        let (mut store, rec0) = Store::open(&dir, StoreOptions::default()).unwrap();
        assert!(rec0.snapshot.is_none());
        assert!(rec0.ops.is_empty());
        store.append(&WalOp::Insert(rec(1))).unwrap();
        store.append(&WalOp::Delete(1)).unwrap();
        store.append(&WalOp::Observe(rec(2))).unwrap();
        assert_eq!(store.appends(), 3);
        drop(store);

        let (store, recov) = Store::open(&dir, StoreOptions::default()).unwrap();
        assert!(recov.snapshot.is_none());
        assert_eq!(
            recov.ops,
            vec![
                WalOp::Insert(rec(1)),
                WalOp::Delete(1),
                WalOp::Observe(rec(2)),
            ]
        );
        assert_eq!(recov.report.replayed_ops, 3);
        assert_eq!(recov.report.truncated_bytes, 0);
        assert!(store.wal_bytes() > 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_prunes_and_recovery_uses_snapshot_plus_tail() {
        let dir = fresh_dir("ckpt");
        let (mut store, _) = Store::open(&dir, StoreOptions::default()).unwrap();
        store.append(&WalOp::Insert(rec(1))).unwrap();
        store.append(&WalOp::Insert(rec(2))).unwrap();
        let covered = store.begin_checkpoint().unwrap();
        assert_eq!(covered, 1);
        // Mutations during the checkpoint land in the new segment.
        store.append(&WalOp::Insert(rec(3))).unwrap();
        store
            .commit_checkpoint(sample_snapshot(&[1, 2]), covered)
            .unwrap();
        store.append(&WalOp::Delete(2)).unwrap();
        drop(store);

        // Covered segment is gone.
        assert!(!segment_path(&dir, 1).exists());
        assert!(segment_path(&dir, 2).exists());

        let (_, recov) = Store::open(&dir, StoreOptions::default()).unwrap();
        let snap = recov.snapshot.expect("checkpoint snapshot");
        assert_eq!(snap.state.indexed, 2);
        assert_eq!(recov.ops, vec![WalOp::Insert(rec(3)), WalOp::Delete(2)]);
        assert_eq!(recov.report.checkpoint_seq, Some(1));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_continue() {
        let dir = fresh_dir("torn");
        let (mut store, _) = Store::open(&dir, StoreOptions::default()).unwrap();
        for i in 0..4 {
            store.append(&WalOp::Insert(rec(i))).unwrap();
        }
        drop(store);
        // Tear the last frame.
        let seg = segment_path(&dir, 1);
        let bytes = std::fs::read(&seg).unwrap();
        std::fs::write(&seg, &bytes[..bytes.len() - 3]).unwrap();

        let (mut store, recov) = Store::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(recov.ops.len(), 3, "longest valid prefix");
        // Torn bytes = cut file length minus the valid prefix length.
        let valid = replay(&seg).unwrap().valid_len as usize;
        assert_eq!(
            recov.report.truncated_bytes as usize,
            bytes.len() - 3 - valid
        );
        // The store keeps working on the truncated segment.
        store.append(&WalOp::Insert(rec(9))).unwrap();
        drop(store);
        let (_, recov) = Store::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(recov.ops.len(), 4);
        assert_eq!(recov.ops[3], WalOp::Insert(rec(9)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn foreign_segment_never_clobbers_later_valid_segments() {
        let dir = fresh_dir("notawal");
        // Segment 1: valid, one op.
        let (mut store, _) = Store::open(&dir, StoreOptions::default()).unwrap();
        store.append(&WalOp::Insert(rec(1))).unwrap();
        drop(store);
        // Segment 2: a foreign file wearing a segment name.
        std::fs::write(segment_path(&dir, 2), b"definitely not a wal").unwrap();
        // Segment 3: valid, one op — must survive recovery untouched.
        let mut w3 = Wal::create(&segment_path(&dir, 3), SyncPolicy::Always).unwrap();
        w3.append(&WalOp::Insert(rec(3))).unwrap();
        drop(w3);

        let (mut store, recov) = Store::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(recov.ops, vec![WalOp::Insert(rec(1))]);
        // The new active segment numbers past EVERY scanned segment; a
        // `Wal::create` over segment 3 would have destroyed its data.
        assert_eq!(store.active_seq(), 4);
        // The damaged/unreplayable files are quarantined for forensics,
        // segment 3's bytes intact inside its quarantine file.
        assert!(!segment_path(&dir, 2).exists());
        assert!(!segment_path(&dir, 3).exists());
        let kept = replay(&dir.join("wal-000003.log.abandoned")).unwrap();
        assert_eq!(kept.ops, vec![WalOp::Insert(rec(3))]);

        // Post-recovery appends must survive the NEXT restart too: the
        // quarantine keeps the foreign file out of the scan, so replay no
        // longer re-abandons in front of them.
        store.append(&WalOp::Insert(rec(9))).unwrap();
        drop(store);
        let (_, again) = Store::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(
            again.ops,
            vec![WalOp::Insert(rec(1)), WalOp::Insert(rec(9))]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn non_final_tear_truncates_quarantines_and_stays_recovered() {
        let dir = fresh_dir("midtear");
        let (mut store, _) = Store::open(&dir, StoreOptions::default()).unwrap();
        store.append(&WalOp::Insert(rec(1))).unwrap();
        store.append(&WalOp::Insert(rec(2))).unwrap();
        drop(store);
        // Tear segment 1 mid-frame, then add a later segment written
        // "after corruption crept in".
        let seg1 = segment_path(&dir, 1);
        let bytes = std::fs::read(&seg1).unwrap();
        std::fs::write(&seg1, &bytes[..bytes.len() - 3]).unwrap();
        let mut w2 = Wal::create(&segment_path(&dir, 2), SyncPolicy::Always).unwrap();
        w2.append(&WalOp::Insert(rec(5))).unwrap();
        drop(w2);

        let (mut store, recov) = Store::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(
            recov.ops,
            vec![WalOp::Insert(rec(1))],
            "prefix before the tear"
        );
        assert_eq!(store.active_seq(), 3);
        assert!(dir.join("wal-000002.log.abandoned").exists());
        // The torn segment was truncated to its valid prefix, so the next
        // open replays it cleanly (no repeated abandonment) and sees
        // appends made after this recovery.
        store.append(&WalOp::Delete(1)).unwrap();
        drop(store);
        let (_, again) = Store::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(again.ops, vec![WalOp::Insert(rec(1)), WalOp::Delete(1)]);
        assert_eq!(again.report.truncated_bytes, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_batch_counts_and_replays_like_singles() {
        let dir = fresh_dir("batch");
        let (mut store, _) = Store::open(&dir, StoreOptions::default()).unwrap();
        let ops = vec![
            WalOp::Insert(rec(1)),
            WalOp::Insert(rec(2)),
            WalOp::Delete(1),
        ];
        store.append_batch(&ops).unwrap();
        assert_eq!(store.appends(), 3);
        drop(store);
        let (_, recov) = Store::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(recov.ops, ops);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_between_checkpoint_and_prune_is_recovered() {
        let dir = fresh_dir("midprune");
        let (mut store, _) = Store::open(&dir, StoreOptions::default()).unwrap();
        store.append(&WalOp::Insert(rec(1))).unwrap();
        let covered = store.begin_checkpoint().unwrap();
        // Simulate the crash window: checkpoint written, prune never ran.
        Checkpoint::new(covered, sample_snapshot(&[1]))
            .save(&dir.join(CHECKPOINT_FILE))
            .unwrap();
        store.append(&WalOp::Insert(rec(2))).unwrap();
        drop(store);
        assert!(segment_path(&dir, 1).exists(), "prune never ran");

        let (_, recov) = Store::open(&dir, StoreOptions::default()).unwrap();
        // The covered segment was deleted at open and NOT replayed.
        assert!(!segment_path(&dir, 1).exists());
        assert_eq!(recov.snapshot.unwrap().state.indexed, 1);
        assert_eq!(recov.ops, vec![WalOp::Insert(rec(2))]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_checkpoint_is_an_error_not_silent_data_loss() {
        let dir = fresh_dir("badckpt");
        let (mut store, _) = Store::open(&dir, StoreOptions::default()).unwrap();
        store.append(&WalOp::Insert(rec(1))).unwrap();
        drop(store);
        std::fs::write(dir.join(CHECKPOINT_FILE), "garbage").unwrap();
        let err = Store::open(&dir, StoreOptions::default()).unwrap_err();
        assert!(
            err.to_string().contains(CHECKPOINT_FILE),
            "error names the file: {err}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_bytes_tracks_rotation_and_prune() {
        let dir = fresh_dir("bytes");
        let (mut store, _) = Store::open(&dir, StoreOptions::default()).unwrap();
        store.append(&WalOp::Insert(rec(1))).unwrap();
        let before = store.wal_bytes();
        let covered = store.begin_checkpoint().unwrap();
        assert!(
            store.wal_bytes() > before,
            "rotation adds a fresh header without dropping old bytes"
        );
        store
            .commit_checkpoint(sample_snapshot(&[1]), covered)
            .unwrap();
        let after = store.wal_bytes();
        assert!(
            after < before,
            "prune reclaims the covered segment ({after} vs {before})"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn op_seq_survives_checkpoint_and_reopen() {
        let dir = fresh_dir("opseq");
        let (mut store, _) = Store::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(store.op_seq(), 0);
        assert_eq!(store.base_ops(), 0);
        store.append(&WalOp::Insert(rec(1))).unwrap();
        store
            .append_batch(&[WalOp::Insert(rec(2)), WalOp::Delete(1)])
            .unwrap();
        assert_eq!(store.op_seq(), 3);

        let covered = store.begin_checkpoint().unwrap();
        store.append(&WalOp::Insert(rec(4))).unwrap();
        store
            .commit_checkpoint(sample_snapshot(&[2]), covered)
            .unwrap();
        // The checkpoint covers ops 1..=3 (captured at rotation), not the
        // append that raced in during the export window.
        assert_eq!(store.base_ops(), 3);
        assert_eq!(store.op_seq(), 4);
        drop(store);

        let (store, recov) = Store::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(recov.ops.len(), 1, "one op past the checkpoint");
        assert_eq!(store.base_ops(), 3);
        assert_eq!(store.op_seq(), 4, "watermark + replayed tail");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reset_to_checkpoint_replaces_history() {
        let dir = fresh_dir("reset");
        let (mut store, _) = Store::open(&dir, StoreOptions::default()).unwrap();
        for i in 0..5 {
            store.append(&WalOp::Insert(rec(i))).unwrap();
        }
        let ckpt = Checkpoint::new(9, sample_snapshot(&[1, 2])).with_ops(42);
        store.reset_to_checkpoint(&ckpt).unwrap();
        assert_eq!(store.op_seq(), 42);
        assert_eq!(store.base_ops(), 42);
        assert!(store.active_seq() > 9);
        store.append(&WalOp::Insert(rec(100))).unwrap();
        assert_eq!(store.op_seq(), 43);
        drop(store);

        let (store, recov) = Store::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(recov.snapshot.unwrap().state.indexed, 2);
        assert_eq!(recov.ops, vec![WalOp::Insert(rec(100))], "old ops gone");
        assert_eq!(store.op_seq(), 43);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_between_begin_and_commit_checkpoint_loses_nothing() {
        // The kill window satellite: a crash after begin_checkpoint
        // (rotation done) but before commit_checkpoint (no new
        // checkpoint.snap) — possibly mid-write, leaving a stale temp
        // sibling — must recover every acknowledged op and must not treat
        // the partial temp as a checkpoint.
        let dir = fresh_dir("ckpt-interrupt");
        let (mut store, _) = Store::open(&dir, StoreOptions::default()).unwrap();
        store.append(&WalOp::Insert(rec(1))).unwrap();
        store.append(&WalOp::Insert(rec(2))).unwrap();
        let _covered = store.begin_checkpoint().unwrap();
        store.append(&WalOp::Insert(rec(3))).unwrap();
        // Crash before commit_checkpoint: drop the store with a partial
        // checkpoint temp on disk, exactly what a kill mid-write_atomic
        // leaves behind.
        let stale_tmp = dir.join(format!("{CHECKPOINT_FILE}.tmp-99999-0"));
        std::fs::write(&stale_tmp, b"{\"partial\":").unwrap();
        drop(store);

        let (mut store, recov) = Store::open(&dir, StoreOptions::default()).unwrap();
        assert!(
            recov.snapshot.is_none(),
            "a temp sibling is not a checkpoint"
        );
        assert_eq!(
            recov.ops,
            vec![
                WalOp::Insert(rec(1)),
                WalOp::Insert(rec(2)),
                WalOp::Insert(rec(3)),
            ],
            "every acknowledged op recovered across both segments"
        );
        assert_eq!(store.op_seq(), 3);
        assert!(stale_tmp.exists(), "ignored, not deleted, at open");

        // The next successful checkpoint sweeps the stale temp.
        let covered = store.begin_checkpoint().unwrap();
        store
            .commit_checkpoint(sample_snapshot(&[1, 2]), covered)
            .unwrap();
        assert!(
            !stale_tmp.exists(),
            "stale checkpoint temp swept by the next atomic save"
        );
        drop(store);
        let (_, recov) = Store::open(&dir, StoreOptions::default()).unwrap();
        assert!(recov.snapshot.is_some());
        assert!(recov.ops.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bump_epoch_rotates_and_survives_restart() {
        let dir = fresh_dir("epoch-bump");
        let (mut store, _) = Store::open(&dir, StoreOptions::default()).unwrap();
        store.append(&WalOp::Insert(rec(1))).unwrap();
        assert_eq!(store.epoch(), 0);
        let before = store.active_seq();
        assert_eq!(store.bump_epoch().unwrap(), 1);
        assert!(store.active_seq() > before, "bump starts a fresh segment");
        store.append(&WalOp::Insert(rec(2))).unwrap();
        assert_eq!(store.op_seq(), 2, "the marker consumed no op sequence");
        drop(store);

        // No checkpoint yet: the bump survives purely via the marker.
        let (store, recov) = Store::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(store.epoch(), 1);
        assert_eq!(recov.report.epoch, 1);
        assert_eq!(
            recov.ops,
            vec![WalOp::Insert(rec(1)), WalOp::Insert(rec(2))]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_carries_epoch_and_reset_adopts_it() {
        let dir = fresh_dir("epoch-ckpt");
        let (mut store, _) = Store::open(&dir, StoreOptions::default()).unwrap();
        store.bump_epoch().unwrap();
        store.append(&WalOp::Insert(rec(1))).unwrap();
        let covered = store.begin_checkpoint().unwrap();
        store
            .commit_checkpoint(sample_snapshot(&[1]), covered)
            .unwrap();
        drop(store);
        let ckpt = Checkpoint::load(&dir.join(CHECKPOINT_FILE)).unwrap();
        assert_eq!(ckpt.epoch, 1);
        // The marker segment was pruned with the checkpoint; the epoch now
        // survives via the checkpoint field alone.
        let (store, _) = Store::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(store.epoch(), 1);
        drop(store);

        // A follower resetting to a shipped checkpoint adopts its epoch.
        let dir2 = fresh_dir("epoch-reset");
        let (mut follower, _) = Store::open(&dir2, StoreOptions::default()).unwrap();
        follower.reset_to_checkpoint(&ckpt).unwrap();
        assert_eq!(follower.epoch(), 1);
        follower.append(&WalOp::Insert(rec(2))).unwrap();
        drop(follower);
        let (follower, _) = Store::open(&dir2, StoreOptions::default()).unwrap();
        assert_eq!(follower.epoch(), 1, "stamped frames carry it forward");
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&dir2).unwrap();
    }

    #[test]
    fn observe_epoch_raises_and_ignores_lower() {
        let dir = fresh_dir("epoch-observe");
        let (mut store, _) = Store::open(&dir, StoreOptions::default()).unwrap();
        store.observe_epoch(3).unwrap();
        assert_eq!(store.epoch(), 3);
        store.observe_epoch(2).unwrap();
        assert_eq!(store.epoch(), 3, "epochs never go backwards");
        store.append(&WalOp::Insert(rec(1))).unwrap();
        drop(store);
        let (store, _) = Store::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(store.epoch(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segment_name_parsing() {
        assert_eq!(parse_segment_seq("wal-000001.log"), Some(1));
        assert_eq!(parse_segment_seq("wal-123456.log"), Some(123456));
        assert_eq!(parse_segment_seq("wal-.log"), None);
        assert_eq!(parse_segment_seq("checkpoint.snap"), None);
        assert_eq!(parse_segment_seq("wal-1.txt"), None);
    }
}
