//! Store-level errors.

use crate::snapshot::SnapshotError;
use std::path::PathBuf;

/// Errors raised by the durability subsystem. Like [`SnapshotError`],
/// every variant's Display names the file involved.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure outside the snapshot/checkpoint path (WAL
    /// append, directory scan, segment prune, …).
    Io {
        /// The operation that failed.
        op: &'static str,
        /// The file or directory it was applied to.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// Snapshot or checkpoint failure (already path-annotated).
    Snapshot(SnapshotError),
    /// A WAL segment whose *header* is unreadable — not a torn tail
    /// (those are truncated with a warning), but a file that is not a WAL
    /// at all.
    NotAWal {
        /// The offending file.
        path: PathBuf,
        /// What was wrong with the header.
        msg: String,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { op, path, source } => {
                write!(f, "store I/O: {op} {}: {source}", path.display())
            }
            StoreError::Snapshot(e) => write!(f, "{e}"),
            StoreError::NotAWal { path, msg } => {
                write!(f, "not a WAL segment: {}: {msg}", path.display())
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            StoreError::Snapshot(e) => Some(e),
            StoreError::NotAWal { .. } => None,
        }
    }
}

impl From<SnapshotError> for StoreError {
    fn from(e: SnapshotError) -> Self {
        StoreError::Snapshot(e)
    }
}

impl StoreError {
    pub(crate) fn io(op: &'static str, path: &std::path::Path, source: std::io::Error) -> Self {
        StoreError::Io {
            op,
            path: path.to_path_buf(),
            source,
        }
    }
}
