//! Checkpoints: a snapshot plus the WAL position it covers.
//!
//! A checkpoint is the snapshot document wrapped with the sequence number
//! of the last WAL segment whose mutations are fully contained in it.
//! Recovery loads the checkpoint, then replays only segments *after* that
//! sequence — the log prefix the checkpoint covers has been pruned (or is
//! about to be; replaying it anyway is harmless, because applying a WAL
//! op twice is idempotent at the index level).

use crate::atomic::write_atomic;
use crate::snapshot::{Snapshot, SnapshotError};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Format magic: identifies a file as an rl-store checkpoint.
pub const CHECKPOINT_MAGIC: &str = "RLCKPT1";

/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u32 = 1;

/// The on-disk checkpoint document.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Must equal [`CHECKPOINT_MAGIC`].
    pub magic: String,
    /// Must equal [`CHECKPOINT_VERSION`].
    pub version: u32,
    /// Every WAL segment with sequence ≤ this is fully covered by
    /// `snapshot` and safe to prune.
    pub wal_seq: u64,
    /// Global op-sequence watermark: how many mutations (since the data
    /// directory was created) the snapshot contains. Replication uses this
    /// to number WAL frames globally; checkpoints written before the field
    /// existed read back as 0, which only costs a follower one resync.
    #[serde(default)]
    pub ops: u64,
    /// Primary epoch the store held when the checkpoint was written.
    /// Recovery starts its epoch floor here, so stale-primary frames never
    /// replay even when every epoch marker has been pruned with its
    /// segment; pre-epoch checkpoints read back as 0.
    #[serde(default)]
    pub epoch: u64,
    /// The embedded index snapshot (validated with the same rules as a
    /// standalone snapshot file).
    pub snapshot: Snapshot,
}

impl Checkpoint {
    /// Wraps a snapshot with the WAL sequence it covers.
    pub fn new(wal_seq: u64, snapshot: Snapshot) -> Self {
        Self {
            magic: CHECKPOINT_MAGIC.to_string(),
            version: CHECKPOINT_VERSION,
            wal_seq,
            ops: 0,
            epoch: 0,
            snapshot,
        }
    }

    /// Sets the global op-sequence watermark the snapshot covers.
    pub fn with_ops(mut self, ops: u64) -> Self {
        self.ops = ops;
        self
    }

    /// Sets the primary epoch the snapshot was exported under.
    pub fn with_epoch(mut self, epoch: u64) -> Self {
        self.epoch = epoch;
        self
    }

    /// Writes the checkpoint atomically (temp sibling + fsync + rename),
    /// so a crash mid-checkpoint leaves the previous checkpoint intact.
    ///
    /// # Errors
    /// Returns [`SnapshotError::Io`] (naming the path) or
    /// [`SnapshotError::Serde`] on encoding failure.
    pub fn save(&self, path: &Path) -> Result<(), SnapshotError> {
        let json = serde_json::to_string(self).map_err(|e| SnapshotError::Serde {
            path: Some(path.to_path_buf()),
            msg: e.to_string(),
        })?;
        write_atomic(path, json.as_bytes())
    }

    /// Loads and validates a checkpoint: its own magic/version plus the
    /// embedded snapshot's magic, version, and schema hash.
    ///
    /// # Errors
    /// Returns [`SnapshotError::Io`] when the file cannot be read,
    /// [`SnapshotError::Serde`] when it is not a checkpoint document, and
    /// [`SnapshotError::Format`] when validation fails — all naming the
    /// offending path.
    pub fn load(path: &Path) -> Result<Self, SnapshotError> {
        let json = std::fs::read_to_string(path).map_err(|e| SnapshotError::io("read", path, e))?;
        let ckpt: Checkpoint = serde_json::from_str(&json).map_err(|e| SnapshotError::Serde {
            path: Some(path.to_path_buf()),
            msg: e.to_string(),
        })?;
        ckpt.validate(Some(path))?;
        Ok(ckpt)
    }

    /// Validates the checkpoint's magic, version, and embedded snapshot.
    /// `path` (when known) is threaded into errors for context; a
    /// checkpoint received over the wire validates with `None`.
    ///
    /// # Errors
    /// Returns [`SnapshotError::Format`] describing the first failed check.
    pub fn validate(&self, path: Option<&Path>) -> Result<(), SnapshotError> {
        if self.magic != CHECKPOINT_MAGIC {
            return Err(SnapshotError::Format {
                path: path.map(Path::to_path_buf),
                msg: format!("bad magic {:?} (expected {CHECKPOINT_MAGIC:?})", self.magic),
            });
        }
        if self.version != CHECKPOINT_VERSION {
            return Err(SnapshotError::Format {
                path: path.map(Path::to_path_buf),
                msg: format!(
                    "unsupported version {} (this build reads {CHECKPOINT_VERSION})",
                    self.version
                ),
            });
        }
        self.snapshot.validate(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbv_hb::sharded::ShardedPipeline;
    use cbv_hb::{AttributeSpec, LinkageConfig, Record, RecordSchema, Rule};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use textdist::Alphabet;

    fn sample_snapshot() -> Snapshot {
        let mut rng = StdRng::seed_from_u64(3);
        let schema = RecordSchema::build(
            Alphabet::linkage(),
            vec![
                AttributeSpec::new("FirstName", 2, 15, false, 5),
                AttributeSpec::new("LastName", 2, 15, false, 5),
            ],
            &mut rng,
        );
        let rule = Rule::and([Rule::pred(0, 4), Rule::pred(1, 4)]);
        let mut p =
            ShardedPipeline::new(schema, LinkageConfig::rule_aware(rule), 2, &mut rng).unwrap();
        p.index(&[Record::new(1, ["JOHN", "SMITH"])]).unwrap();
        let state = p.export_state().unwrap();
        p.shutdown();
        Snapshot::new(state, vec![], 0).unwrap()
    }

    #[test]
    fn save_load_roundtrip_preserves_wal_seq() {
        let dir = std::env::temp_dir().join("rl-store-ckpt-test-roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("checkpoint.snap");
        Checkpoint::new(7, sample_snapshot()).save(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        assert_eq!(loaded.wal_seq, 7);
        assert_eq!(loaded.snapshot.state.indexed, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rejects_bad_magic_version_and_embedded_snapshot() {
        let dir = std::env::temp_dir().join("rl-store-ckpt-test-reject");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("checkpoint.snap");
        let good = Checkpoint::new(1, sample_snapshot());

        let mut bad = good.clone();
        bad.magic = "NOTACKPT".into();
        bad.save(&path).unwrap();
        let msg = Checkpoint::load(&path).unwrap_err().to_string();
        assert!(msg.contains("checkpoint.snap"), "names the path: {msg}");

        let mut bad = good.clone();
        bad.version = CHECKPOINT_VERSION + 1;
        bad.save(&path).unwrap();
        assert!(matches!(
            Checkpoint::load(&path),
            Err(SnapshotError::Format { .. })
        ));

        // A corrupt embedded snapshot is caught by the same validation a
        // standalone snapshot file gets.
        let mut bad = good.clone();
        bad.snapshot.schema_hash = "0".repeat(16);
        bad.save(&path).unwrap();
        assert!(matches!(
            Checkpoint::load(&path),
            Err(SnapshotError::Format { .. })
        ));

        good.save(&path).unwrap();
        assert!(Checkpoint::load(&path).is_ok());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
