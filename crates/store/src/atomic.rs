//! Atomic single-file publication: write a temp sibling, fsync, rename.
//!
//! Shared by snapshots and checkpoints. Writes are atomic with respect to
//! readers: the document is written to a sibling temp file and `rename`d
//! over the destination, so a crash mid-write never corrupts an existing
//! file. A writer that crashes *before* the rename leaves its
//! `<name>.tmp-<pid>-<seq>` sibling behind; the next successful
//! [`write_atomic`] to the same path sweeps such stale temps (only files
//! matching the temp naming pattern for that destination, and never one
//! another in-process writer still has in flight).

use crate::snapshot::SnapshotError;
use std::collections::HashSet;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Writes `bytes` (plus a trailing newline) to `path` atomically:
/// serialize to a unique temp sibling, fsync, then rename over `path`.
/// Readers either see the old complete document or the new complete
/// document, never a torn write.
///
/// # Errors
/// Returns [`SnapshotError::Io`] naming the offending path on any
/// filesystem failure (create, write, sync, rename).
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), SnapshotError> {
    let tmp = temp_sibling(path);
    in_flight().lock().unwrap().insert(tmp.clone());
    let result = (|| -> Result<(), SnapshotError> {
        {
            let mut file =
                std::fs::File::create(&tmp).map_err(|e| SnapshotError::io("create", &tmp, e))?;
            file.write_all(bytes)
                .map_err(|e| SnapshotError::io("write", &tmp, e))?;
            file.write_all(b"\n")
                .map_err(|e| SnapshotError::io("write", &tmp, e))?;
            file.sync_all()
                .map_err(|e| SnapshotError::io("fsync", &tmp, e))?;
        }
        if let Err(e) = std::fs::rename(&tmp, path) {
            let _ = std::fs::remove_file(&tmp);
            return Err(SnapshotError::io("rename", path, e));
        }
        // The rename only becomes crash-durable once the directory entry
        // is on disk; without this a power loss can revert to the old
        // document even though the caller was told the new one landed.
        let dir = match path.parent() {
            Some(d) if !d.as_os_str().is_empty() => d,
            _ => Path::new("."),
        };
        fsync_dir(dir).map_err(|e| SnapshotError::io("fsync-dir", dir, e))?;
        Ok(())
    })();
    in_flight().lock().unwrap().remove(&tmp);
    if result.is_ok() {
        sweep_stale_temps(path);
    }
    result
}

/// Flushes `dir`'s entries to disk, making renames, creates, and unlinks
/// inside it crash-durable. On non-Unix platforms (where a directory
/// cannot be opened as a file) this is a no-op — Windows metadata writes
/// are ordered by the filesystem instead.
pub(crate) fn fsync_dir(dir: &Path) -> std::io::Result<()> {
    #[cfg(unix)]
    std::fs::File::open(dir)?.sync_all()?;
    #[cfg(not(unix))]
    let _ = dir;
    Ok(())
}

/// A temp path next to the destination, so the final rename stays on one
/// filesystem (rename across mount points is not atomic — or possible).
/// The name carries the pid plus a process-wide sequence number: two
/// concurrent writers to one path must not share a temp file, or one
/// truncates the other mid-write and the rename publishes a partial
/// document.
fn temp_sibling(path: &Path) -> PathBuf {
    static TEMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = TEMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let mut name = dest_file_name(path);
    name.push_str(&format!(".tmp-{}-{seq}", std::process::id()));
    path.with_file_name(name)
}

fn dest_file_name(path: &Path) -> String {
    path.file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "snapshot".to_string())
}

/// Temp paths this process is currently writing. The sweep must skip
/// them: two in-process saves to the same path can overlap, and a
/// finishing save must not delete the other's half-written temp.
fn in_flight() -> &'static Mutex<HashSet<PathBuf>> {
    static IN_FLIGHT: std::sync::OnceLock<Mutex<HashSet<PathBuf>>> = std::sync::OnceLock::new();
    IN_FLIGHT.get_or_init(|| Mutex::new(HashSet::new()))
}

/// True when `candidate` is `<dest-name>.tmp-<digits>-<digits>` — the
/// exact shape [`temp_sibling`] produces for this destination. Anything
/// else (the destination itself, other files' temps, unrelated files) is
/// left alone.
fn is_stale_temp_name(candidate: &str, dest_name: &str) -> bool {
    let Some(rest) = candidate
        .strip_prefix(dest_name)
        .and_then(|r| r.strip_prefix(".tmp-"))
    else {
        return false;
    };
    let mut parts = rest.splitn(2, '-');
    let (Some(pid), Some(seq)) = (parts.next(), parts.next()) else {
        return false;
    };
    !pid.is_empty()
        && !seq.is_empty()
        && pid.bytes().all(|b| b.is_ascii_digit())
        && seq.bytes().all(|b| b.is_ascii_digit())
}

/// Removes temp siblings left behind by writers that crashed between
/// `File::create` and `rename`. Best-effort: sweep failures never fail
/// the save that triggered them.
fn sweep_stale_temps(path: &Path) {
    let Some(dir) = path.parent() else { return };
    let dir = if dir.as_os_str().is_empty() {
        Path::new(".")
    } else {
        dir
    };
    let dest_name = dest_file_name(path);
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let candidates: Vec<PathBuf> = entries
        .flatten()
        .filter(|e| is_stale_temp_name(&e.file_name().to_string_lossy(), &dest_name))
        .map(|e| e.path())
        .collect();
    if candidates.is_empty() {
        return;
    }
    // Check liveness under the lock *after* listing: a temp registered
    // while we iterated is then guaranteed visible here, so a concurrent
    // in-process save can never lose its half-written file.
    let live = in_flight().lock().unwrap();
    for path in candidates {
        if !live.contains(&path) {
            let _ = std::fs::remove_file(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stale_temp_name_matching() {
        assert!(is_stale_temp_name("a.snap.tmp-12-0", "a.snap"));
        assert!(is_stale_temp_name("a.snap.tmp-12-345", "a.snap"));
        // The destination itself and lookalikes are never candidates.
        assert!(!is_stale_temp_name("a.snap", "a.snap"));
        assert!(!is_stale_temp_name("a.snap.tmp-", "a.snap"));
        assert!(!is_stale_temp_name("a.snap.tmp-12", "a.snap"));
        assert!(!is_stale_temp_name("a.snap.tmp-12-", "a.snap"));
        assert!(!is_stale_temp_name("a.snap.tmp-x-1", "a.snap"));
        assert!(!is_stale_temp_name("a.snap.tmp-1-2-3", "a.snap"));
        assert!(!is_stale_temp_name("b.snap.tmp-1-2", "a.snap"));
    }

    #[test]
    fn write_atomic_replaces_and_sweeps() {
        let dir = std::env::temp_dir().join("rl-store-atomic-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("doc.json");
        // Simulate two crashed writers (a dead pid and this pid).
        std::fs::write(dir.join("doc.json.tmp-99999-0"), "partial").unwrap();
        std::fs::write(dir.join("doc.json.tmp-1234-7"), "partial").unwrap();
        // Non-matching siblings must survive the sweep.
        std::fs::write(dir.join("other.json.tmp-1-1"), "keep").unwrap();
        std::fs::write(dir.join("doc.json.backup"), "keep").unwrap();
        write_atomic(&path, b"{\"v\":1}").unwrap();
        write_atomic(&path, b"{\"v\":2}").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"v\":2}\n");
        let mut entries: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        entries.sort();
        assert_eq!(
            entries,
            vec!["doc.json", "doc.json.backup", "other.json.tmp-1-1"]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn io_error_names_the_path() {
        let missing = Path::new("/nonexistent-rl-store-dir/doc.json");
        let err = write_atomic(missing, b"x").unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("/nonexistent-rl-store-dir/doc.json"),
            "error must name the offending path: {msg}"
        );
    }
}
