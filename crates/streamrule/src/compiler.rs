//! Lowering a classification rule into an executable subscription plan.
//!
//! [`CompiledRule`] wraps the rule-aware blocking compiler (§5.4): the
//! rule's AND conjuncts fuse into one LSH structure, OR branches union,
//! and NOT becomes verified set subtraction — so by construction the plan
//! holds *only* the tables the rule's predicates can match. A rule over
//! attributes `{0, 1}` of a 4-attribute schema never probes (or pays
//! index/bucket cost for) tables keyed on attributes 2 or 3, which is the
//! candidate-work bound "Scalable Blocking for Very Large Databases"
//! argues for, applied per subscription.
//!
//! On top of the plan the compiler adds **top-k candidate capping**: when
//! a probe's verified candidate set exceeds `cap`, only the `cap` records
//! nearest by total Hamming distance are classified. This bounds per-probe
//! work under adversarial bucket skew at a bounded recall cost (the
//! dropped candidates are the farthest, hence least likely to satisfy the
//! rule).

use cbv_hb::blocking::BlockingPlan;
use cbv_hb::error::Result;
use cbv_hb::matcher::MatchStats;
use cbv_hb::schema::{EmbeddedRecord, RecordSchema};
use cbv_hb::Rule;
use rand::Rng;
use std::collections::BTreeSet;

use crate::window::{LateArrival, WindowSpec};

/// Everything a subscription asks for: the rule, its window, the
/// late-arrival policy, and the per-probe candidate cap (`0` = uncapped).
#[derive(Debug, Clone, PartialEq)]
pub struct SubscriptionSpec {
    /// The classification rule to watch for.
    pub rule: Rule,
    /// The window scoping which past records are matchable.
    pub window: WindowSpec,
    /// What to do with out-of-order event times.
    pub late: LateArrival,
    /// Per-probe top-k candidate cap; `0` disables capping.
    pub cap: usize,
}

impl SubscriptionSpec {
    /// A spec with the default policy (no lateness tolerance decision
    /// needed, uncapped probing).
    pub fn new(rule: Rule, window: WindowSpec) -> Self {
        Self {
            rule,
            window,
            late: LateArrival::default(),
            cap: 0,
        }
    }
}

/// A rule lowered into an executable probing plan.
#[derive(Debug)]
pub struct CompiledRule {
    rule: Rule,
    plan: BlockingPlan,
    attrs: BTreeSet<usize>,
    cap: usize,
}

impl CompiledRule {
    /// Compiles `rule` against `schema` with failure budget `delta` and
    /// per-probe cap `cap` (`0` = uncapped).
    ///
    /// # Errors
    /// Propagates rule validation and plan compilation errors
    /// ([`cbv_hb::Error`]).
    pub fn compile<R: Rng + ?Sized>(
        schema: &RecordSchema,
        rule: Rule,
        delta: f64,
        cap: usize,
        rng: &mut R,
    ) -> Result<Self> {
        let plan = BlockingPlan::compile(schema, &rule, delta, rng)?;
        let attrs = rule.predicates().iter().map(|p| p.attr).collect();
        Ok(Self {
            rule,
            plan,
            attrs,
            cap,
        })
    }

    /// The source rule.
    pub fn rule(&self) -> &Rule {
        &self.rule
    }

    /// The attribute indices the plan's tables are keyed on — exactly the
    /// attributes the rule's predicates reference.
    pub fn attrs(&self) -> &BTreeSet<usize> {
        &self.attrs
    }

    /// Total LSH tables the plan probes per record (`Σ L`).
    pub fn tables(&self) -> usize {
        self.plan.total_tables()
    }

    /// The attribute indices the compiled structures' tables are actually
    /// keyed on, read back from the plan — always equal to [`Self::attrs`]
    /// (the pruning claim; asserted by tests, exposed for diagnostics).
    pub fn table_attrs(&self) -> BTreeSet<usize> {
        self.plan
            .structures()
            .iter()
            .flat_map(|s| s.conjuncts().iter().map(|p| p.attr))
            .collect()
    }

    /// The per-probe candidate cap (`0` = uncapped).
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Indexes a record into the plan's tables so later probes can find it.
    pub fn index(&mut self, rec: &EmbeddedRecord) {
        self.plan.insert(rec);
    }

    /// Probes the plan: formulates the candidate set per the rule's
    /// blocking logic, caps it to the `cap` nearest by total distance,
    /// classifies each survivor with the rule, and returns matched ids in
    /// ascending order. Candidates the `lookup` cannot resolve (evicted or
    /// out-of-window records) are skipped — the tombstone discipline.
    pub fn probe<'s, F>(
        &self,
        probe: &EmbeddedRecord,
        lookup: F,
        stats: &mut MatchStats,
    ) -> Vec<u64>
    where
        F: Fn(u64) -> Option<&'s EmbeddedRecord>,
    {
        let mut cands: Vec<u64> = self
            .plan
            .candidates_verified(probe, &lookup)
            .into_iter()
            .collect();
        stats.candidates += cands.len() as u64;
        if self.cap > 0 && cands.len() > self.cap {
            // Keep the cap nearest; unresolvable ids sort last and fall off.
            cands.sort_by_key(|&id| lookup(id).map_or(u32::MAX, |a| a.total_distance(probe)));
            cands.truncate(self.cap);
        }
        let mut out = Vec::new();
        for id in cands {
            let Some(a) = lookup(id) else { continue };
            stats.distance_computations += 1;
            if self.rule.evaluate(&a.distances(probe)) {
                out.push(id);
            }
        }
        stats.matched += out.len() as u64;
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbv_hb::matcher::{match_record, Classifier, RecordStore};
    use cbv_hb::schema::AttributeSpec;
    use cbv_hb::Record;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use textdist::Alphabet;

    /// Three attributes; the third ("City") is identical across the corpus,
    /// the worst case for record-level blocking (everyone is 1/3 similar).
    fn schema(seed: u64) -> RecordSchema {
        let mut rng = StdRng::seed_from_u64(seed);
        RecordSchema::build(
            Alphabet::linkage(),
            vec![
                AttributeSpec::new("FirstName", 2, 64, false, 5),
                AttributeSpec::new("LastName", 2, 64, false, 5),
                AttributeSpec::new("City", 2, 64, false, 5),
            ],
            &mut rng,
        )
    }

    fn corpus() -> Vec<Record> {
        let names = [
            ("JOHN", "SMITH"),
            ("MARY", "JONES"),
            ("PETER", "WILLIAMS"),
            ("LUCY", "BROWN"),
            ("MARK", "TAYLOR"),
            ("SARAH", "DAVIES"),
            ("JAMES", "WILSON"),
            ("EMMA", "EVANS"),
        ];
        let mut out = Vec::new();
        for (i, (f, l)) in names.iter().enumerate() {
            let id = 2 * i as u64;
            out.push(Record::new(
                id,
                [f.to_string(), l.to_string(), "SPRINGFIELD".into()],
            ));
            // A dirty twin: one trailing character changed on the first name.
            let mut dirty: String = (*f).into();
            dirty.pop();
            dirty.push('X');
            out.push(Record::new(
                id + 1,
                [dirty, (*l).to_string(), "SPRINGFIELD".into()],
            ));
        }
        out
    }

    /// The acceptance-criteria compiler test: the compiled plan probes only
    /// the tables its rule's predicates require — fewer candidate lookups
    /// than the unrestricted record-level plan — while missing no match on
    /// a seeded corpus.
    #[test]
    fn compiled_plan_prunes_tables_without_missing_matches() {
        let s = schema(41);
        let rule = Rule::and([Rule::pred(0, 8), Rule::pred(1, 8)]);
        let mut rng = StdRng::seed_from_u64(42);
        let mut compiled = CompiledRule::compile(&s, rule.clone(), 0.02, 0, &mut rng).unwrap();

        // Structural claim: every table is keyed on the rule's attributes —
        // attribute 2 appears in no structure.
        assert_eq!(compiled.attrs().iter().copied().collect::<Vec<_>>(), [0, 1]);
        assert_eq!(compiled.table_attrs(), compiled.attrs().clone());

        // The unrestricted baseline: record-level LSH over the full
        // concatenated vector, classifying with the same rule. Threshold =
        // the rule's total budget (attr 2 is identical, distance 0).
        let mut rng2 = StdRng::seed_from_u64(42);
        let mut unrestricted = BlockingPlan::record_level(&s, 16, 5, 0.02, &mut rng2).unwrap();

        let recs = corpus();
        let embedded: Vec<_> = recs.iter().map(|r| s.embed(r).unwrap()).collect();
        let mut store = RecordStore::new();
        for e in &embedded {
            compiled.index(e);
            unrestricted.insert(e);
            store.insert(e.clone());
        }

        let mut compiled_stats = MatchStats::default();
        let mut unrestricted_stats = MatchStats::default();
        let classifier = Classifier::Rule(rule.clone());
        for probe in &embedded {
            let mine = compiled.probe(
                probe,
                |id| if id == probe.id { None } else { store.get(id) },
                &mut compiled_stats,
            );
            // Ground truth: brute-force rule evaluation over the corpus.
            let truth: Vec<u64> = embedded
                .iter()
                .filter(|o| o.id != probe.id && rule.evaluate(&o.distances(probe)))
                .map(|o| o.id)
                .collect();
            for t in &truth {
                assert!(mine.contains(t), "missed match {t} for probe {}", probe.id);
            }
            assert_eq!(mine.len(), truth.len(), "probe {}", probe.id);
            let _ = match_record(
                &unrestricted,
                &store,
                probe,
                &classifier,
                &mut unrestricted_stats,
            );
        }
        // The shared "City" attribute floods the record-level buckets with
        // unrelated candidates; the rule-aware plan never looks at them.
        assert!(
            compiled_stats.candidates < unrestricted_stats.candidates,
            "compiled {} vs unrestricted {} candidate lookups",
            compiled_stats.candidates,
            unrestricted_stats.candidates
        );
    }

    #[test]
    fn top_k_cap_bounds_classification_work() {
        let s = schema(43);
        let rule = Rule::and([Rule::pred(0, 10), Rule::pred(1, 10)]);
        let mut rng = StdRng::seed_from_u64(44);
        // Cap 1: even with many similar records only the nearest candidate
        // is classified per probe.
        let mut capped = CompiledRule::compile(&s, rule.clone(), 0.05, 1, &mut rng).unwrap();
        let mut rng = StdRng::seed_from_u64(44);
        let mut uncapped = CompiledRule::compile(&s, rule, 0.05, 0, &mut rng).unwrap();
        assert_eq!(capped.cap(), 1);

        let recs = [
            Record::new(1, ["ANNA", "LEE", "X"]),
            Record::new(2, ["ANNA", "LEE", "X"]),
            Record::new(3, ["ANNA", "LEE", "X"]),
        ];
        let mut store = RecordStore::new();
        for r in &recs {
            let e = s.embed(r).unwrap();
            capped.index(&e);
            uncapped.index(&e);
            store.insert(e);
        }
        let probe = s.embed(&Record::new(9, ["ANNA", "LEE", "X"])).unwrap();
        let mut stats = MatchStats::default();
        let hits = uncapped.probe(&probe, |id| store.get(id), &mut stats);
        assert_eq!(hits, vec![1, 2, 3], "uncapped finds every twin");
        let mut capped_stats = MatchStats::default();
        let hits = capped.probe(&probe, |id| store.get(id), &mut capped_stats);
        assert_eq!(hits.len(), 1, "cap 1 classifies exactly one candidate");
        assert_eq!(capped_stats.distance_computations, 1);
    }

    #[test]
    fn unresolvable_candidates_are_skipped() {
        let s = schema(45);
        let rule = Rule::and([Rule::pred(0, 8), Rule::pred(1, 8)]);
        let mut rng = StdRng::seed_from_u64(46);
        let mut c = CompiledRule::compile(&s, rule, 0.05, 0, &mut rng).unwrap();
        let e = s.embed(&Record::new(1, ["ANNA", "LEE", "X"])).unwrap();
        c.index(&e);
        let probe = s.embed(&Record::new(2, ["ANNA", "LEE", "X"])).unwrap();
        let mut stats = MatchStats::default();
        // The store "lost" the record (evicted): the stale bucket entry
        // must not match.
        let hits = c.probe(&probe, |_| None, &mut stats);
        assert!(hits.is_empty());
        assert_eq!(stats.matched, 0);
    }
}
