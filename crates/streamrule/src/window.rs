//! Window specifications and per-subscription window bookkeeping.
//!
//! A subscription scopes matching to a sliding window over the stream:
//! either the last `n` admitted records ([`WindowSpec::Count`]) or the
//! records whose event time falls within the trailing `w` milliseconds of
//! the subscription's watermark ([`WindowSpec::TimeMs`]). Records that
//! leave the window are *evicted* — removed from the shared store through
//! the existing tombstone delete path, so they can never match again.
//!
//! Late arrivals (event time behind the watermark) are handled per the
//! subscription's [`LateArrival`] policy: `Drop` refuses them outright,
//! `ApplyIfInWindow` admits them as long as they would still fall inside
//! the current window span.

use cbv_hb::error::{Error, Result};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

/// The wire-level window description carried by a subscription.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WindowSpec {
    /// Keep the last `n` admitted records.
    Count(u64),
    /// Keep records whose event time is within the trailing `w`
    /// milliseconds of the subscription's watermark (the maximum event
    /// time admitted so far).
    TimeMs(u64),
}

impl WindowSpec {
    /// Rejects zero-sized windows, which could never hold the record that
    /// just arrived.
    ///
    /// # Errors
    /// Returns [`Error::InvalidParameter`] for `Count(0)` / `TimeMs(0)`.
    pub fn validate(&self) -> Result<()> {
        match self {
            WindowSpec::Count(0) => Err(Error::InvalidParameter(
                "count window must hold at least one record".into(),
            )),
            WindowSpec::TimeMs(0) => Err(Error::InvalidParameter(
                "time window must span at least one millisecond".into(),
            )),
            _ => Ok(()),
        }
    }
}

/// What to do with a record whose event time is behind the watermark.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum LateArrival {
    /// Refuse any out-of-order record.
    Drop,
    /// Admit an out-of-order record as long as it still falls inside the
    /// current window span (time windows; for count windows every arrival
    /// is in order by definition).
    #[default]
    ApplyIfInWindow,
}

/// Per-subscription window bookkeeping: which record ids are currently
/// *live* (matchable) for this subscription, in admission order.
///
/// Re-admitting an id refreshes its stamp; the superseded queue entry is
/// skipped lazily at eviction time (same tombstone discipline the blocking
/// buckets use).
#[derive(Debug)]
pub struct WindowState {
    spec: WindowSpec,
    late: LateArrival,
    /// Admission log: `(id, stamp, event_ms)`. May contain superseded
    /// entries for re-admitted ids.
    entries: VecDeque<(u64, u64, u64)>,
    /// Current stamp per live id; the authority on membership.
    live: HashMap<u64, u64>,
}

impl WindowState {
    /// Creates an empty window.
    pub fn new(spec: WindowSpec, late: LateArrival) -> Self {
        Self {
            spec,
            late,
            entries: VecDeque::new(),
            live: HashMap::new(),
        }
    }

    /// The window specification.
    pub fn spec(&self) -> WindowSpec {
        self.spec
    }

    /// Whether a record with `event_ms` is admitted given the watermark
    /// *before* this arrival.
    pub fn admits(&self, event_ms: u64, watermark_ms: u64) -> bool {
        if event_ms >= watermark_ms {
            return true;
        }
        match (self.late, self.spec) {
            // Count windows have no event-time semantics: arrival order is
            // the only order, so nothing is ever late.
            (_, WindowSpec::Count(_)) => true,
            (LateArrival::Drop, WindowSpec::TimeMs(_)) => false,
            (LateArrival::ApplyIfInWindow, WindowSpec::TimeMs(w)) => {
                event_ms > watermark_ms.saturating_sub(w)
            }
        }
    }

    /// Admits a record, refreshing the stamp when the id is already live.
    /// Returns `true` when the id is newly live (the caller owes a
    /// retain-count increment).
    pub fn push(&mut self, id: u64, stamp: u64, event_ms: u64) -> bool {
        self.entries.push_back((id, stamp, event_ms));
        self.live.insert(id, stamp).is_none()
    }

    /// True when the id is currently live in this window.
    pub fn contains(&self, id: u64) -> bool {
        self.live.contains_key(&id)
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// True when no records are live.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Evicts records that have left the window given the current
    /// watermark, returning the ids that stopped being live. Superseded
    /// entries (a re-admitted id's old stamp) are discarded silently.
    pub fn evict(&mut self, watermark_ms: u64) -> Vec<u64> {
        let mut out = Vec::new();
        while let Some(&(id, stamp, event_ms)) = self.entries.front() {
            // Skip entries superseded by a re-admission.
            if self.live.get(&id) != Some(&stamp) {
                self.entries.pop_front();
                continue;
            }
            let expired = match self.spec {
                WindowSpec::Count(n) => self.live.len() as u64 > n,
                WindowSpec::TimeMs(w) => event_ms <= watermark_ms.saturating_sub(w),
            };
            if !expired {
                break;
            }
            self.entries.pop_front();
            self.live.remove(&id);
            out.push(id);
        }
        out
    }

    /// Drops an id from the window without waiting for expiry (external
    /// delete). Returns whether it was live.
    pub fn forget(&mut self, id: u64) -> bool {
        self.live.remove(&id).is_some()
    }

    /// All currently live ids (order unspecified).
    pub fn live_ids(&self) -> impl Iterator<Item = u64> + '_ {
        self.live.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_windows_are_invalid() {
        assert!(WindowSpec::Count(0).validate().is_err());
        assert!(WindowSpec::TimeMs(0).validate().is_err());
        assert!(WindowSpec::Count(1).validate().is_ok());
        assert!(WindowSpec::TimeMs(1).validate().is_ok());
    }

    #[test]
    fn count_window_keeps_last_n() {
        let mut w = WindowState::new(WindowSpec::Count(2), LateArrival::Drop);
        for (i, id) in [10u64, 11, 12].iter().enumerate() {
            w.push(*id, i as u64, 0);
        }
        assert_eq!(w.evict(0), vec![10]);
        assert!(w.contains(11) && w.contains(12) && !w.contains(10));
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn time_window_evicts_by_watermark() {
        let mut w = WindowState::new(WindowSpec::TimeMs(100), LateArrival::ApplyIfInWindow);
        w.push(1, 0, 1000);
        w.push(2, 1, 1050);
        // Watermark 1100: the 100ms window is (1000, 1100] — id 1 expires.
        assert_eq!(w.evict(1100), vec![1]);
        assert!(w.contains(2));
    }

    #[test]
    fn late_arrival_policies() {
        let drop = WindowState::new(WindowSpec::TimeMs(100), LateArrival::Drop);
        assert!(drop.admits(1000, 900), "in-order is always admitted");
        assert!(!drop.admits(899, 900), "Drop refuses any late record");
        let lenient = WindowState::new(WindowSpec::TimeMs(100), LateArrival::ApplyIfInWindow);
        assert!(lenient.admits(850, 900), "still inside the window span");
        assert!(!lenient.admits(800, 900), "outside the window span");
        // Count windows have no lateness.
        let count = WindowState::new(WindowSpec::Count(5), LateArrival::Drop);
        assert!(count.admits(0, u64::MAX));
    }

    #[test]
    fn readmission_refreshes_stamp() {
        let mut w = WindowState::new(WindowSpec::Count(2), LateArrival::Drop);
        assert!(w.push(1, 0, 0), "first admission is newly live");
        assert!(w.push(2, 1, 0));
        assert!(!w.push(1, 2, 0), "re-admission is not newly live");
        // id 1 was refreshed, so the count-2 window evicts id 2 first.
        w.push(3, 3, 0);
        assert_eq!(w.evict(0), vec![2]);
        assert!(w.contains(1) && w.contains(3));
    }

    #[test]
    fn forget_removes_immediately() {
        let mut w = WindowState::new(WindowSpec::Count(10), LateArrival::Drop);
        w.push(1, 0, 0);
        assert!(w.forget(1));
        assert!(!w.forget(1));
        assert!(w.is_empty());
        assert_eq!(w.evict(0), Vec::<u64>::new());
    }

    #[test]
    fn specs_serialize_for_the_wire() {
        let w: WindowSpec =
            serde_json::from_str(&serde_json::to_string(&WindowSpec::Count(64)).unwrap()).unwrap();
        assert_eq!(w, WindowSpec::Count(64));
        let l: LateArrival =
            serde_json::from_str(&serde_json::to_string(&LateArrival::Drop).unwrap()).unwrap();
        assert_eq!(l, LateArrival::Drop);
    }
}
