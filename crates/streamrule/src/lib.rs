//! # rl-streamrule — windowed rule subscriptions over compiled blocking plans
//!
//! The paper's classification rules (§5.4) are evaluated in batch; this
//! crate turns them into a push-based streaming engine. A user-written rule
//! (the [`cbv_hb::parse_rule`] DSL) is *compiled* into a per-subscription
//! blocking plan that probes only the LSH tables its predicates require
//! ([`compiler::CompiledRule`]), carries a count- or time-based window with
//! eviction and a late-arrival policy ([`window`]), and is driven by a
//! [`engine::WindowedEngine`] that wraps a shared streaming matcher: every
//! observed record is matched against each live subscription's window and
//! the matches are surfaced as per-subscription events.
//!
//! Layering:
//!
//! * [`window`] — [`WindowSpec`] / [`LateArrival`] (the wire-level window
//!   description) and the per-subscription [`window::WindowState`]
//!   bookkeeping.
//! * [`compiler`] — lowers a rule AST into an executable probing plan with
//!   top-k candidate capping.
//! * [`engine`] — fan-out: one shared embedded-record store (tombstone
//!   eviction through the existing delete path), N subscription plans.
//!
//! `rl-server` builds protocol v6 (`SubscribeMatches` / `MatchEvent` /
//! `Unsubscribe`) on top of this crate; see `docs/STREAMING.md`.

pub mod compiler;
pub mod engine;
pub mod window;

pub use compiler::{CompiledRule, SubscriptionSpec};
pub use engine::{ObserveOutcome, SubMatch, WindowedEngine};
pub use window::{LateArrival, WindowSpec};
