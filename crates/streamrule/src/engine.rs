//! The windowed subscription engine.
//!
//! A [`WindowedEngine`] wraps a [`SharedStreamMatcher`]: one shared
//! embedded-record store and base blocking plan, plus any number of live
//! subscriptions, each with its own compiled plan ([`CompiledRule`]) and
//! window ([`WindowState`]). Observing a record:
//!
//! 1. upserts it into the shared matcher (base matches come back, same
//!    semantics as the plain streaming path);
//! 2. for every subscription — advances the window (evictions flow through
//!    the existing tombstone delete path, [`SharedStreamMatcher::remove`],
//!    once **no** subscription retains the record), applies the
//!    late-arrival policy, probes the subscription's plan against its
//!    window, emits a [`SubMatch`] event, and admits the record.
//!
//! Retention is the union of the live windows: with zero subscriptions
//! nothing is retained, so the engine's memory is bounded by the windows
//! rather than the stream length.

use cbv_hb::error::Result;
use cbv_hb::matcher::MatchStats;
use cbv_hb::pipeline::LinkageConfig;
use cbv_hb::schema::RecordSchema;
use cbv_hb::{Record, SharedStreamMatcher};
use parking_lot::Mutex;
use rand::Rng;
use std::collections::HashMap;

use crate::compiler::{CompiledRule, SubscriptionSpec};
use crate::window::WindowState;

/// One subscription's matches for one observed record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubMatch {
    /// The subscription that matched.
    pub sub: u64,
    /// The record that was observed.
    pub record_id: u64,
    /// Window records satisfying the subscription's rule, ascending.
    pub matched: Vec<u64>,
}

/// What one `observe` call produced.
#[derive(Debug, Clone, Default)]
pub struct ObserveOutcome {
    /// Matches against the engine's base rule (the wrapped matcher's
    /// normal streaming semantics).
    pub base_matches: Vec<u64>,
    /// Per-subscription match events (only subscriptions with at least one
    /// match appear).
    pub events: Vec<SubMatch>,
    /// Records evicted from the shared store by window expiry during this
    /// observation.
    pub evicted: u64,
    /// Subscriptions that refused the record under their late-arrival
    /// policy.
    pub late_drops: u64,
}

struct SubEntry {
    id: u64,
    compiled: CompiledRule,
    window: WindowState,
    stats: MatchStats,
}

struct Subs {
    next_id: u64,
    /// Monotone admission stamp shared by all windows.
    stamp: u64,
    /// Highest event time observed (drives lateness and time eviction).
    watermark_ms: u64,
    entries: Vec<SubEntry>,
    /// How many live windows hold each record; at zero the record leaves
    /// the shared store through the delete path.
    retain: HashMap<u64, usize>,
}

/// The windowed subscription engine. All methods take `&self`; internal
/// state is a single mutex (subscription bookkeeping) over the shared
/// matcher's own lock, in that order.
pub struct WindowedEngine {
    matcher: SharedStreamMatcher,
    subs: Mutex<Subs>,
    delta: f64,
    schema: RecordSchema,
}

impl WindowedEngine {
    /// Builds an engine over a fresh shared matcher. `config.delta` also
    /// becomes the failure budget for each subscription's compiled plan.
    ///
    /// # Errors
    /// Propagates schema/rule validation and plan compilation errors.
    pub fn new<R: Rng + ?Sized>(
        schema: RecordSchema,
        config: LinkageConfig,
        rng: &mut R,
    ) -> Result<Self> {
        let delta = config.delta;
        let matcher = SharedStreamMatcher::new(schema.clone(), config, rng)?;
        Ok(Self {
            matcher,
            subs: Mutex::new(Subs {
                next_id: 1,
                stamp: 0,
                watermark_ms: 0,
                entries: Vec::new(),
                retain: HashMap::new(),
            }),
            delta,
            schema,
        })
    }

    /// Registers a subscription: validates the window, compiles the rule
    /// into its pruned plan, and returns the subscription id.
    ///
    /// # Errors
    /// Propagates window validation and rule compilation errors.
    pub fn subscribe<R: Rng + ?Sized>(&self, spec: SubscriptionSpec, rng: &mut R) -> Result<u64> {
        spec.window.validate()?;
        // Compile outside the subscription lock: plan construction is the
        // expensive part and needs no engine state.
        let compiled = CompiledRule::compile(&self.schema, spec.rule, self.delta, spec.cap, rng)?;
        let mut subs = self.subs.lock();
        let id = subs.next_id;
        subs.next_id += 1;
        subs.entries.push(SubEntry {
            id,
            compiled,
            window: WindowState::new(spec.window, spec.late),
            stats: MatchStats::default(),
        });
        Ok(id)
    }

    /// The schema records are embedded against.
    pub fn schema(&self) -> &RecordSchema {
        &self.schema
    }

    /// Removes a subscription, releasing its window holds. Records no
    /// other subscription retains are evicted through the delete path.
    /// Returns whether the subscription existed.
    pub fn unsubscribe(&self, sub: u64) -> bool {
        let mut subs = self.subs.lock();
        let Some(idx) = subs.entries.iter().position(|e| e.id == sub) else {
            return false;
        };
        let entry = subs.entries.swap_remove(idx);
        let ids: Vec<u64> = entry.window.live_ids().collect();
        for id in ids {
            Self::release(&mut subs.retain, &self.matcher, id);
        }
        true
    }

    fn release(retain: &mut HashMap<u64, usize>, matcher: &SharedStreamMatcher, id: u64) -> bool {
        match retain.get_mut(&id) {
            Some(n) if *n > 1 => {
                *n -= 1;
                false
            }
            Some(_) => {
                retain.remove(&id);
                matcher.remove(id);
                true
            }
            None => false,
        }
    }

    /// Number of live subscriptions.
    pub fn subscriptions(&self) -> usize {
        self.subs.lock().entries.len()
    }

    /// Records currently retained in the shared store.
    pub fn len(&self) -> usize {
        self.matcher.len()
    }

    /// True when the shared store holds no records.
    pub fn is_empty(&self) -> bool {
        self.matcher.is_empty()
    }

    /// Accumulated matching counters for a subscription's probes.
    pub fn sub_stats(&self, sub: u64) -> Option<MatchStats> {
        self.subs
            .lock()
            .entries
            .iter()
            .find(|e| e.id == sub)
            .map(|e| e.stats)
    }

    /// Total LSH tables a subscription's compiled plan probes per record
    /// (`Σ L` over the structures its rule requires).
    pub fn sub_tables(&self, sub: u64) -> Option<usize> {
        self.subs
            .lock()
            .entries
            .iter()
            .find(|e| e.id == sub)
            .map(|e| e.compiled.tables())
    }

    /// Observes one record with event time `event_ms`: base-matches and
    /// indexes it (upsert semantics — streams legitimately re-send ids),
    /// then fans out to every subscription.
    ///
    /// # Errors
    /// Returns [`cbv_hb::Error::FieldCountMismatch`] on malformed records.
    pub fn observe(&self, record: &Record, event_ms: u64) -> Result<ObserveOutcome> {
        let mut subs = self.subs.lock();
        let subs = &mut *subs;
        let embedded = self.matcher.embed(record)?;
        let base_matches = self.matcher.observe_upsert(record)?;
        subs.stamp += 1;
        let stamp = subs.stamp;
        let prior_watermark = subs.watermark_ms;
        subs.watermark_ms = prior_watermark.max(event_ms);
        let watermark = subs.watermark_ms;

        let mut out = ObserveOutcome {
            base_matches,
            ..ObserveOutcome::default()
        };
        let mut admitted = false;
        for entry in &mut subs.entries {
            // Late-arrival policy first: a refused record must not evict.
            if !entry.window.admits(event_ms, prior_watermark) {
                out.late_drops += 1;
                continue;
            }
            // Probe this subscription's plan against its current window.
            let window = &entry.window;
            let compiled = &entry.compiled;
            let matched = self.matcher.with_store(|store| {
                compiled.probe(
                    &embedded,
                    |id| {
                        if id != record.id && window.contains(id) {
                            store.get(id)
                        } else {
                            None
                        }
                    },
                    &mut entry.stats,
                )
            });
            if !matched.is_empty() {
                out.events.push(SubMatch {
                    sub: entry.id,
                    record_id: record.id,
                    matched,
                });
            }
            // Admit, then evict whatever the admission pushed out.
            entry.compiled.index(&embedded);
            if entry.window.push(record.id, stamp, event_ms) {
                *subs.retain.entry(record.id).or_insert(0) += 1;
            }
            admitted = true;
            for id in entry.window.evict(watermark) {
                if Self::release(&mut subs.retain, &self.matcher, id) {
                    out.evicted += 1;
                }
            }
        }
        // Retained by nobody (zero subscriptions, or every policy refused
        // it): take it straight back out of the shared store.
        if !admitted && !subs.retain.contains_key(&record.id) {
            self.matcher.remove(record.id);
        }
        Ok(out)
    }

    /// Time-based eviction tick: advances the watermark to `now_ms` and
    /// expires time windows, so an idle stream still sheds old records.
    /// Returns how many records left the shared store.
    pub fn evict_due(&self, now_ms: u64) -> u64 {
        let mut subs = self.subs.lock();
        let subs = &mut *subs;
        subs.watermark_ms = subs.watermark_ms.max(now_ms);
        let watermark = subs.watermark_ms;
        let mut evicted = 0;
        for entry in &mut subs.entries {
            for id in entry.window.evict(watermark) {
                if Self::release(&mut subs.retain, &self.matcher, id) {
                    evicted += 1;
                }
            }
        }
        evicted
    }

    /// Deletes a record everywhere: shared store (tombstone) and every
    /// subscription window. Returns whether any state changed.
    pub fn remove(&self, id: u64) -> bool {
        let mut subs = self.subs.lock();
        let mut any = false;
        for entry in &mut subs.entries {
            any |= entry.window.forget(id);
        }
        subs.retain.remove(&id);
        self.matcher.remove(id) || any
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::{LateArrival, WindowSpec};
    use cbv_hb::schema::AttributeSpec;
    use cbv_hb::Rule;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use textdist::Alphabet;

    fn engine(seed: u64) -> (WindowedEngine, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let schema = RecordSchema::build(
            Alphabet::linkage(),
            vec![
                AttributeSpec::new("FirstName", 2, 64, false, 5),
                AttributeSpec::new("LastName", 2, 64, false, 5),
            ],
            &mut rng,
        );
        let rule = Rule::and([Rule::pred(0, 4), Rule::pred(1, 4)]);
        let e = WindowedEngine::new(schema, LinkageConfig::rule_aware(rule), &mut rng).unwrap();
        (e, rng)
    }

    fn spec(rule: Rule, window: WindowSpec) -> SubscriptionSpec {
        SubscriptionSpec::new(rule, window)
    }

    #[test]
    fn zero_subscriptions_retain_nothing() {
        let (e, _) = engine(1);
        let out = e.observe(&Record::new(1, ["JOHN", "SMITH"]), 0).unwrap();
        assert!(out.events.is_empty());
        assert_eq!(e.len(), 0, "no subscription retains the record");
    }

    #[test]
    fn count_window_eviction_stops_matching() {
        let (e, mut rng) = engine(2);
        let sub = e
            .subscribe(spec(Rule::pred(0, 4), WindowSpec::Count(2)), &mut rng)
            .unwrap();
        e.observe(&Record::new(1, ["JOHN", "AAA"]), 0).unwrap();
        e.observe(&Record::new(2, ["MARY", "BBB"]), 0).unwrap();
        // Window full: id 1 is evicted by the next admission.
        let out = e.observe(&Record::new(3, ["PETER", "CCC"]), 0).unwrap();
        assert_eq!(out.evicted, 1);
        assert_eq!(e.len(), 2);
        // A twin of the evicted record no longer matches it.
        let out = e.observe(&Record::new(4, ["JOHN", "DDD"]), 0).unwrap();
        assert!(
            out.events.is_empty(),
            "evicted record must not match: {:?}",
            out.events
        );
        // But a twin of a still-windowed record does.
        let out = e.observe(&Record::new(5, ["PETER", "EEE"]), 0).unwrap();
        assert_eq!(out.events.len(), 1);
        assert_eq!(out.events[0].sub, sub);
        assert_eq!(out.events[0].matched, vec![3]);
    }

    #[test]
    fn two_subscriptions_receive_disjoint_events() {
        let (e, mut rng) = engine(3);
        let first = e
            .subscribe(spec(Rule::pred(0, 4), WindowSpec::Count(100)), &mut rng)
            .unwrap();
        let last = e
            .subscribe(spec(Rule::pred(1, 4), WindowSpec::Count(100)), &mut rng)
            .unwrap();
        e.observe(&Record::new(1, ["JOHN", "SMITH"]), 0).unwrap();
        // Same first name, unrelated last name → only `first` fires.
        let out = e
            .observe(&Record::new(2, ["JOHN", "WILLOUGHBY"]), 0)
            .unwrap();
        let subs: Vec<u64> = out.events.iter().map(|ev| ev.sub).collect();
        assert_eq!(subs, vec![first]);
        // Same last name, unrelated first name → only `last` fires.
        let out = e
            .observe(&Record::new(3, ["BARTHOLOMEW", "SMITH"]), 0)
            .unwrap();
        let subs: Vec<u64> = out.events.iter().map(|ev| ev.sub).collect();
        assert_eq!(subs, vec![last]);
        assert_eq!(out.events[0].matched, vec![1]);
    }

    #[test]
    fn time_window_and_late_arrival_policies() {
        let (e, mut rng) = engine(4);
        let mut drop_spec = spec(Rule::pred(0, 4), WindowSpec::TimeMs(100));
        drop_spec.late = LateArrival::Drop;
        let strict = e.subscribe(drop_spec, &mut rng).unwrap();
        let lenient = e
            .subscribe(spec(Rule::pred(0, 4), WindowSpec::TimeMs(100)), &mut rng)
            .unwrap();
        e.observe(&Record::new(1, ["JOHN", "AAA"]), 1000).unwrap();
        // A late twin (event time 950 < watermark 1000) still inside the
        // window span: Drop refuses it, ApplyIfInWindow matches it.
        let out = e.observe(&Record::new(2, ["JOHN", "BBB"]), 950).unwrap();
        assert_eq!(out.late_drops, 1);
        let subs: Vec<u64> = out.events.iter().map(|ev| ev.sub).collect();
        assert_eq!(subs, vec![lenient]);
        // Far past the span: both refuse (Drop by policy, lenient because
        // the record falls outside the window).
        let out = e.observe(&Record::new(3, ["JOHN", "CCC"]), 10).unwrap();
        assert_eq!(out.late_drops, 2);
        assert!(out.events.is_empty());
        // Idle-stream tick expires the whole window.
        let evicted = e.evict_due(5000);
        assert!(evicted >= 2, "tick evicted {evicted}");
        let out = e.observe(&Record::new(4, ["JOHN", "DDD"]), 5000).unwrap();
        assert!(out.events.is_empty(), "expired records must not match");
        let _ = (strict, lenient);
    }

    #[test]
    fn upsert_and_remove_flow_through_windows() {
        let (e, mut rng) = engine(5);
        e.subscribe(spec(Rule::pred(0, 4), WindowSpec::Count(10)), &mut rng)
            .unwrap();
        e.observe(&Record::new(1, ["JOHN", "AAA"]), 0).unwrap();
        // Re-observing the same id is an upsert, not an error, and must
        // not self-match.
        let out = e.observe(&Record::new(1, ["JOHN", "AAA"]), 1).unwrap();
        assert!(out.events.is_empty(), "no self-match on upsert");
        assert_eq!(e.len(), 1);
        // External delete: the record stops matching everywhere.
        assert!(e.remove(1));
        let out = e.observe(&Record::new(2, ["JOHN", "BBB"]), 2).unwrap();
        assert!(out.events.is_empty());
    }

    #[test]
    fn unsubscribe_releases_retained_records() {
        let (e, mut rng) = engine(6);
        let a = e
            .subscribe(spec(Rule::pred(0, 4), WindowSpec::Count(10)), &mut rng)
            .unwrap();
        let b = e
            .subscribe(spec(Rule::pred(1, 4), WindowSpec::Count(10)), &mut rng)
            .unwrap();
        e.observe(&Record::new(1, ["JOHN", "SMITH"]), 0).unwrap();
        assert_eq!(e.len(), 1);
        assert!(e.unsubscribe(a));
        assert_eq!(e.len(), 1, "still retained by the other window");
        assert!(e.unsubscribe(b));
        assert_eq!(e.len(), 0, "last hold released evicts the record");
        assert!(!e.unsubscribe(b), "double unsubscribe is a no-op");
        assert_eq!(e.subscriptions(), 0);
    }

    #[test]
    fn base_matches_mirror_plain_streaming() {
        let (e, mut rng) = engine(7);
        e.subscribe(
            spec(
                Rule::and([Rule::pred(0, 4), Rule::pred(1, 4)]),
                WindowSpec::Count(10),
            ),
            &mut rng,
        )
        .unwrap();
        e.observe(&Record::new(1, ["JOHN", "SMITH"]), 0).unwrap();
        let out = e.observe(&Record::new(2, ["JON", "SMITH"]), 1).unwrap();
        assert_eq!(out.base_matches, vec![1], "engine base rule fires");
        assert_eq!(out.events.len(), 1, "subscription fires too");
        assert!(e.sub_stats(out.events[0].sub).unwrap().matched >= 1);
    }
}
