//! Experiment harness: regenerates every table and figure of the paper.
//!
//! ```text
//! experiments <subcommand> [--records N] [--trials T] [--seed S] [--out DIR]
//!
//! subcommands:
//!   table3    attribute statistics b, m_opt, K (Table 3)
//!   fig6      rule-aware vs standard blocking: PC/PQ for C1, C2, C3
//!   fig7      PC versus confidence ratio r (K = 35)
//!   fig8a     running time versus K (PL and PH)
//!   fig8b     embedding time per method
//!   fig9      Pairs Completeness per method (also emits fig10/fig12 data)
//!   fig11     PC per perturbation operation (PL and PH)
//!   fig12     RR/PC and total running time per method
//!   missing   extension: PC under missing values (rule-aware OR helps)
//!   all       everything above
//! ```

use cbv_hb::{
    cvector::optimal_m, metrics::evaluate, AttributeSpec, LinkageConfig, LinkagePipeline, Record,
    RecordSchema, Rule,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rl_baselines::{BfhLinker, CbvHbLinker, HarraLinker, SmEbLinker};
use rl_bench::report::{f3, secs, write_json, Table};
use rl_bench::runner::{average, run_linker, MethodResult};
use rl_datagen::perturb::apply_op;
use rl_datagen::{
    DatasetPair, DblpSource, NcvrSource, Op, PairConfig, PerturbationScheme, RecordSource,
};
use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::time::Instant;
use textdist::Alphabet;

#[derive(Debug, Clone)]
struct Opts {
    records: usize,
    trials: u64,
    seed: u64,
    out: PathBuf,
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        eprintln!("usage: experiments <table3|fig6|fig7|fig8a|fig8b|fig9|fig11|fig12|missing|guarantee|rho|jw|privacy|kopt|scale|multiprobe|traditional|qsweep|nonstd|all> [--records N] [--trials T] [--seed S] [--out DIR]");
        std::process::exit(2);
    };
    let mut opts = Opts {
        records: 5_000,
        trials: 3,
        seed: 42,
        out: PathBuf::from("."),
    };
    let rest: Vec<String> = args.collect();
    let mut i = 0;
    while i < rest.len() {
        let need = |i: usize| {
            rest.get(i + 1)
                .unwrap_or_else(|| panic!("missing value for {}", rest[i]))
        };
        match rest[i].as_str() {
            "--records" => opts.records = need(i).parse().expect("--records N"),
            "--trials" => opts.trials = need(i).parse().expect("--trials T"),
            "--seed" => opts.seed = need(i).parse().expect("--seed S"),
            "--out" => opts.out = PathBuf::from(need(i)),
            other => panic!("unknown flag {other}"),
        }
        i += 2;
    }
    match cmd.as_str() {
        "table3" => table3(&opts),
        "fig6" => fig6(&opts),
        "fig7" => fig7(&opts),
        "fig8a" => fig8a(&opts),
        "fig8b" => fig8b(&opts),
        "fig9" | "fig10" => compare(&opts),
        "fig11" => fig11(&opts),
        "fig12" => compare(&opts),
        "missing" => missing(&opts),
        "guarantee" => guarantee(&opts),
        "rho" => rho_sweep(&opts),
        "jw" => jw_study(&opts),
        "privacy" => privacy(&opts),
        "kopt" => kopt(&opts),
        "scale" => scale(&opts),
        "multiprobe" => multiprobe(&opts),
        "traditional" => traditional(&opts),
        "qsweep" => qsweep(&opts),
        "nonstd" => nonstd(&opts),
        "all" => {
            table3(&opts);
            fig6(&opts);
            fig7(&opts);
            fig8a(&opts);
            fig8b(&opts);
            compare(&opts);
            fig11(&opts);
            missing(&opts);
            guarantee(&opts);
            rho_sweep(&opts);
            jw_study(&opts);
            privacy(&opts);
            kopt(&opts);
            scale(&opts);
            multiprobe(&opts);
            traditional(&opts);
            qsweep(&opts);
            nonstd(&opts);
        }
        other => {
            eprintln!("unknown subcommand {other}");
            std::process::exit(2);
        }
    }
}

// ---------------------------------------------------------------- helpers

/// Table 3's per-attribute K values.
fn paper_ks() -> Vec<u32> {
    vec![5, 5, 10, 10]
}

/// Fits the paper-style schema (ρ = 1, r = 1/3, unpadded bigrams) on a pair.
fn fitted_schema(pair: &DatasetPair, ks: &[u32], r: f64, rng: &mut StdRng) -> RecordSchema {
    let specs: Vec<AttributeSpec> = (0..4)
        .map(|f| {
            let sample = pair.a.iter().chain(&pair.b).take(5_000).map(|x| x.field(f));
            AttributeSpec::fitted(format!("f{f}"), 2, sample, 1.0, r, false, ks[f])
        })
        .collect();
    RecordSchema::build(Alphabet::linkage(), specs, rng)
}

/// Within-set near-duplicate rate used across experiments: voter-roll-like
/// data contains near-identical records that are not cross-set matches.
const DUP_RATE: f64 = 0.1;

fn ncvr_pair(records: usize, scheme: PerturbationScheme, seed: u64) -> DatasetPair {
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg = PairConfig::new(records, scheme).with_duplicates(DUP_RATE);
    DatasetPair::generate(&NcvrSource, cfg, &mut rng)
}

fn dblp_pair(records: usize, scheme: PerturbationScheme, seed: u64) -> DatasetPair {
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg = PairConfig::new(records, scheme).with_duplicates(DUP_RATE);
    DatasetPair::generate(&DblpSource, cfg, &mut rng)
}

/// Runs a core pipeline over a pair and scores it against `truth`.
fn run_pipeline(
    schema: RecordSchema,
    config: LinkageConfig,
    pair: &DatasetPair,
    truth: &HashSet<(u64, u64)>,
    rng: &mut StdRng,
) -> (MethodResult, f64) {
    let t0 = Instant::now();
    let mut p = LinkagePipeline::new(schema, config, rng).expect("valid config");
    p.index(&pair.a).expect("well-formed records");
    let r = p.link(&pair.b).expect("well-formed records");
    let total = t0.elapsed().as_secs_f64();
    let quality = evaluate(&r.matches, truth, r.stats.candidates, pair.cross_size());
    (
        MethodResult {
            name: "cBV-HB".into(),
            quality,
            embed_secs: (p.index_timings().embed_nanos + r.timings.embed_nanos) as f64 / 1e9,
            block_secs: p.index_timings().block_nanos as f64 / 1e9,
            match_secs: r.timings.match_nanos as f64 / 1e9,
            total_secs: total,
        },
        total,
    )
}

// ---------------------------------------------------------------- table 3

fn table3(opts: &Opts) {
    println!("\n## Table 3 — attribute-level parameters (ρ = 1, r = 1/3)");
    let mut out_rows = Vec::new();
    let mut t = Table::new(
        "Table 3 reproduction",
        [
            "source",
            "attribute",
            "b (measured)",
            "m_opt",
            "K",
            "b (paper)",
            "m_opt (paper)",
        ],
    );
    let paper = [
        (
            "NCVR",
            ["FirstName", "LastName", "Address", "Town"],
            [5.1, 5.0, 20.0, 7.2],
            [15usize, 15, 68, 22],
        ),
        (
            "DBLP",
            ["FirstName", "LastName", "Title", "Year"],
            [4.8, 6.2, 64.8, 3.0],
            [14, 19, 226, 8],
        ),
    ];
    for (src, names, b_paper, m_paper) in paper {
        let mut rng = StdRng::seed_from_u64(opts.seed);
        let records: Vec<Record> = if src == "NCVR" {
            NcvrSource.sample_many(opts.records.max(2_000), &mut rng)
        } else {
            DblpSource.sample_many(opts.records.max(2_000), &mut rng)
        };
        let mut total_m = 0usize;
        for f in 0..4 {
            let b = cbv_hb::schema::measure_b(records.iter().map(|r| r.field(f)), 2, false);
            let m = optimal_m(b, 1.0, 1.0 / 3.0);
            total_m += m;
            let k = paper_ks()[f];
            t.row([
                src.to_string(),
                names[f].to_string(),
                format!("{b:.1}"),
                m.to_string(),
                k.to_string(),
                format!("{:.1}", b_paper[f]),
                m_paper[f].to_string(),
            ]);
            out_rows.push(serde_json::json!({
                "source": src, "attribute": names[f], "b": b, "m_opt": m,
                "b_paper": b_paper[f], "m_opt_paper": m_paper[f],
            }));
        }
        t.row([
            src.to_string(),
            "TOTAL".into(),
            String::new(),
            total_m.to_string(),
            String::new(),
            String::new(),
            if src == "NCVR" {
                "120".into()
            } else {
                "267".to_string()
            },
        ]);
    }
    t.print();
    write_json(&opts.out, "table3", &out_rows);
}

// ---------------------------------------------------------------- figure 6

/// The three experimental rules of Section 6.2 over thresholds
/// θ⁰ = θ¹ = 4, θ² = 8.
fn rule_c1() -> Rule {
    Rule::and([Rule::pred(0, 4), Rule::pred(1, 4), Rule::pred(2, 8)])
}
fn rule_c2() -> Rule {
    Rule::or([
        Rule::and([Rule::pred(0, 4), Rule::pred(1, 4)]),
        Rule::pred(2, 8),
    ])
}
fn rule_c3() -> Rule {
    Rule::and([Rule::pred(0, 4), Rule::not(Rule::pred(1, 4))])
}

/// Perturbs A-records so the resulting pairs satisfy C3: one light error on
/// f0 and a *replaced* last name (a different corpus surname, far beyond
/// θ¹ = 4 — the married-name tracing scenario NOT rules model).
fn c3_pair(records: usize, seed: u64) -> DatasetPair {
    use rand::RngExt;
    let mut pair = ncvr_pair(records, PerturbationScheme::SingleOp(Op::Substitute), seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC3);
    let a_by_id: HashMap<u64, Record> = pair.a.iter().map(|r| (r.id, r.clone())).collect();
    let mut gt: Vec<(u64, u64)> = pair.ground_truth.iter().copied().collect();
    gt.sort_unstable(); // HashSet order varies per process; keep rng stream stable
    let surnames = rl_datagen::corpus::LAST_NAMES;
    for (ia, ib) in gt {
        let src = &a_by_id[&ia];
        let mut fields = src.fields.clone();
        let (v0, _) = apply_op(&fields[0], Op::Substitute, &mut rng);
        fields[0] = v0;
        fields[1] = loop {
            let cand = surnames[rng.random_range(0..surnames.len())];
            if cand != src.field(1) {
                break cand.to_string();
            }
        };
        let slot = pair.b.iter_mut().find(|r| r.id == ib).expect("b record");
        slot.fields = fields;
    }
    pair
}

fn fig6(opts: &Opts) {
    println!("\n## Figure 6 — attribute-level (rule-aware) vs standard LSH blocking");
    let mut t = Table::new(
        "Figure 6 reproduction (NCVR)",
        ["rule", "approach", "PC", "PQ"],
    );
    let mut json = Vec::new();
    for (name, rule, make_pair) in [
        ("C1", rule_c1(), ncvr_heavy as fn(usize, u64) -> DatasetPair),
        ("C2", rule_c2(), ncvr_heavy),
        ("C3", rule_c3(), c3_pair),
    ] {
        let mut attr_results = Vec::new();
        let mut std_results = Vec::new();
        for trial in 0..opts.trials {
            let seed = opts.seed + trial;
            let pair = make_pair(opts.records, seed);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xF16);
            let schema = fitted_schema(&pair, &paper_ks(), 1.0 / 3.0, &mut rng);
            // Ground truth: origin pairs that satisfy the rule on the shared
            // embedding (both approaches classify with this same rule).
            let truth = rule_truth(&schema, &pair, &rule);
            let (attr, _) = run_pipeline(
                schema.clone(),
                LinkageConfig::rule_aware(rule.clone()),
                &pair,
                &truth,
                &mut rng,
            );
            // Standard approach: record-level sampling; θ = sum of the
            // positive predicates' thresholds (the rule-unaware budget).
            let theta: u32 = positive_theta_sum(&rule);
            let (std_r, _) = run_pipeline(
                schema,
                LinkageConfig::record_level(rule.clone(), theta, 30),
                &pair,
                &truth,
                &mut rng,
            );
            attr_results.push(attr);
            std_results.push(std_r);
        }
        let attr = average(&attr_results);
        let std_r = average(&std_results);
        for (approach, r) in [("attribute-level", &attr), ("standard", &std_r)] {
            t.row([
                name.to_string(),
                approach.to_string(),
                f3(r.quality.pc),
                f3(r.quality.pq),
            ]);
            json.push(serde_json::json!({
                "rule": name, "approach": approach,
                "pc": r.quality.pc, "pq": r.quality.pq,
            }));
        }
    }
    t.print();
    write_json(&opts.out, "fig6", &json);
}

fn ncvr_heavy(records: usize, seed: u64) -> DatasetPair {
    ncvr_pair(records, PerturbationScheme::Heavy, seed)
}

/// Origin pairs that satisfy `rule` on their embedded distances.
fn rule_truth(schema: &RecordSchema, pair: &DatasetPair, rule: &Rule) -> HashSet<(u64, u64)> {
    let a_by_id: HashMap<u64, &Record> = pair.a.iter().map(|r| (r.id, r)).collect();
    let b_by_id: HashMap<u64, &Record> = pair.b.iter().map(|r| (r.id, r)).collect();
    pair.ground_truth
        .iter()
        .filter(|(ia, ib)| {
            let ea = schema.embed(a_by_id[ia]).expect("well-formed");
            let eb = schema.embed(b_by_id[ib]).expect("well-formed");
            rule.evaluate(&ea.distances(&eb))
        })
        .copied()
        .collect()
}

fn positive_theta_sum(rule: &Rule) -> u32 {
    match rule {
        Rule::Pred(p) => p.theta,
        Rule::And(rs) | Rule::Or(rs) => rs
            .iter()
            .filter(|r| !matches!(r, Rule::Not(_)))
            .map(positive_theta_sum)
            .sum(),
        Rule::Not(_) => 0,
    }
}

// ---------------------------------------------------------------- figure 7

fn fig7(opts: &Opts) {
    println!("\n## Figure 7 — PC versus confidence ratio r (K = 35, fixed L)");
    // Equation 2 would re-derive L for every r and flatten the curve; the
    // figure's point is the embedding geometry, so L is pinned at the
    // r = 1/3 design point and K = 35 as in the paper.
    let k = 35u32;
    let theta = 4u32;
    let l_design = {
        let pair = ncvr_pair(opts.records, PerturbationScheme::Light, opts.seed);
        let mut rng = StdRng::seed_from_u64(opts.seed);
        let schema = fitted_schema(&pair, &paper_ks(), 1.0 / 3.0, &mut rng);
        let p = rl_lsh::params::base_success_probability(theta, schema.total_size());
        rl_lsh::params::optimal_l(p.powi(k as i32), 0.1)
    };
    let mut t = Table::new(
        "Figure 7 reproduction (NCVR, PL, record-level HB)",
        ["r", "m̄_opt", "PC"],
    );
    let mut json = Vec::new();
    for r_val in [0.5, 0.4, 1.0 / 3.0, 0.25, 0.2] {
        let mut results = Vec::new();
        let mut mbar = 0usize;
        for trial in 0..opts.trials {
            let seed = opts.seed + trial;
            let pair = ncvr_pair(opts.records, PerturbationScheme::Light, seed);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xF17);
            let schema = fitted_schema(&pair, &paper_ks(), r_val, &mut rng);
            mbar = schema.total_size();
            let rule = Rule::and((0..4).map(|i| Rule::pred(i, theta)));
            let config = LinkageConfig {
                delta: 0.1,
                mode: cbv_hb::pipeline::BlockingMode::RecordLevelFixedL {
                    theta,
                    k,
                    l: l_design,
                },
                rule,
                block: Default::default(),
            };
            let (res, _) =
                run_pipeline(schema, config, &pair, &pair.ground_truth.clone(), &mut rng);
            results.push(res);
        }
        let avg = average(&results);
        t.row([format!("{r_val:.3}"), mbar.to_string(), f3(avg.quality.pc)]);
        json.push(serde_json::json!({
            "r": r_val, "m_bar": mbar, "pc": avg.quality.pc, "l": l_design, "k": k,
        }));
    }
    t.print();
    write_json(&opts.out, "fig7", &json);
}

// ---------------------------------------------------------------- figure 8

fn fig8a(opts: &Opts) {
    println!("\n## Figure 8(a) — running time versus K");
    let mut t = Table::new(
        "Figure 8(a) reproduction (NCVR)",
        ["K", "scheme", "L", "total time", "PC"],
    );
    let mut json = Vec::new();
    // Small K exposes bucket over-population (few, crowded buckets); large
    // K grows L via Equation 2. The U-shape's left branch only materializes
    // once buckets hold many records, i.e. at larger --records.
    for k in [5u32, 10, 15, 20, 25, 30, 35, 40] {
        for (scheme_name, scheme, theta) in [
            ("PL", PerturbationScheme::Light, 4u32),
            ("PH", PerturbationScheme::Heavy, 16),
        ] {
            if scheme_name == "PH" && k > 35 {
                continue; // L explodes past a thousand tables
            }
            let mut results = Vec::new();
            let mut l_used = 0usize;
            for trial in 0..opts.trials {
                let seed = opts.seed + trial;
                let pair = ncvr_pair(opts.records, scheme, seed);
                let mut rng = StdRng::seed_from_u64(seed ^ u64::from(k));
                let schema = fitted_schema(&pair, &paper_ks(), 1.0 / 3.0, &mut rng);
                let rule = Rule::and(
                    (0..4)
                        .map(|i| Rule::pred(i, if i == 2 && scheme_name == "PH" { 8 } else { 4 })),
                );
                let config = LinkageConfig::record_level(rule, theta, k);
                let t0 = Instant::now();
                let mut p = LinkagePipeline::new(schema, config, &mut rng).expect("valid");
                l_used = p.plan().total_tables();
                p.index(&pair.a).expect("ok");
                let r = p.link(&pair.b).expect("ok");
                let total = t0.elapsed().as_secs_f64();
                let q = evaluate(
                    &r.matches,
                    &pair.ground_truth,
                    r.stats.candidates,
                    pair.cross_size(),
                );
                results.push(MethodResult {
                    name: "cBV-HB".into(),
                    quality: q,
                    embed_secs: 0.0,
                    block_secs: 0.0,
                    match_secs: 0.0,
                    total_secs: total,
                });
            }
            let avg = average(&results);
            t.row([
                k.to_string(),
                scheme_name.to_string(),
                l_used.to_string(),
                secs(avg.total_secs),
                f3(avg.quality.pc),
            ]);
            json.push(serde_json::json!({
                "k": k, "scheme": scheme_name, "l": l_used,
                "total_secs": avg.total_secs, "pc": avg.quality.pc,
            }));
        }
    }
    t.print();
    write_json(&opts.out, "fig8a", &json);
}

fn fig8b(opts: &Opts) {
    println!("\n## Figure 8(b) — embedding time per method");
    let mut t = Table::new(
        "Figure 8(b) reproduction (NCVR, PL)",
        ["method", "embedding time"],
    );
    let mut json = Vec::new();
    let pair = ncvr_pair(opts.records, PerturbationScheme::Light, opts.seed);
    let results = run_all_methods(&pair, PerturbationScheme::Light, opts.seed);
    for r in &results {
        t.row([r.name.clone(), secs(r.embed_secs)]);
        json.push(serde_json::json!({"method": r.name, "embed_secs": r.embed_secs}));
    }
    t.print();
    write_json(&opts.out, "fig8b", &json);
}

// ------------------------------------------------- figures 9, 10, 12

fn run_all_methods(pair: &DatasetPair, scheme: PerturbationScheme, seed: u64) -> Vec<MethodResult> {
    let heavy = matches!(
        scheme,
        PerturbationScheme::Heavy | PerturbationScheme::HeavyOp(_)
    );
    let mut out = Vec::new();
    let mut cbv: CbvHbLinker = if heavy {
        CbvHbLinker::paper_ph(4, seed)
    } else {
        CbvHbLinker::paper_pl(4, seed)
    };
    out.push(run_linker(&mut cbv, pair));
    let mut bfh = if heavy {
        BfhLinker::paper_ph(4, seed)
    } else {
        BfhLinker::paper_pl(4, seed)
    };
    out.push(run_linker(&mut bfh, pair));
    let mut harra = if heavy {
        HarraLinker::paper_ph(seed)
    } else {
        HarraLinker::paper_pl(seed)
    };
    out.push(run_linker(&mut harra, pair));
    let mut smeb = if heavy {
        SmEbLinker::paper_ph(4, seed)
    } else {
        SmEbLinker::paper_pl(4, seed)
    };
    out.push(run_linker(&mut smeb, pair));
    out
}

fn compare(opts: &Opts) {
    println!("\n## Figures 9 / 10 / 12 — method comparison");
    let mut by_cell: HashMap<(String, String, String), MethodResult> = HashMap::new();
    for (src_name, make) in [
        (
            "NCVR",
            ncvr_pair as fn(usize, PerturbationScheme, u64) -> DatasetPair,
        ),
        ("DBLP", dblp_pair),
    ] {
        for (scheme_name, scheme) in [
            ("PL", PerturbationScheme::Light),
            ("PH", PerturbationScheme::Heavy),
        ] {
            let mut per_method: HashMap<String, Vec<MethodResult>> = HashMap::new();
            for trial in 0..opts.trials {
                let seed = opts.seed + trial;
                let pair = make(opts.records, scheme, seed);
                for r in run_all_methods(&pair, scheme, seed) {
                    per_method.entry(r.name.clone()).or_default().push(r);
                }
            }
            for (m, rs) in per_method {
                by_cell.insert(
                    (m.clone(), src_name.to_string(), scheme_name.to_string()),
                    average(&rs),
                );
            }
        }
    }
    let methods = ["cBV-HB", "BfH", "HARRA", "SM-EB"];
    let cells = [
        ("NCVR", "PL"),
        ("NCVR", "PH"),
        ("DBLP", "PL"),
        ("DBLP", "PH"),
    ];
    let mut fig9 = Table::new(
        "Figure 9 — Pairs Completeness",
        ["method", "NCVR PL", "NCVR PH", "DBLP PL", "DBLP PH"],
    );
    let mut fig10 = Table::new(
        "Figure 10 — Pairs Quality",
        ["method", "NCVR PL", "NCVR PH", "DBLP PL", "DBLP PH"],
    );
    let mut fig12a = Table::new(
        "Figure 12(a) — RR and PC (NCVR, PL)",
        ["method", "RR", "PC"],
    );
    let mut fig12b = Table::new(
        "Figure 12(b) — total running time (NCVR)",
        ["method", "PL", "PH"],
    );
    let mut json = Vec::new();
    for m in methods {
        let get = |src: &str, sch: &str| {
            by_cell
                .get(&(m.to_string(), src.to_string(), sch.to_string()))
                .expect("cell computed")
        };
        fig9.row(
            std::iter::once(m.to_string())
                .chain(cells.iter().map(|(s, c)| f3(get(s, c).quality.pc))),
        );
        fig10.row(
            std::iter::once(m.to_string())
                .chain(cells.iter().map(|(s, c)| f3(get(s, c).quality.pq))),
        );
        let pl = get("NCVR", "PL");
        fig12a.row([m.to_string(), f3(pl.quality.rr), f3(pl.quality.pc)]);
        fig12b.row([
            m.to_string(),
            secs(pl.total_secs),
            secs(get("NCVR", "PH").total_secs),
        ]);
        for (s, c) in cells {
            let r = get(s, c);
            json.push(serde_json::json!({
                "method": m, "source": s, "scheme": c,
                "pc": r.quality.pc, "pq": r.quality.pq, "rr": r.quality.rr,
                "embed_secs": r.embed_secs, "total_secs": r.total_secs,
                "candidates": r.quality.candidates,
            }));
        }
    }
    fig9.print();
    fig10.print();
    fig12a.print();
    fig12b.print();
    write_json(&opts.out, "fig9_10_12", &json);
}

// ---------------------------------------------------------------- figure 11

fn fig11(opts: &Opts) {
    println!("\n## Figure 11 — PC per perturbation operation");
    let mut t = Table::new(
        "Figure 11 reproduction (NCVR)",
        ["scheme", "operation", "cBV-HB", "BfH", "HARRA", "SM-EB"],
    );
    let mut json = Vec::new();
    for (scheme_name, make_scheme) in [
        (
            "PL",
            PerturbationScheme::SingleOp as fn(Op) -> PerturbationScheme,
        ),
        ("PH", PerturbationScheme::HeavyOp),
    ] {
        for op in Op::ALL {
            let mut per_method: HashMap<String, Vec<MethodResult>> = HashMap::new();
            for trial in 0..opts.trials {
                let seed = opts.seed + trial;
                let scheme = make_scheme(op);
                let pair = ncvr_pair(opts.records, scheme, seed);
                for r in run_all_methods(&pair, scheme, seed) {
                    per_method.entry(r.name.clone()).or_default().push(r);
                }
            }
            let cell = |m: &str| f3(average(&per_method[m]).quality.pc);
            t.row([
                scheme_name.to_string(),
                op.label().to_string(),
                cell("cBV-HB"),
                cell("BfH"),
                cell("HARRA"),
                cell("SM-EB"),
            ]);
            for m in ["cBV-HB", "BfH", "HARRA", "SM-EB"] {
                json.push(serde_json::json!({
                    "scheme": scheme_name, "op": op.label(), "method": m,
                    "pc": average(&per_method[m]).quality.pc,
                }));
            }
        }
    }
    t.print();
    write_json(&opts.out, "fig11", &json);
}

// ------------------------------------------------------- missing values

fn missing(opts: &Opts) {
    println!("\n## Extension — PC under missing values (paper §7 future work)");
    let mut t = Table::new(
        "Missing-value robustness (NCVR, PL + blanked attribute)",
        ["missing rate", "AND rule PC", "compound OR rule PC"],
    );
    let mut json = Vec::new();
    let and_rule = Rule::and((0..4).map(|i| Rule::pred(i, 4)));
    let or_rule = Rule::or([
        Rule::and([Rule::pred(0, 4), Rule::pred(1, 4)]),
        Rule::and([Rule::pred(2, 8), Rule::pred(3, 4)]),
    ]);
    for rate in [0.0, 0.1, 0.2, 0.3] {
        let mut and_pc = Vec::new();
        let mut or_pc = Vec::new();
        for trial in 0..opts.trials {
            let seed = opts.seed + trial;
            let mut pair = ncvr_pair(opts.records, PerturbationScheme::Light, seed);
            blank_values(&mut pair, rate, seed);
            let mut rng = StdRng::seed_from_u64(seed ^ 0x1551);
            let schema = fitted_schema(&pair, &paper_ks(), 1.0 / 3.0, &mut rng);
            let (ra, _) = run_pipeline(
                schema.clone(),
                LinkageConfig::rule_aware(and_rule.clone()),
                &pair,
                &pair.ground_truth.clone(),
                &mut rng,
            );
            let (ro, _) = run_pipeline(
                schema,
                LinkageConfig::rule_aware(or_rule.clone()),
                &pair,
                &pair.ground_truth.clone(),
                &mut rng,
            );
            and_pc.push(ra);
            or_pc.push(ro);
        }
        let a = average(&and_pc).quality.pc;
        let o = average(&or_pc).quality.pc;
        t.row([format!("{rate:.1}"), f3(a), f3(o)]);
        json.push(serde_json::json!({"rate": rate, "and_pc": a, "or_pc": o}));
    }
    t.print();
    write_json(&opts.out, "missing", &json);
}

/// Blanks one random attribute of `rate`·|B| matched records.
fn blank_values(pair: &mut DatasetPair, rate: f64, seed: u64) {
    use rand::RngExt;
    let mut rng = StdRng::seed_from_u64(seed ^ 0xB1A);
    let matched: HashSet<u64> = pair.ground_truth.iter().map(|&(_, b)| b).collect();
    for rec in &mut pair.b {
        if matched.contains(&rec.id) && rng.random::<f64>() < rate {
            let f = rng.random_range(0..rec.fields.len());
            rec.fields[f].clear();
        }
    }
}

// ------------------------------------------------------- extension: δ sweep

/// Verifies Equation 2's recall guarantee empirically: for each failure
/// budget δ, the measured PC must be at least 1 − δ.
fn guarantee(opts: &Opts) {
    println!("\n## Extension — empirical recall versus the 1 − δ guarantee");
    let mut t = Table::new(
        "Recall guarantee sweep (NCVR, PL, record-level HB, K = 30)",
        ["δ", "L", "guarantee 1-δ", "measured PC"],
    );
    let mut json = Vec::new();
    for delta in [0.01, 0.05, 0.1, 0.2, 0.4] {
        let mut results = Vec::new();
        let mut l_used = 0usize;
        for trial in 0..opts.trials {
            let seed = opts.seed + trial;
            let pair = ncvr_pair(opts.records, PerturbationScheme::Light, seed);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xD017A);
            let schema = fitted_schema(&pair, &paper_ks(), 1.0 / 3.0, &mut rng);
            let rule = Rule::and((0..4).map(|i| Rule::pred(i, 4)));
            let config = LinkageConfig {
                delta,
                mode: cbv_hb::pipeline::BlockingMode::RecordLevel { theta: 4, k: 30 },
                rule,
                block: Default::default(),
            };
            let t0 = Instant::now();
            let mut p = LinkagePipeline::new(schema, config, &mut rng).expect("valid");
            l_used = p.plan().total_tables();
            p.index(&pair.a).expect("ok");
            let r = p.link(&pair.b).expect("ok");
            let _ = t0;
            let q = evaluate(
                &r.matches,
                &pair.ground_truth,
                r.stats.candidates,
                pair.cross_size(),
            );
            results.push(MethodResult {
                name: "cBV-HB".into(),
                quality: q,
                embed_secs: 0.0,
                block_secs: 0.0,
                match_secs: 0.0,
                total_secs: 0.0,
            });
        }
        let avg = average(&results);
        t.row([
            format!("{delta:.2}"),
            l_used.to_string(),
            f3(1.0 - delta),
            f3(avg.quality.pc),
        ]);
        json.push(serde_json::json!({
            "delta": delta, "l": l_used, "guarantee": 1.0 - delta, "pc": avg.quality.pc,
        }));
    }
    t.print();
    write_json(&opts.out, "guarantee", &json);
}

// ------------------------------------------------------- extension: ρ sweep

/// Sensitivity of accuracy and size to the collision tolerance ρ of
/// Theorem 1 (the paper fixes ρ = 1 without exploring it).
fn rho_sweep(opts: &Opts) {
    println!("\n## Extension — collision tolerance ρ sensitivity (Theorem 1)");
    let mut t = Table::new(
        "ρ sweep (NCVR, PL, record-level HB, K = 30, r = 1/3)",
        ["ρ", "m̄_opt", "PC"],
    );
    let mut json = Vec::new();
    for rho in [0.0, 0.5, 1.0, 2.0, 4.0] {
        let mut results = Vec::new();
        let mut mbar = 0usize;
        for trial in 0..opts.trials {
            let seed = opts.seed + trial;
            let pair = ncvr_pair(opts.records, PerturbationScheme::Light, seed);
            let mut rng = StdRng::seed_from_u64(seed ^ 0x0470);
            let ks = paper_ks();
            let specs: Vec<AttributeSpec> = (0..4)
                .map(|f| {
                    let sample = pair.a.iter().chain(&pair.b).take(5_000).map(|x| x.field(f));
                    AttributeSpec::fitted(format!("f{f}"), 2, sample, rho, 1.0 / 3.0, false, ks[f])
                })
                .collect();
            let schema = RecordSchema::build(Alphabet::linkage(), specs, &mut rng);
            mbar = schema.total_size();
            let rule = Rule::and((0..4).map(|i| Rule::pred(i, 4)));
            let (res, _) = run_pipeline(
                schema,
                LinkageConfig::record_level(rule, 4, 30),
                &pair,
                &pair.ground_truth.clone(),
                &mut rng,
            );
            results.push(res);
        }
        let avg = average(&results);
        t.row([format!("{rho:.1}"), mbar.to_string(), f3(avg.quality.pc)]);
        json.push(serde_json::json!({"rho": rho, "m_bar": mbar, "pc": avg.quality.pc}));
    }
    t.print();
    write_json(&opts.out, "rho", &json);
}

// ----------------------------------------- extension: Jaro-Winkler study

/// The paper's named future direction (§7): how well do compact Hamming
/// distances track the Jaro–Winkler metric on person names? We sample
/// matched (single-error) and unmatched name pairs, and measure the
/// agreement between a Hamming threshold rule (u_Ĥ ≤ 4) and a
/// Jaro–Winkler threshold rule (d_JW ≤ 0.15).
fn jw_study(opts: &Opts) {
    use rl_datagen::sources::RecordSource;
    use textdist::jaro_winkler_distance;
    println!("\n## Extension — Jaro–Winkler correspondence (paper §7 future work)");
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let records = NcvrSource.sample_many(opts.records.max(2_000), &mut rng);
    let names: Vec<&str> = records.iter().map(|r| r.field(1)).collect();
    let embedder = cbv_hb::CVectorEmbedder::random(Alphabet::linkage(), 2, 15, false, &mut rng);

    let mut matched_jw = Vec::new();
    let mut matched_h = Vec::new();
    let mut unmatched_jw = Vec::new();
    let mut unmatched_h = Vec::new();
    use rand::RngExt;
    for i in 0..2_000usize {
        let a = names[i % names.len()];
        // Matched pair: one random edit.
        let (b, _) = apply_op(a, Op::random(&mut rng), &mut rng);
        matched_jw.push(jaro_winkler_distance(a, &b));
        matched_h.push(f64::from(embedder.embed(a).hamming(&embedder.embed(&b))));
        // Unmatched pair: a different random name.
        let c = loop {
            let c = names[rng.random_range(0..names.len())];
            if c != a {
                break c;
            }
        };
        unmatched_jw.push(jaro_winkler_distance(a, c));
        unmatched_h.push(f64::from(embedder.embed(a).hamming(&embedder.embed(c))));
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;

    // Agreement between the two rules.
    let mut agree = 0usize;
    let mut total = 0usize;
    for (jw, h) in matched_jw
        .iter()
        .zip(&matched_h)
        .chain(unmatched_jw.iter().zip(&unmatched_h))
    {
        let jw_says = *jw <= 0.15;
        let h_says = *h <= 4.0;
        if jw_says == h_says {
            agree += 1;
        }
        total += 1;
    }

    let mut t = Table::new(
        "Jaro–Winkler vs compact Hamming (LastName, single edits)",
        ["pair kind", "mean d_JW", "mean u_Ĥ"],
    );
    t.row([
        "matched (1 edit)".to_string(),
        f3(mean(&matched_jw)),
        f3(mean(&matched_h)),
    ]);
    t.row([
        "unmatched".to_string(),
        f3(mean(&unmatched_jw)),
        f3(mean(&unmatched_h)),
    ]);
    t.print();
    let agreement = agree as f64 / total as f64;
    println!("rule agreement (d_JW<=0.15 vs u_Ĥ<=4): {agreement:.3}");
    write_json(
        &opts.out,
        "jw",
        &serde_json::json!({
            "matched_mean_jw": mean(&matched_jw),
            "matched_mean_h": mean(&matched_h),
            "unmatched_mean_jw": mean(&unmatched_jw),
            "unmatched_mean_h": mean(&unmatched_h),
            "rule_agreement": agreement,
        }),
    );
}

// ------------------------------------------------- extension: privacy

/// Privacy adaptation (§7): linkage quality of keyed embeddings plus the
/// dictionary-attack risk with and without the shared key.
fn privacy(opts: &Opts) {
    use rl_datagen::sources::RecordSource;
    use rl_pprl::keyed::KeyedAttribute;
    use rl_pprl::{DataCustodian, EncodedDataset, KeyedEmbedder, LinkageUnit, SecretKey};

    println!("\n## Extension — privacy-preserving linkage (paper §7)");
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let n = opts.records.min(3_000);
    let pair = ncvr_pair(n, PerturbationScheme::Light, opts.seed);

    // Shared parameters agreed between the custodians.
    let key = SecretKey::from_words([
        opts.seed,
        opts.seed ^ 0xA11CE,
        opts.seed ^ 0xB0B,
        opts.seed ^ 0xC4A12,
    ]);
    let attrs = vec![
        KeyedAttribute {
            m: 15,
            q: 2,
            padded: false,
        },
        KeyedAttribute {
            m: 15,
            q: 2,
            padded: false,
        },
        KeyedAttribute {
            m: 68,
            q: 2,
            padded: false,
        },
        KeyedAttribute {
            m: 22,
            q: 2,
            padded: false,
        },
    ];
    let make_embedder = |key: SecretKey, seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        KeyedEmbedder::new(key, Alphabet::linkage(), attrs.clone(), &mut rng)
    };
    let shared_seed = opts.seed ^ 0x5EED;
    let alice = DataCustodian::new("alice", make_embedder(key.clone(), shared_seed));
    let bob = DataCustodian::new("bob", make_embedder(key.clone(), shared_seed));

    // Quality of the private protocol.
    let enc_a = alice.encode(&pair.a);
    let enc_b = bob.encode(&pair.b);
    let enc_a = EncodedDataset::from_bytes(&enc_a.to_bytes()).expect("wire roundtrip");
    let charlie = LinkageUnit::with_thetas(vec![4, 4, 8, 4]);
    let (matches, stats) = charlie.link(&enc_a, &enc_b, &mut rng).expect("link");
    let q = evaluate(
        &matches,
        &pair.ground_truth,
        stats.candidates,
        pair.cross_size(),
    );

    // Dictionary attack on the last-name attribute (index 1).
    let victim = make_embedder(key.clone(), shared_seed);
    let sample = NcvrSource.sample_many(500, &mut StdRng::seed_from_u64(opts.seed ^ 7));
    let values: Vec<&str> = sample.iter().map(|r| r.field(1)).collect();
    let dictionary = rl_datagen::corpus::LAST_NAMES;
    // Insider attacker: knows everything including the key.
    let insider = make_embedder(key.clone(), shared_seed);
    let (with_key, _) = rl_pprl::risk::attack_attribute(
        &values,
        1,
        &victim,
        |v| insider.embed_value(1, v),
        dictionary,
    );
    // Outside attacker (Charlie): right public parameters, wrong key.
    let outsider = make_embedder(SecretKey::from_words([1, 2, 3, 4]), shared_seed);
    let (without_key, _) = rl_pprl::risk::attack_attribute(
        &values,
        1,
        &victim,
        |v| outsider.embed_value(1, v),
        dictionary,
    );

    // Frequency attack: keying does not hide value frequencies.
    let observed: Vec<(String, rl_bitvec::BitVec)> = values
        .iter()
        .map(|v| ((*v).to_string(), victim.embed_value(1, v)))
        .collect();
    // Rank the dictionary by observed frequency in the sample (a public
    // census ranking in a real attack).
    let mut freq: HashMap<&str, usize> = HashMap::new();
    for v in &values {
        *freq.entry(v).or_default() += 1;
    }
    let mut ranked: Vec<&str> = dictionary.to_vec();
    ranked.sort_by_key(|v| std::cmp::Reverse(freq.get(v).copied().unwrap_or(0)));
    let freq_attack = rl_pprl::risk::frequency_attack(&observed, &ranked);

    let mut t = Table::new(
        "Private linkage quality and re-identification risk",
        ["measure", "value"],
    );
    t.row(["PC (keyed protocol)".to_string(), f3(q.pc)]);
    t.row(["PQ (keyed protocol)".to_string(), f3(q.pq)]);
    t.row([
        "dictionary-attack accuracy WITH key".to_string(),
        f3(with_key.accuracy),
    ]);
    t.row([
        "dictionary-attack accuracy WITHOUT key".to_string(),
        f3(without_key.accuracy),
    ]);
    t.row([
        "frequency-attack accuracy (no key needed)".to_string(),
        f3(freq_attack.accuracy),
    ]);
    t.print();
    println!(
        "note: deterministic encodings leak frequency ranks; mitigate with \
         record salting or dummy records"
    );
    write_json(
        &opts.out,
        "privacy",
        &serde_json::json!({
            "pc": q.pc, "pq": q.pq,
            "attack_with_key": with_key.accuracy,
            "attack_without_key": without_key.accuracy,
            "frequency_attack": freq_attack.accuracy,
        }),
    );
}

// ------------------------------------------------- extension: K selection

/// Predicted optimal K from the cost model of the paper's cited method
/// \[16\], with `p_dissimilar` estimated from sampled record pairs — shown
/// at several scales to explain where Figure 8(a)'s minimum sits.
fn kopt(opts: &Opts) {
    use rl_lsh::params::{estimate_p_dissimilar, KCostModel};
    println!("\n## Extension — predicted optimal K (cost model of [16])");
    let pair = ncvr_pair(
        opts.records.max(1_000),
        PerturbationScheme::Light,
        opts.seed,
    );
    let mut rng = StdRng::seed_from_u64(opts.seed ^ 0x40B7);
    let schema = fitted_schema(&pair, &paper_ks(), 1.0 / 3.0, &mut rng);
    let m = schema.total_size();
    // Sample dissimilar-pair distances.
    use rand::RngExt;
    let embedded: Vec<_> = pair
        .a
        .iter()
        .take(500)
        .map(|r| schema.embed(r).expect("ok"))
        .collect();
    let mut dists = Vec::new();
    for _ in 0..2_000 {
        let i = rng.random_range(0..embedded.len());
        let j = rng.random_range(0..embedded.len());
        if i != j {
            dists.push(embedded[i].total_distance(&embedded[j]));
        }
    }
    let p_dis = estimate_p_dissimilar(&dists, m);
    let mut t = Table::new(
        "Predicted optimal K versus data-set size",
        ["n", "predicted K*", "L at K*"],
    );
    let mut json = Vec::new();
    for n in [1_000usize, 10_000, 100_000, 1_000_000] {
        let model = KCostModel {
            n,
            m,
            theta: 4,
            delta: 0.1,
            p_dissimilar: p_dis,
            verify_cost: 1.0,
        };
        let k_star = model.optimal_k(5..=45);
        let p = rl_lsh::params::base_success_probability(4, m);
        let l = rl_lsh::params::optimal_l(p.powi(k_star as i32), 0.1);
        t.row([n.to_string(), k_star.to_string(), l.to_string()]);
        json.push(serde_json::json!({"n": n, "k_star": k_star, "l": l, "p_dissimilar": p_dis}));
    }
    t.print();
    println!("estimated p_dissimilar = {p_dis:.3} (mean dissimilar distance over m = {m})");
    write_json(&opts.out, "kopt", &json);
}

// ------------------------------------------------- extension: scaling

/// Records sweep: total time and PC as the data sets grow, sequential vs
/// 4-way parallel probing.
fn scale(opts: &Opts) {
    use cbv_hb::pipeline::BlockingMode;
    println!("\n## Extension — scaling (records sweep, sequential vs parallel)");
    let mut t = Table::new(
        "Scaling (NCVR, PL, record-level HB, K = 30)",
        ["records", "PC", "sequential", "parallel x4"],
    );
    let mut json = Vec::new();
    for n in [1_000usize, 2_000, 5_000, 10_000, 20_000] {
        if n > opts.records.max(20_000) {
            continue;
        }
        let pair = ncvr_pair(n, PerturbationScheme::Light, opts.seed);
        let mut rng = StdRng::seed_from_u64(opts.seed ^ n as u64);
        let schema = fitted_schema(&pair, &paper_ks(), 1.0 / 3.0, &mut rng);
        let rule = Rule::and((0..4).map(|i| Rule::pred(i, 4)));
        let config = LinkageConfig {
            delta: 0.1,
            mode: BlockingMode::RecordLevel { theta: 4, k: 30 },
            rule,
            block: Default::default(),
        };
        let mut p = LinkagePipeline::new(schema, config, &mut rng).expect("valid");
        p.index(&pair.a).expect("ok");
        let t_seq = Instant::now();
        let r = p.link(&pair.b).expect("ok");
        let seq = t_seq.elapsed().as_secs_f64();
        let t_par = Instant::now();
        let rp = p.link_parallel(&pair.b, 4).expect("ok");
        let par = t_par.elapsed().as_secs_f64();
        assert_eq!(r.stats.candidates, rp.stats.candidates);
        let q = evaluate(
            &r.matches,
            &pair.ground_truth,
            r.stats.candidates,
            pair.cross_size(),
        );
        t.row([n.to_string(), f3(q.pc), secs(seq), secs(par)]);
        json.push(serde_json::json!({
            "records": n, "pc": q.pc, "seq_secs": seq, "par_secs": par,
        }));
    }
    t.print();
    let cores = std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1);
    println!("host exposes {cores} core(s); parallel gains require >1");
    write_json(&opts.out, "scale", &json);
}

// ------------------------------------------------- extension: multiprobe

/// Multi-probe ablation: probing flipped keys trades per-probe lookups for
/// far fewer hash tables at the same recall guarantee.
fn multiprobe(opts: &Opts) {
    use cbv_hb::blocking::BlockingStructure;
    use cbv_hb::matcher::RecordStore;
    println!("\n## Extension — multi-probe LSH (flip budget t)");
    let mut t = Table::new(
        "Multi-probe (NCVR, PL, record-level, K = 30, δ = 0.1)",
        ["t", "L", "PC", "candidates", "total time"],
    );
    let mut json = Vec::new();
    for flips in [0u32, 1, 2] {
        let mut pcs = Vec::new();
        let mut cands = 0u64;
        let mut l_used = 0usize;
        let mut time = 0.0f64;
        for trial in 0..opts.trials {
            let seed = opts.seed + trial;
            let pair = ncvr_pair(opts.records, PerturbationScheme::Light, seed);
            let mut rng = StdRng::seed_from_u64(seed ^ 0x3117);
            let schema = fitted_schema(&pair, &paper_ks(), 1.0 / 3.0, &mut rng);
            let t0 = Instant::now();
            let mut structure =
                BlockingStructure::record_level_multiprobe(&schema, 4, 30, 0.1, flips, &mut rng)
                    .expect("valid");
            l_used = structure.l();
            let mut store = RecordStore::new();
            for r in &pair.a {
                let e = schema.embed(r).expect("ok");
                structure.insert(&e);
                store.insert(e);
            }
            let rule = Rule::and((0..4).map(|i| Rule::pred(i, 4)));
            let mut matches = Vec::new();
            let mut n_cands = 0u64;
            for r in &pair.b {
                let probe = schema.embed(r).expect("ok");
                let c = structure.candidates(&probe);
                n_cands += c.len() as u64;
                for id in c {
                    if let Some(a) = store.get(id) {
                        if rule.evaluate(&a.distances(&probe)) {
                            matches.push((id, r.id));
                        }
                    }
                }
            }
            time += t0.elapsed().as_secs_f64();
            cands += n_cands;
            let q = evaluate(&matches, &pair.ground_truth, n_cands, pair.cross_size());
            pcs.push(q.pc);
        }
        let pc = pcs.iter().sum::<f64>() / pcs.len() as f64;
        let avg_c = cands / opts.trials;
        let avg_t = time / opts.trials as f64;
        t.row([
            flips.to_string(),
            l_used.to_string(),
            f3(pc),
            avg_c.to_string(),
            secs(avg_t),
        ]);
        json.push(serde_json::json!({
            "flips": flips, "l": l_used, "pc": pc,
            "candidates": avg_c, "total_secs": avg_t,
        }));
    }
    t.print();
    write_json(&opts.out, "multiprobe", &json);
}

// ------------------------------------------------- extension: traditional

/// Pre-LSH blocking classics from the paper's related work (Sorted
/// Neighborhood, Canopy Clustering) versus cBV-HB: no-guarantee methods
/// against the guaranteed one.
fn traditional(opts: &Opts) {
    use rl_baselines::{CanopyLinker, SortedNeighborhoodLinker, StandardBlockingLinker};
    println!("\n## Extension — traditional blocking (related-work classics)");
    // Canopy growth is quadratic; cap the scale.
    let n = opts.records.min(2_000);
    let mut t = Table::new(
        "Traditional blocking vs cBV-HB (NCVR, PL)",
        ["method", "PC", "PQ", "RR", "total time"],
    );
    let mut json = Vec::new();
    let mut rows: Vec<MethodResult> = Vec::new();
    {
        let mut per: HashMap<String, Vec<MethodResult>> = HashMap::new();
        for trial in 0..opts.trials {
            let seed = opts.seed + trial;
            let pair = ncvr_pair(n, PerturbationScheme::Light, seed);
            let mut cbv = CbvHbLinker::paper_pl(4, seed);
            per.entry("cBV-HB".into())
                .or_default()
                .push(run_linker(&mut cbv, &pair));
            let mut snm = SortedNeighborhoodLinker::standard(4);
            per.entry("SNM".into())
                .or_default()
                .push(run_linker(&mut snm, &pair));
            let mut canopy = CanopyLinker::standard(4);
            per.entry("Canopy".into())
                .or_default()
                .push(run_linker(&mut canopy, &pair));
            let mut std_block = StandardBlockingLinker::on_last_name(4);
            per.entry("StdBlock".into())
                .or_default()
                .push(run_linker(&mut std_block, &pair));
        }
        for name in ["cBV-HB", "SNM", "Canopy", "StdBlock"] {
            rows.push(average(&per[name]));
        }
    }
    for r in &rows {
        t.row([
            r.name.clone(),
            f3(r.quality.pc),
            f3(r.quality.pq),
            f3(r.quality.rr),
            secs(r.total_secs),
        ]);
        json.push(serde_json::json!({
            "method": r.name, "pc": r.quality.pc, "pq": r.quality.pq,
            "rr": r.quality.rr, "total_secs": r.total_secs,
        }));
    }
    t.print();
    write_json(&opts.out, "traditional", &json);
}

// ------------------------------------------------- extension: q sweep

/// q-gram length sweep: the paper's §5.1 analysis "holds for any q ≥ 2";
/// verify bigrams vs trigrams on sizes and accuracy.
fn qsweep(opts: &Opts) {
    println!("\n## Extension — q-gram length sweep (bigrams vs trigrams)");
    let mut t = Table::new(
        "q sweep (NCVR, PL, record-level HB, K = 30)",
        ["q", "m̄_opt", "θ", "PC"],
    );
    let mut json = Vec::new();
    for q in [2usize, 3] {
        // One edit touches ≤ 2q q-grams of each string → θ = 2q per error
        // is the conservative per-attribute budget (4 for bigrams, 6 for
        // trigrams).
        let theta = (2 * q) as u32;
        let mut results = Vec::new();
        let mut mbar = 0usize;
        for trial in 0..opts.trials {
            let seed = opts.seed + trial;
            let pair = ncvr_pair(opts.records, PerturbationScheme::Light, seed);
            let mut rng = StdRng::seed_from_u64(seed ^ q as u64);
            let ks = paper_ks();
            let specs: Vec<AttributeSpec> = (0..4)
                .map(|f| {
                    let sample = pair.a.iter().chain(&pair.b).take(5_000).map(|x| x.field(f));
                    AttributeSpec::fitted(format!("f{f}"), q, sample, 1.0, 1.0 / 3.0, false, ks[f])
                })
                .collect();
            let schema = RecordSchema::build(Alphabet::linkage(), specs, &mut rng);
            mbar = schema.total_size();
            let rule = Rule::and((0..4).map(|i| Rule::pred(i, theta)));
            let (res, _) = run_pipeline(
                schema,
                LinkageConfig::record_level(rule, theta, 30),
                &pair,
                &pair.ground_truth.clone(),
                &mut rng,
            );
            results.push(res);
        }
        let avg = average(&results);
        t.row([
            q.to_string(),
            mbar.to_string(),
            theta.to_string(),
            f3(avg.quality.pc),
        ]);
        json.push(serde_json::json!({"q": q, "m_bar": mbar, "theta": theta, "pc": avg.quality.pc}));
    }
    t.print();
    write_json(&opts.out, "qsweep", &json);
}

// ------------------------------------------------- extension: nonstd

/// Non-standardized values (paper §7): B's addresses are abbreviated
/// (`STREET` → `ST`), a multi-character "error" that blows per-error
/// thresholds on that attribute. A compound rule that can fall back on the
/// other attributes recovers the loss.
fn nonstd(opts: &Opts) {
    use rl_datagen::standardize::abbreviate_attribute;
    println!("\n## Extension — non-standardized values (address abbreviation)");
    let and_rule = Rule::and((0..4).map(|i| Rule::pred(i, 4)));
    let compound = Rule::or([
        Rule::and([Rule::pred(0, 4), Rule::pred(1, 4), Rule::pred(3, 4)]),
        Rule::and([Rule::pred(2, 8), Rule::pred(3, 4)]),
    ]);
    let mut t = Table::new(
        "Abbreviated addresses in B (NCVR, PL + abbreviation)",
        ["rule", "PC"],
    );
    let mut json = Vec::new();
    for (name, rule) in [
        ("AND over all attributes", &and_rule),
        ("compound OR", &compound),
    ] {
        let mut results = Vec::new();
        for trial in 0..opts.trials {
            let seed = opts.seed + trial;
            let mut pair = ncvr_pair(opts.records, PerturbationScheme::Light, seed);
            // Abbreviate the address of every matched B record.
            let matched: HashSet<u64> = pair.ground_truth.iter().map(|&(_, b)| b).collect();
            for rec in &mut pair.b {
                if matched.contains(&rec.id) {
                    *rec = abbreviate_attribute(rec, 2);
                }
            }
            let mut rng = StdRng::seed_from_u64(seed ^ 0x0A5D);
            let schema = fitted_schema(&pair, &paper_ks(), 1.0 / 3.0, &mut rng);
            let (res, _) = run_pipeline(
                schema,
                LinkageConfig::rule_aware(rule.clone()),
                &pair,
                &pair.ground_truth.clone(),
                &mut rng,
            );
            results.push(res);
        }
        let pc = average(&results).quality.pc;
        t.row([name.to_string(), f3(pc)]);
        json.push(serde_json::json!({"rule": name, "pc": pc}));
    }
    t.print();
    write_json(&opts.out, "nonstd", &json);
}
