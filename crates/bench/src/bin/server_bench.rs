//! Server round-trip throughput: probes/sec over loopback TCP.
//!
//! ```text
//! server_bench [--records N] [--probes P] [--clients C] [--seed S]
//!              [--pipeline DEPTH] [--batch N] [--out DIR] [--smoke]
//!              [--records-sweep]
//! ```
//!
//! For each shard count in {1, 4, 8} the harness spawns an `rl-server`
//! over a freshly indexed `ShardedPipeline` and measures two modes
//! against the *same* server: the historical JSON v6 path (one
//! single-record probe per lockstep round trip per client) and the
//! protocol-v7 binary path (`--batch` records per request, `--pipeline`
//! requests in flight per connection). Both rows land in
//! `<out>/results/BENCH_server.json`, so the perf trajectory stays
//! comparable across the protocol change. Throughput is reported in
//! probe *records* per second in both modes. Under `--smoke` the run
//! fails unless the binary mode is strictly faster than the JSON mode
//! on the same run. An online-resharding drill (protocol v10) rides in
//! the same output file as a `mode: "reshard-split"` row: a live split
//! of a populated shard while a writer keeps inserting, gated under
//! `--smoke` on zero lost or duplicated acknowledged writes across the
//! cutover and a worst-case write stall under twice the heartbeat.
//!
//! A second phase measures the durability subsystem: insert throughput
//! under each WAL sync policy (in-memory baseline, group commit, fsync
//! every append) and the cold-restart replay time, reported to
//! `<out>/results/BENCH_store.json`.
//!
//! A third phase measures the replication subsystem: follower bootstrap
//! time (checkpoint fetch + recovery), streaming catch-up rate while the
//! primary keeps inserting, and promote latency, reported to
//! `<out>/results/BENCH_replication.json`.
//!
//! A fourth phase measures the streaming-subscription subsystem
//! (protocol v6): end-to-end match-event delivery rate (index → compiled
//! plan probe → bounded queue → wire), observe→deliver latency from the
//! `rl_sub_deliver_seconds` histogram, and window-eviction throughput
//! under churn, reported to `<out>/results/BENCH_stream.json`.
//!
//! A fifth phase, enabled by `--records-sweep`, measures the blocking
//! store backends (docs/BLOCKSTORE.md): for each record count in the
//! sweep and each backend (`memory`, `mmap`) it runs an isolated child
//! process (so resident memory is attributable to one backend at one
//! scale), indexes the corpus, compacts the store (for `mmap`, probes
//! are then served from the memory-mapped generation on disk), and
//! measures per-probe p50/p99 latency, `VmRSS`, and bytes on disk,
//! reported to `<out>/results/BENCH_blockstore.json`. The match results
//! of every probe are folded into an order-independent hash; the two
//! backends must produce identical hashes at every scale, and the mmap
//! p99 must stay within 5x of the in-memory p99.
//!
//! `--smoke` shrinks the run for CI, and after each run fetches the
//! server's `Metrics` snapshot and asserts the observability layer saw
//! the traffic (nonzero per-type request counts and latency samples);
//! in the store phase it additionally asserts that every insert hit the
//! WAL and that replay restored every record, in the replication
//! phase that the follower converged to zero lag and promoted cleanly,
//! and in the streaming phase that every delivered event was counted
//! and the eviction churn reached the exported counters.

use cbv_hb::sharded::ShardedPipeline;
use cbv_hb::{AttributeSpec, BlockStoreKind, LinkageConfig, Record, RecordSchema, Rule};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rl_bench::report::write_json;
use rl_repl::{Follower, FollowerConfig};
use rl_server::{Client, DurabilityConfig, ReplRole, ReshardOp, Server, ServerConfig, SyncPolicy};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::time::{Duration, Instant};
use textdist::Alphabet;

const SHARD_COUNTS: [usize; 3] = [1, 4, 8];

#[derive(Debug, Clone, Serialize)]
struct Row {
    /// `json-lockstep` (the historical v6 path: one single-record probe
    /// per synchronous round trip) or `binary-pipelined` (protocol v7:
    /// `batch` records per frame, `pipeline_depth` frames in flight).
    mode: String,
    shards: usize,
    workers: usize,
    records_indexed: u64,
    /// Probe *records* sent (both modes), so probes_per_sec compares.
    probes: u64,
    clients: u64,
    /// Requests in flight per connection (1 = lockstep).
    pipeline_depth: u64,
    /// Probe records per request (1 = single-record).
    batch: u64,
    matched: u64,
    elapsed_secs: f64,
    probes_per_sec: f64,
}

#[derive(Debug, Clone)]
struct Opts {
    records: u64,
    probes: u64,
    clients: u64,
    pipeline: u64,
    batch: u64,
    seed: u64,
    out: PathBuf,
    smoke: bool,
    records_sweep: bool,
    sweep_only: bool,
}

fn main() {
    let mut opts = Opts {
        records: 10_000,
        probes: 2_000,
        clients: 4,
        pipeline: 32,
        batch: 16,
        seed: 42,
        out: PathBuf::from("."),
        smoke: false,
        records_sweep: false,
        sweep_only: false,
    };
    let rest: Vec<String> = std::env::args().skip(1).collect();
    // Internal re-exec entry: one blockstore sweep case in a process of
    // its own, so VmRSS measures exactly one backend at one scale.
    if rest.first().map(String::as_str) == Some("--sweep-child") {
        return sweep_child(&rest[1..]);
    }
    let mut i = 0;
    while i < rest.len() {
        let need = |i: usize| {
            rest.get(i + 1)
                .unwrap_or_else(|| panic!("missing value for {}", rest[i]))
        };
        match rest[i].as_str() {
            "--records" => opts.records = need(i).parse().expect("--records N"),
            "--probes" => opts.probes = need(i).parse().expect("--probes P"),
            "--clients" => opts.clients = need(i).parse().expect("--clients C"),
            "--pipeline" => opts.pipeline = need(i).parse().expect("--pipeline DEPTH"),
            "--batch" => opts.batch = need(i).parse().expect("--batch N"),
            "--seed" => opts.seed = need(i).parse().expect("--seed S"),
            "--out" => opts.out = PathBuf::from(need(i)),
            "--smoke" => {
                opts.smoke = true;
                opts.records = opts.records.min(500);
                opts.probes = opts.probes.min(200);
                i += 1;
                continue;
            }
            "--records-sweep" => {
                opts.records_sweep = true;
                i += 1;
                continue;
            }
            "--sweep-only" => {
                opts.records_sweep = true;
                opts.sweep_only = true;
                i += 1;
                continue;
            }
            other => panic!("unknown flag {other}"),
        }
        i += 2;
    }
    assert!(opts.pipeline >= 1, "--pipeline must be >= 1");
    assert!(opts.batch >= 1, "--batch must be >= 1");

    // `--sweep-only`: just the blockstore phase (the CI smoke job runs
    // the other phases separately under metrics-smoke).
    if opts.sweep_only {
        let sweep = run_records_sweep(&opts);
        write_json(&opts.out, "BENCH_blockstore", &sweep);
        return;
    }

    let mut rows = Vec::new();
    println!("| mode | shards | indexed | probes | clients | depth | batch | secs | probes/sec |");
    println!("|---|---|---|---|---|---|---|---|---|");
    for shards in SHARD_COUNTS {
        // Both modes run against the same server over the same index, so
        // the smoke gate below compares like with like.
        for row in run_one(&opts, shards) {
            println!(
                "| {} | {} | {} | {} | {} | {} | {} | {:.3} | {:.0} |",
                row.mode,
                row.shards,
                row.records_indexed,
                row.probes,
                row.clients,
                row.pipeline_depth,
                row.batch,
                row.elapsed_secs,
                row.probes_per_sec,
            );
            rows.push(row);
        }
    }
    if opts.smoke {
        smoke_check_binary_beats_json(&rows);
    }

    // Reshard phase (protocol v10): a live shard split while a writer
    // keeps inserting. The row lands in the same BENCH_server.json list
    // as the probe rows, discriminated by its `mode` tag, so existing
    // readers keep working. Under `--smoke`, zero lost or duplicated
    // acknowledged writes across the cutover and a cutover stall under
    // 2x the heartbeat are hard gates (docs/RESHARD.md).
    let reshard = run_reshard(&opts);
    println!();
    println!(
        "| seeded | racing | migrated | copy secs | migrated/sec | max stall ms | epoch | shards |"
    );
    println!("|---|---|---|---|---|---|---|---|");
    println!(
        "| {} | {} | {} | {:.3} | {:.0} | {:.1} | {} | {} -> {} |",
        reshard.records_seeded,
        reshard.racing_inserts,
        reshard.migrated,
        reshard.copy_secs,
        reshard.migrated_per_sec,
        reshard.max_insert_stall_ms,
        reshard.epoch_after,
        reshard.shards_before,
        reshard.shards_after,
    );
    let mut server_rows: Vec<serde_json::Value> = rows
        .iter()
        .map(|r| serde_json::to_value(r).expect("serialize server row"))
        .collect();
    server_rows.push(serde_json::to_value(&reshard).expect("serialize reshard row"));
    write_json(&opts.out, "BENCH_server", &server_rows);

    // Durability phase: WAL-append overhead per sync policy plus
    // cold-restart replay time (see docs/STORAGE.md).
    let policies: [(&str, Option<SyncPolicy>); 3] = [
        ("in-memory", None),
        (
            "group-commit-5ms",
            Some(SyncPolicy::GroupCommit(Duration::from_millis(5))),
        ),
        ("fsync-always", Some(SyncPolicy::Always)),
    ];
    let mut store_rows: Vec<StoreRow> = Vec::new();
    println!();
    println!("| policy | inserted | secs | inserts/sec | slowdown | wal bytes | replay ops | replay ms |");
    println!("|---|---|---|---|---|---|---|---|");
    for (label, policy) in policies {
        let baseline = store_rows.first().map(|r: &StoreRow| r.insert_secs);
        let row = run_store_one(&opts, label, policy, baseline);
        println!(
            "| {} | {} | {:.3} | {:.0} | {:.2}x | {} | {} | {} |",
            row.policy,
            row.records,
            row.insert_secs,
            row.inserts_per_sec,
            row.slowdown_vs_memory,
            row.wal_bytes,
            row.replayed_ops,
            row.replay_ms,
        );
        store_rows.push(row);
    }
    write_json(&opts.out, "BENCH_store", &store_rows);

    // Replication phase: follower bootstrap, streaming catch-up while
    // the primary keeps writing, and promote latency (docs/REPLICATION.md).
    let repl = run_replication(opts.clone());
    println!();
    println!(
        "| records | bootstrap secs | stream secs | shipped/sec | promote ms | \
         lease ms | election ms | quorum ins/sec | quorum overhead | acked | applied |"
    );
    println!("|---|---|---|---|---|---|---|---|---|---|---|");
    println!(
        "| {} | {:.3} | {:.3} | {:.0} | {:.1} | {} | {:.0} | {:.0} | {:.2}x | {} | {} |",
        repl.records,
        repl.bootstrap_secs,
        repl.stream_secs,
        repl.shipped_per_sec,
        repl.promote_ms,
        repl.lease_ms,
        repl.election_ms,
        repl.quorum_inserts_per_sec,
        repl.quorum_overhead_vs_async,
        repl.acked_writes,
        repl.applied_after_failover,
    );
    write_json(&opts.out, "BENCH_replication", &[repl]);

    // Streaming phase: subscription event delivery and window-eviction
    // churn (docs/STREAMING.md).
    let stream = run_streaming(&opts);
    println!();
    println!(
        "| events | secs | events/sec | deliver p50 us | deliver p99 us | evictions | evict/sec |"
    );
    println!("|---|---|---|---|---|---|---|");
    println!(
        "| {} | {:.3} | {:.0} | {:.1} | {:.1} | {} | {:.0} |",
        stream.events,
        stream.deliver_secs,
        stream.events_per_sec,
        stream.deliver_p50_us,
        stream.deliver_p99_us,
        stream.evictions,
        stream.evictions_per_sec,
    );
    write_json(&opts.out, "BENCH_stream", &[stream]);

    // Blockstore phase (opt-in: it re-execs itself per case and the full
    // sweep indexes up to a million records per backend).
    if opts.records_sweep {
        let sweep = run_records_sweep(&opts);
        write_json(&opts.out, "BENCH_blockstore", &sweep);
    }
}

/// One (backend, record count) cell of the blockstore sweep, measured in
/// an isolated child process.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SweepRow {
    /// `memory` or `mmap` (the disk-resident store, probed post-compact
    /// so buckets come off the memory-mapped generation).
    backend: String,
    records: u64,
    probes: u64,
    index_secs: f64,
    /// Time to merge the delta overlay into a sealed on-disk generation
    /// (0 work for the in-memory backend, which compacts in place).
    compact_secs: f64,
    probe_p50_us: f64,
    probe_p99_us: f64,
    /// Probes that found at least one match (expected: all of them — the
    /// probe corpus is exact twins of indexed records).
    matched: u64,
    /// FNV-1a over the sorted (probe, match) pairs of every probe: the
    /// backends must agree on this hash exactly, or mmap changed results.
    match_hash: u64,
    /// `VmRSS` of the child after the probe phase, kilobytes.
    rss_kb: u64,
    /// Bytes in sealed blockstore generations on disk (0 for memory).
    on_disk_bytes: u64,
}

/// Child entry (`--sweep-child BACKEND RECORDS PROBES SEED DIR`): runs
/// one sweep case and prints the row as `SWEEP_RESULT <json>`.
fn sweep_child(args: &[String]) {
    let [backend, records, probes, seed, dir] = args else {
        panic!("--sweep-child wants BACKEND RECORDS PROBES SEED DIR, got {args:?}");
    };
    let row = run_sweep_case(
        backend,
        records.parse().expect("RECORDS"),
        probes.parse().expect("PROBES"),
        seed.parse().expect("SEED"),
        dir,
    );
    println!(
        "SWEEP_RESULT {}",
        serde_json::to_string(&row).expect("serialize sweep row")
    );
}

fn run_sweep_case(backend: &str, records: u64, probes: u64, seed: u64, dir: &str) -> SweepRow {
    let mut rng = StdRng::seed_from_u64(seed);
    let schema = RecordSchema::build(
        Alphabet::linkage(),
        vec![
            AttributeSpec::new("FirstName", 2, 64, false, 5),
            AttributeSpec::new("LastName", 2, 64, false, 5),
        ],
        &mut rng,
    );
    let rule = Rule::and([Rule::pred(0, 4), Rule::pred(1, 4)]);
    let mut config = LinkageConfig::rule_aware(rule);
    match backend {
        "memory" => {}
        "mmap" => {
            config.block.kind = BlockStoreKind::Mmap;
            config.block.dir = Some(dir.to_string());
        }
        other => panic!("unknown sweep backend {other}"),
    }
    let mut pipeline =
        ShardedPipeline::new(schema, config, 1, &mut rng).expect("build sweep pipeline");

    let corpus: Vec<Record> = (0..records).map(|i| record(i, i)).collect();
    let start = Instant::now();
    for chunk in corpus.chunks(1_000) {
        pipeline.index(chunk).expect("index");
    }
    let index_secs = start.elapsed().as_secs_f64();
    // Seal the write path: for mmap this merges the in-memory delta into
    // an on-disk generation, so the probe loop below reads buckets
    // through the mapping — the disk-residency this phase exists to
    // measure. The memory backend just scrubs tombstones (there are
    // none), keeping the two rows procedurally identical.
    let start = Instant::now();
    pipeline.compact_stores().expect("compact stores");
    let compact_secs = start.elapsed().as_secs_f64();

    let mut lat_ns: Vec<u64> = Vec::with_capacity(probes as usize);
    let mut all_pairs: Vec<(u64, u64)> = Vec::new();
    let mut matched = 0u64;
    for i in 0..probes {
        let src = i % records;
        let probe = record(1_000_000 + src, src);
        let t = Instant::now();
        let (pairs, _) = pipeline.link(std::slice::from_ref(&probe)).expect("probe");
        lat_ns.push(t.elapsed().as_nanos() as u64);
        matched += u64::from(!pairs.is_empty());
        all_pairs.extend(pairs);
    }
    // Order-independent digest of the full match relation.
    all_pairs.sort_unstable();
    all_pairs.dedup();
    let mut match_hash: u64 = 0xcbf2_9ce4_8422_2325;
    for (a, b) in &all_pairs {
        for v in [*a, *b] {
            match_hash ^= v;
            match_hash = match_hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    lat_ns.sort_unstable();
    let quantile = |p: f64| {
        let idx = ((lat_ns.len() - 1) as f64 * p).round() as usize;
        lat_ns[idx] as f64 / 1e3
    };
    let on_disk_bytes = pipeline
        .blocking_stats()
        .map(|stats| stats.iter().map(|s| s.on_disk_bytes).sum())
        .unwrap_or(0);

    SweepRow {
        backend: backend.to_string(),
        records,
        probes,
        index_secs,
        compact_secs,
        probe_p50_us: quantile(0.50),
        probe_p99_us: quantile(0.99),
        matched,
        match_hash,
        rss_kb: vm_rss_kb(),
        on_disk_bytes,
    }
}

/// Resident set size of this process in kilobytes (0 where
/// `/proc/self/status` is unavailable).
fn vm_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmRSS:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|kb| kb.parse().ok())
        })
        .unwrap_or(0)
}

/// Record counts for the blockstore sweep. The full run climbs to a
/// million records per backend; smoke keeps CI under a few seconds.
fn sweep_sizes(smoke: bool) -> Vec<u64> {
    if smoke {
        vec![500, 2_000]
    } else {
        vec![10_000, 100_000, 1_000_000]
    }
}

fn run_records_sweep(opts: &Opts) -> Vec<SweepRow> {
    let exe = std::env::current_exe().expect("current exe");
    let probes = opts.probes.max(200);
    let mut rows: Vec<SweepRow> = Vec::new();
    println!();
    println!(
        "| backend | records | index secs | compact secs | p50 us | p99 us | rss kb | disk bytes |"
    );
    println!("|---|---|---|---|---|---|---|---|");
    for n in sweep_sizes(opts.smoke) {
        let mut pair: Vec<SweepRow> = Vec::new();
        for backend in ["memory", "mmap"] {
            let dir = std::env::temp_dir()
                .join(format!("rl-blockstore-sweep-{}-{n}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            let out = std::process::Command::new(&exe)
                .arg("--sweep-child")
                .arg(backend)
                .arg(n.to_string())
                .arg(probes.to_string())
                .arg(opts.seed.to_string())
                .arg(dir.to_string_lossy().into_owned())
                .output()
                .expect("spawn sweep child");
            let stdout = String::from_utf8_lossy(&out.stdout);
            assert!(
                out.status.success(),
                "sweep child {backend}@{n} failed:\n{stdout}\n{}",
                String::from_utf8_lossy(&out.stderr)
            );
            let json = stdout
                .lines()
                .find_map(|l| l.strip_prefix("SWEEP_RESULT "))
                .unwrap_or_else(|| panic!("sweep child {backend}@{n} printed no result"));
            let row: SweepRow = serde_json::from_str(json).expect("parse sweep row");
            let _ = std::fs::remove_dir_all(&dir);
            println!(
                "| {} | {} | {:.3} | {:.3} | {:.1} | {:.1} | {} | {} |",
                row.backend,
                row.records,
                row.index_secs,
                row.compact_secs,
                row.probe_p50_us,
                row.probe_p99_us,
                row.rss_kb,
                row.on_disk_bytes,
            );
            pair.push(row);
        }
        let (mem, mmap) = (&pair[0], &pair[1]);
        // Equivalence is the point of the sweep, so it gates every run,
        // not just smoke: both backends must produce the identical match
        // relation for the identical probe stream.
        assert_eq!(
            (mem.match_hash, mem.matched),
            (mmap.match_hash, mmap.matched),
            "mmap backend changed match results at {n} records"
        );
        assert_eq!(mem.matched, probes, "probe twins must all match at {n}");
        assert!(
            mmap.on_disk_bytes > 0,
            "mmap backend left no sealed generation on disk at {n}"
        );
        // Latency gate with an absolute floor: at smoke scales the
        // in-memory p99 is a handful of microseconds and scheduler noise
        // would dominate a pure ratio.
        let bound_us = 5.0 * mem.probe_p99_us.max(100.0);
        assert!(
            mmap.probe_p99_us <= bound_us,
            "mmap p99 {:.1}us exceeds 5x in-memory bound {bound_us:.1}us at {n} records",
            mmap.probe_p99_us,
        );
        println!(
            "sweep: {n} records — hashes match ({:#018x}), mmap p99 {:.1}us vs mem {:.1}us, \
             mmap rss {} kb vs mem {} kb",
            mem.match_hash, mmap.probe_p99_us, mem.probe_p99_us, mmap.rss_kb, mem.rss_kb,
        );
        rows.extend(pair);
    }
    rows
}

#[derive(Debug, Clone, Serialize)]
struct StreamRow {
    /// Records streamed through the delivery measurement (twin pairs).
    records: u64,
    /// Match events delivered end-to-end (one per twin pair).
    events: u64,
    /// Wall-clock from first index to last event read by the subscriber.
    deliver_secs: f64,
    /// Delivered events over `deliver_secs`.
    events_per_sec: f64,
    /// Observe→deliver latency quantiles from `rl_sub_deliver_seconds`
    /// (event production under the state lock to the subscription
    /// writer's socket write), microseconds.
    deliver_p50_us: f64,
    deliver_p99_us: f64,
    /// Records streamed through the eviction measurement (all distinct,
    /// small count window).
    evict_records: u64,
    /// Window evictions the churn produced (records − window size).
    evictions: u64,
    /// Wall-clock of the eviction-churn index loop.
    evict_secs: f64,
    /// Evictions over `evict_secs`: sustained tombstone-delete rate.
    evictions_per_sec: f64,
}

fn run_streaming(opts: &Opts) -> StreamRow {
    use rl_server::{LateArrival, WatchEvent, WindowSpec};

    // Delivery: every odd record is a first-name twin of the record
    // before it, so N records produce N/2 match events. The subscriber
    // drains on its own thread while the producer indexes.
    let pairs = opts.records / 2;
    let server = Server::spawn(
        bench_pipeline(opts.seed, 1),
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            queue_capacity: 256,
            ..ServerConfig::default()
        },
    )
    .expect("spawn server");
    let addr = server.local_addr();

    let (ready_tx, ready_rx) = std::sync::mpsc::channel();
    let drain = std::thread::spawn(move || {
        let mut sub = Client::connect(addr).expect("connect subscriber");
        sub.subscribe_matches(
            "0<=4",
            WindowSpec::Count(1 << 20),
            LateArrival::default(),
            0,
        )
        .expect("subscribe");
        ready_tx.send(()).expect("signal ready");
        let mut seen = 0u64;
        while seen < pairs {
            match sub.next_watch_event().expect("watch event") {
                WatchEvent::Match { .. } => seen += 1,
                WatchEvent::Lagged { dropped } => panic!("subscriber lagged: {dropped} dropped"),
            }
        }
        seen
    });
    ready_rx.recv().expect("subscriber ready");

    let mut producer = Client::connect(addr).expect("connect producer");
    let corpus: Vec<Record> = (0..pairs)
        .flat_map(|i| [record(2 * i, i), record(2 * i + 1, i)])
        .collect();
    let start = Instant::now();
    // Small batches, like a live feed: a bulk load would burst more
    // events than the bounded per-subscription queue on purpose holds.
    for chunk in corpus.chunks(32) {
        producer.index(chunk).expect("index");
    }
    let events = drain.join().expect("subscriber thread");
    let deliver_secs = start.elapsed().as_secs_f64();

    let m = producer.metrics().expect("metrics");
    let deliver = m
        .histogram_data("rl_sub_deliver_seconds", None)
        .expect("deliver histogram registered");
    let (p50, p99) = (
        deliver.data.quantile(0.50) as f64 / 1e3,
        deliver.data.quantile(0.99) as f64 / 1e3,
    );
    if opts.smoke {
        assert_eq!(events, pairs, "every twin pair must produce one event");
        let counted = m
            .counter_value("rl_sub_events_total", None)
            .expect("sub events counter registered");
        assert!(counted >= events, "events counter lost deliveries");
        assert_eq!(deliver.data.count, counted, "latency samples != events");
    }
    producer.shutdown().expect("shutdown");
    server.wait();

    // Eviction churn: all-distinct records through a small count window,
    // so nearly every admission evicts through the tombstone path.
    let window = 64u64;
    let evict_records = opts.records;
    let server = Server::spawn(
        bench_pipeline(opts.seed ^ 1, 1),
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            queue_capacity: 256,
            ..ServerConfig::default()
        },
    )
    .expect("spawn server");
    let addr = server.local_addr();
    // The idle subscriber keeps the window live; distinct records never
    // match, so nothing is delivered and nothing lags.
    let mut sub = Client::connect(addr).expect("connect subscriber");
    sub.subscribe_matches(
        "0<=4 & 1<=4",
        WindowSpec::Count(window),
        LateArrival::default(),
        0,
    )
    .expect("subscribe");
    let mut producer = Client::connect(addr).expect("connect producer");
    let corpus: Vec<Record> = (0..evict_records).map(|i| record(i, i)).collect();
    let start = Instant::now();
    for chunk in corpus.chunks(500) {
        producer.index(chunk).expect("index");
    }
    let evict_secs = start.elapsed().as_secs_f64();
    let m = producer.metrics().expect("metrics");
    let evictions = m
        .counter_value("rl_window_evictions_total", None)
        .expect("evictions counter registered");
    if opts.smoke {
        assert!(
            evictions >= evict_records.saturating_sub(window),
            "churn must evict past the window: {evictions} < {}",
            evict_records - window
        );
        let gauge = m
            .gauges
            .iter()
            .find(|g| g.name == "rl_subs_active")
            .map(|g| g.value)
            .unwrap_or(-1);
        assert_eq!(gauge, 1, "subs_active gauge while one subscriber lives");
    }
    drop(sub);
    producer.shutdown().expect("shutdown");
    server.wait();

    StreamRow {
        records: pairs * 2,
        events,
        deliver_secs,
        events_per_sec: events as f64 / deliver_secs,
        deliver_p50_us: p50,
        deliver_p99_us: p99,
        evict_records,
        evictions,
        evict_secs,
        evictions_per_sec: evictions as f64 / evict_secs,
    }
}

#[derive(Debug, Clone, Serialize)]
struct ReplRow {
    /// Total records inserted on the primary (half before the follower
    /// attaches, half while it is streaming).
    records: u64,
    /// Follower spawn → caught up on the checkpoint-seeded half: covers
    /// FetchCheckpoint, chunk transfer, local recovery, and the first
    /// subscription round.
    bootstrap_secs: f64,
    /// Wall-clock from the first post-attach insert until the follower
    /// reports zero lag (includes the primary's own insert time).
    stream_secs: f64,
    /// Streamed half over `stream_secs`: sustained ship+apply rate.
    shipped_per_sec: f64,
    /// `Promote` round trip on the follower after the primary is gone.
    promote_ms: f64,
    /// Lease the drill primary granted on heartbeats (protocol v8).
    lease_ms: u64,
    /// Primary death → the auto-failover follower answering as primary:
    /// lease expiry + election + self-promote, measured by polling.
    election_ms: f64,
    /// Insert throughput with `--sync-replicas 1` (each ack waits for the
    /// follower's durability ack).
    quorum_inserts_per_sec: f64,
    /// Async ship+apply rate over quorum insert rate (1.0 = quorum acks
    /// are free; higher = the ack wait costs that factor).
    quorum_overhead_vs_async: f64,
    /// Records whose quorum-acked insert succeeded before the kill.
    acked_writes: u64,
    /// Records the new primary serves after failover — the acked-write
    /// audit passes when this covers every acked write.
    applied_after_failover: u64,
}

/// Polls `client` until it reports `applied_seq >= target` with zero
/// lag, panicking after ~60 s (a stuck follower fails the bench).
fn wait_caught_up(client: &mut Client, target: u64) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let s = client.repl_status().expect("repl status");
        if s.applied_seq >= target && s.lag_frames == 0 {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "follower stuck at applied={} (want {target})",
            s.applied_seq
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn run_replication(opts: Opts) -> ReplRow {
    let pid = std::process::id();
    let pdir = std::env::temp_dir().join(format!("rl-repl-bench-primary-{pid}"));
    let fdir = std::env::temp_dir().join(format!("rl-repl-bench-follower-{pid}"));
    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&fdir);
    let config = |dir: &PathBuf, role: ReplRole| ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_capacity: 256,
        repl_role: role,
        durability: Some(DurabilityConfig {
            data_dir: dir.clone(),
            sync: SyncPolicy::GroupCommit(Duration::from_millis(5)),
            checkpoint_every: None,
        }),
        ..ServerConfig::default()
    };
    let seed = opts.seed;
    let primary = Server::spawn_durable(
        || Ok(bench_pipeline(seed, 1)),
        config(&pdir, ReplRole::Primary),
    )
    .expect("spawn primary");
    let primary_addr = primary.local_addr().to_string();
    let mut pc = Client::connect(&*primary_addr).expect("connect primary");

    // First half lands before the follower exists, so bootstrap measures
    // a checkpoint transfer of real state.
    let corpus: Vec<Record> = (0..opts.records).map(|i| record(i, i)).collect();
    let (first, second) = corpus.split_at(corpus.len() / 2);
    for chunk in first.chunks(500) {
        pc.insert(chunk).expect("insert pre-attach");
    }
    let seeded_head = pc.repl_status().expect("repl status").applied_seq;

    let start = Instant::now();
    let follower = Follower::spawn(FollowerConfig::new(
        primary_addr.clone(),
        config(&fdir, ReplRole::Standalone),
    ))
    .expect("spawn follower");
    let mut fc = Client::connect(follower.local_addr()).expect("connect follower");
    wait_caught_up(&mut fc, seeded_head);
    let bootstrap_secs = start.elapsed().as_secs_f64();

    // Second half ships over the live subscription.
    let start = Instant::now();
    for chunk in second.chunks(500) {
        pc.insert(chunk).expect("insert streaming");
    }
    let head = pc.repl_status().expect("repl status").applied_seq;
    wait_caught_up(&mut fc, head);
    let stream_secs = start.elapsed().as_secs_f64();

    if opts.smoke {
        let stats = fc.stats().expect("follower stats");
        assert_eq!(
            stats.indexed as u64, opts.records,
            "follower missed replicated inserts"
        );
        let s = fc.repl_status().expect("repl status");
        assert_eq!(s.role, "follower");
        assert_eq!((s.lag_frames, s.lag_bytes), (0, 0), "lag did not converge");
        // The same numbers must land in the exported gauges.
        let m = fc.metrics().expect("follower metrics");
        let gauge = |name: &str| {
            m.gauges
                .iter()
                .find(|g| g.name == name)
                .map(|g| g.value)
                .unwrap_or(i64::MIN)
        };
        assert_eq!(gauge("rl_repl_lag_frames"), 0, "lag_frames gauge");
        assert_eq!(gauge("rl_repl_lag_bytes"), 0, "lag_bytes gauge");
    }

    // Promote after the primary is gone — the failover path.
    pc.shutdown().expect("shutdown primary");
    primary.wait();
    let start = Instant::now();
    let (_, was_follower, epoch) = fc.promote().expect("promote");
    let promote_ms = start.elapsed().as_secs_f64() * 1e3;
    if opts.smoke {
        assert!(was_follower, "promote hit a non-follower");
        assert!(epoch >= 1, "promote did not bump the epoch");
        let s = fc.repl_status().expect("repl status");
        assert_eq!(s.role, "primary", "promote did not flip the role");
        assert_eq!(s.epoch, epoch, "repl status disagrees on the epoch");
    }
    fc.shutdown().expect("shutdown follower");
    follower.wait();
    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&fdir);

    let shipped = second.len() as u64;
    let shipped_per_sec = shipped as f64 / stream_secs;
    let drill = run_failover_drill(&opts, shipped_per_sec);

    ReplRow {
        records: opts.records,
        bootstrap_secs,
        stream_secs,
        shipped_per_sec,
        promote_ms,
        lease_ms: drill.lease_ms,
        election_ms: drill.election_ms,
        quorum_inserts_per_sec: drill.quorum_inserts_per_sec,
        quorum_overhead_vs_async: drill.quorum_overhead_vs_async,
        acked_writes: drill.acked_writes,
        applied_after_failover: drill.applied_after_failover,
    }
}

/// The failover-drill measurements folded into [`ReplRow`].
struct DrillNumbers {
    lease_ms: u64,
    election_ms: f64,
    quorum_inserts_per_sec: f64,
    quorum_overhead_vs_async: f64,
    acked_writes: u64,
    applied_after_failover: u64,
}

/// Self-healing drill (protocol v8): a quorum-acked primary granting
/// leases, an auto-failover follower, then the primary dies mid-stream.
/// Measures the quorum-ack overhead on inserts and the election latency
/// (death → the follower answering as primary), and audits that every
/// quorum-acked write survived the failover. Under `--smoke` the audit
/// and the `election < 2× lease` bound are hard gates.
fn run_failover_drill(opts: &Opts, async_shipped_per_sec: f64) -> DrillNumbers {
    // Long enough that the in-process drain below (whose listen backlog
    // still accepts connects while dying, costing the election's
    // liveness probe its full timeout) fits inside the 2x-lease gate; a
    // SIGKILLed process gets instant connection refusals instead, and
    // that path elects in milliseconds (tests/server_replication.rs).
    let lease_ms: u64 = 2_000;
    let pid = std::process::id();
    let pdir = std::env::temp_dir().join(format!("rl-drill-primary-{pid}"));
    let fdir = std::env::temp_dir().join(format!("rl-drill-follower-{pid}"));
    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&fdir);
    let config = |dir: &PathBuf, role: ReplRole| ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_capacity: 256,
        repl_role: role,
        durability: Some(DurabilityConfig {
            data_dir: dir.clone(),
            sync: SyncPolicy::GroupCommit(Duration::from_millis(5)),
            checkpoint_every: None,
        }),
        ..ServerConfig::default()
    };
    let seed = opts.seed;
    let mut primary_config = config(&pdir, ReplRole::Primary);
    primary_config.lease_ms = lease_ms;
    primary_config.sync_replicas = 1;
    primary_config.quorum_timeout = Duration::from_secs(10);
    let primary = Server::spawn_durable(|| Ok(bench_pipeline(seed, 1)), primary_config)
        .expect("spawn primary");
    let primary_addr = primary.local_addr().to_string();

    let mut follower_config =
        FollowerConfig::new(primary_addr.clone(), config(&fdir, ReplRole::Standalone));
    follower_config.auto_failover = true;
    let follower = Follower::spawn(follower_config).expect("spawn follower");
    let mut fc = Client::connect(follower.local_addr()).expect("connect follower");

    // Quorum inserts stall without a connected follower; wait for the
    // subscription to land before the write phase starts.
    let mut pc = Client::connect(&*primary_addr).expect("connect primary");
    let deadline = Instant::now() + Duration::from_secs(30);
    while pc.repl_status().expect("repl status").followers == 0 {
        assert!(Instant::now() < deadline, "follower never subscribed");
        std::thread::sleep(Duration::from_millis(10));
    }

    // Every insert below waits for the follower's durability ack before
    // returning — so by construction, every acked record exists on the
    // node about to win the election.
    let corpus: Vec<Record> = (0..opts.records).map(|i| record(i, i)).collect();
    let mut acked: u64 = 0;
    let start = Instant::now();
    for chunk in corpus.chunks(500) {
        pc.insert(chunk).expect("quorum insert");
        acked += chunk.len() as u64;
    }
    let quorum_secs = start.elapsed().as_secs_f64();
    let quorum_rate = acked as f64 / quorum_secs;

    // The primary dies mid-lease. (The process-level SIGKILL variant
    // lives in tests/server_replication.rs; in-process shutdown is the
    // closest this bench can get.) The clock starts at the kill, not
    // after the drain: election_ms is the whole write-unavailability
    // window — session break, lease run-out, election, promote.
    let start = Instant::now();
    primary.shutdown();
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(s) = fc.repl_status() {
            if s.role == "primary" {
                break;
            }
        }
        assert!(Instant::now() < deadline, "auto-failover never promoted");
        std::thread::sleep(Duration::from_millis(10));
    }
    let election_ms = start.elapsed().as_secs_f64() * 1e3;
    primary.wait();

    let applied = fc.stats().expect("stats").indexed as u64;
    if opts.smoke {
        assert_eq!(
            applied, acked,
            "acked-write audit failed: {acked} quorum-acked inserts, {applied} survived"
        );
        let bound = 2.0 * lease_ms as f64;
        assert!(
            election_ms < bound,
            "election took {election_ms:.0} ms, bound is {bound:.0} ms (2x the {lease_ms} ms lease)"
        );
        let s = fc.repl_status().expect("repl status");
        assert!(s.epoch >= 1, "failover did not bump the epoch");
    }
    fc.shutdown().expect("shutdown follower");
    follower.wait();
    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&fdir);

    DrillNumbers {
        lease_ms,
        election_ms,
        quorum_inserts_per_sec: quorum_rate,
        quorum_overhead_vs_async: async_shipped_per_sec / quorum_rate,
        acked_writes: acked,
        applied_after_failover: applied,
    }
}

#[derive(Debug, Clone, Serialize)]
struct StoreRow {
    /// WAL sync policy label (`in-memory` = no durability baseline).
    policy: String,
    records: u64,
    insert_secs: f64,
    inserts_per_sec: f64,
    /// Insert wall-clock relative to the in-memory baseline (1.0 = free).
    slowdown_vs_memory: f64,
    /// WAL bytes on disk after the insert phase (0 for the baseline).
    wal_bytes: i64,
    /// Ops replayed when the server restarted from the data dir.
    replayed_ops: i64,
    /// Startup recovery time on restart, milliseconds.
    replay_ms: i64,
    /// Full restart wall-clock (spawn + recovery), seconds.
    restart_secs: f64,
}

/// One durability measurement: inserts `opts.records` records through
/// the wire under `policy`, then — for durable policies — restarts the
/// server from the data dir and measures WAL replay.
fn run_store_one(
    opts: &Opts,
    label: &str,
    policy: Option<SyncPolicy>,
    baseline_secs: Option<f64>,
) -> StoreRow {
    let dir = std::env::temp_dir().join(format!("rl-store-bench-{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = |durability: Option<DurabilityConfig>| ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_capacity: 256,
        durability,
        ..ServerConfig::default()
    };
    let durability = policy.map(|sync| DurabilityConfig {
        data_dir: dir.clone(),
        sync,
        // No background checkpoints: the restart below replays the whole
        // WAL, which is exactly what this phase measures.
        checkpoint_every: None,
    });
    let seed = opts.seed;
    let spawn = |durability: Option<DurabilityConfig>| match durability {
        Some(d) => Server::spawn_durable(|| Ok(bench_pipeline(seed, 1)), config(Some(d)))
            .expect("spawn durable server"),
        None => Server::spawn(bench_pipeline(seed, 1), config(None)).expect("spawn server"),
    };

    let server = spawn(durability.clone());
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let corpus: Vec<Record> = (0..opts.records).map(|i| record(i, i)).collect();
    let start = Instant::now();
    for chunk in corpus.chunks(500) {
        client.insert(chunk).expect("insert");
    }
    let insert_secs = start.elapsed().as_secs_f64();
    let m = client.metrics().expect("metrics");
    let gauge = |name: &str| {
        m.gauges
            .iter()
            .find(|g| g.name == name)
            .map(|g| g.value)
            .unwrap_or(0)
    };
    let wal_bytes = gauge("rl_wal_bytes");
    if opts.smoke && durability.is_some() {
        let appends = m
            .counter_value("rl_wal_appends_total", None)
            .expect("wal appends counter registered");
        assert_eq!(
            appends, opts.records,
            "every insert must hit the WAL exactly once"
        );
        assert!(wal_bytes > 0, "durable inserts left no WAL bytes");
    }
    client.shutdown().expect("shutdown");
    server.wait();

    // Cold restart: recovery (checkpoint load + full WAL replay) happens
    // inside spawn_durable.
    let (restart_secs, replayed_ops, replay_ms) = match durability {
        Some(d) => {
            let start = Instant::now();
            let server = spawn(Some(d));
            let restart_secs = start.elapsed().as_secs_f64();
            let mut client = Client::connect(server.local_addr()).expect("connect");
            let m = client.metrics().expect("metrics");
            let gauge = |name: &str| {
                m.gauges
                    .iter()
                    .find(|g| g.name == name)
                    .map(|g| g.value)
                    .unwrap_or(0)
            };
            let (ops, ms) = (gauge("rl_replayed_ops"), gauge("rl_replay_duration_ms"));
            if opts.smoke {
                let stats = client.stats().expect("stats");
                assert_eq!(stats.indexed as u64, opts.records, "replay lost records");
                assert_eq!(ops as u64, opts.records, "replayed_ops gauge wrong");
            }
            client.shutdown().expect("shutdown");
            server.wait();
            (restart_secs, ops, ms)
        }
        None => (0.0, 0, 0),
    };
    let _ = std::fs::remove_dir_all(&dir);

    StoreRow {
        policy: label.to_string(),
        records: opts.records,
        insert_secs,
        inserts_per_sec: opts.records as f64 / insert_secs,
        slowdown_vs_memory: baseline_secs.map_or(1.0, |b| insert_secs / b),
        wal_bytes,
        replayed_ops,
        replay_ms,
        restart_secs,
    }
}

/// The two-attribute bench schema on one pipeline (store phase uses a
/// single shard so the WAL cost dominates the measurement).
fn bench_pipeline(seed: u64, shards: usize) -> ShardedPipeline {
    let mut rng = StdRng::seed_from_u64(seed);
    let schema = RecordSchema::build(
        Alphabet::linkage(),
        vec![
            AttributeSpec::new("FirstName", 2, 64, false, 5),
            AttributeSpec::new("LastName", 2, 64, false, 5),
        ],
        &mut rng,
    );
    let rule = Rule::and([Rule::pred(0, 4), Rule::pred(1, 4)]);
    ShardedPipeline::new(schema, LinkageConfig::rule_aware(rule), shards, &mut rng)
        .expect("build pipeline")
}

fn bench_server(opts: &Opts, shards: usize, reactor: bool) -> Server {
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let schema = RecordSchema::build(
        Alphabet::linkage(),
        vec![
            AttributeSpec::new("FirstName", 2, 64, false, 5),
            AttributeSpec::new("LastName", 2, 64, false, 5),
        ],
        &mut rng,
    );
    let rule = Rule::and([Rule::pred(0, 4), Rule::pred(1, 4)]);
    let pipeline = ShardedPipeline::new(schema, LinkageConfig::rule_aware(rule), shards, &mut rng)
        .expect("build pipeline");
    Server::spawn(
        pipeline,
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: shards,
            queue_capacity: 256,
            snapshot_path: None,
            reactor,
            ..ServerConfig::default()
        },
    )
    .expect("spawn server")
}

/// Two servers, two measurements: the protocol v6 serving stack as it
/// existed before this release (blocking accept loop, NDJSON, one
/// single-record probe per lockstep round trip — continuous with every
/// earlier `BENCH_server.json` row), then the v7 stack (poll reactor,
/// binary frames, `--batch` records per request, `--pipeline` requests
/// in flight). Both index the same corpus from the same seed.
fn run_one(opts: &Opts, shards: usize) -> Vec<Row> {
    let index = |addr: std::net::SocketAddr| {
        let mut client = Client::connect(addr).expect("connect");
        let corpus: Vec<Record> = (0..opts.records).map(|i| record(i, i)).collect();
        for chunk in corpus.chunks(1_000) {
            client.index(chunk).expect("index");
        }
        client
    };

    // Phase 1 — the v6 stack: thread-per-connection blocking loop.
    let server = bench_server(opts, shards, false);
    let addr = server.local_addr();
    let client = index(addr);
    let per_client = opts.probes / opts.clients;
    let opts_records = opts.records;
    let start = Instant::now();
    let handles: Vec<_> = (0..opts.clients)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut matched = 0u64;
                for i in 0..per_client {
                    // Probe an exact copy of an indexed record under a
                    // fresh id, so every round trip does real blocking
                    // plus classification work and finds its twin.
                    let src = (c * per_client + i) % opts_records;
                    let probe = record(1_000_000 + src, src);
                    let (pairs, _) = client.probe(&[probe]).expect("probe");
                    matched += u64::from(!pairs.is_empty());
                }
                matched
            })
        })
        .collect();
    let matched: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    let elapsed = start.elapsed().as_secs_f64();
    let done = per_client * opts.clients;
    assert!(
        matched >= done / 2,
        "probes stopped matching: {matched}/{done}"
    );
    client.shutdown().expect("shutdown");
    server.wait();
    let json_row = Row {
        mode: "json-lockstep".into(),
        shards,
        workers: shards,
        records_indexed: opts.records,
        probes: done,
        clients: opts.clients,
        pipeline_depth: 1,
        batch: 1,
        matched,
        elapsed_secs: elapsed,
        probes_per_sec: done as f64 / elapsed,
    };

    // Phase 2 — the v7 stack: reactor accept loop, binary frames,
    // batched and pipelined probes.
    let server = bench_server(opts, shards, true);
    let addr = server.local_addr();
    let mut client = index(addr);
    let (depth, batch) = (opts.pipeline, opts.batch);
    let start = Instant::now();
    let handles: Vec<_> = (0..opts.clients)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = Client::connect_binary(addr).expect("connect binary");
                assert!(client.is_binary(), "server must speak protocol v7");
                let batches: Vec<Vec<Record>> = (0..per_client)
                    .map(|i| {
                        let base = (c * per_client + i) * batch;
                        (0..batch)
                            .map(|j| {
                                let src = (base + j) % opts_records;
                                record(2_000_000 + base + j, src)
                            })
                            .collect()
                    })
                    .collect();
                let outcomes = client
                    .probe_pipelined(&batches, depth as usize)
                    .expect("pipelined probe");
                outcomes
                    .iter()
                    .map(|(pairs, _)| pairs.len() as u64)
                    .sum::<u64>()
            })
        })
        .collect();
    let bin_matched: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    let bin_elapsed = start.elapsed().as_secs_f64();
    let bin_done = per_client * opts.clients * batch;
    assert!(
        bin_matched >= bin_done / 2,
        "pipelined probes stopped matching: {bin_matched}/{bin_done}"
    );
    let bin_row = Row {
        mode: "binary-pipelined".into(),
        shards,
        workers: shards,
        records_indexed: opts.records,
        probes: bin_done,
        clients: opts.clients,
        pipeline_depth: depth,
        batch,
        matched: bin_matched,
        elapsed_secs: bin_elapsed,
        probes_per_sec: bin_done as f64 / bin_elapsed,
    };

    if opts.smoke {
        // Binary-phase traffic: one probe request per pipelined batch.
        smoke_check_metrics(&mut client, per_client * opts.clients);
    }

    client.shutdown().expect("shutdown");
    server.wait();

    vec![json_row, bin_row]
}

/// The CI gate for the protocol change: on every shard count the binary
/// pipelined mode must be strictly faster than the JSON lockstep mode
/// measured against the same server on the same run.
fn smoke_check_binary_beats_json(rows: &[Row]) {
    for pair in rows.chunks(2) {
        let [json, bin] = pair else {
            panic!("expected json/binary row pairs")
        };
        assert_eq!(
            (json.mode.as_str(), bin.mode.as_str()),
            ("json-lockstep", "binary-pipelined")
        );
        assert!(
            bin.probes_per_sec > json.probes_per_sec,
            "binary protocol must beat JSON on the same run: {} shards, binary {:.0} <= json {:.0}",
            json.shards,
            bin.probes_per_sec,
            json.probes_per_sec,
        );
        println!(
            "smoke: {} shards — binary {:.0} probes/sec vs json {:.0} ({:.1}x)",
            json.shards,
            bin.probes_per_sec,
            json.probes_per_sec,
            bin.probes_per_sec / json.probes_per_sec,
        );
    }
}

/// The online-resharding drill row (protocol v10), tagged with
/// `mode: "reshard-split"` so it can share `BENCH_server.json` with the
/// probe-throughput rows.
#[derive(Debug, Clone, Serialize)]
struct ReshardRow {
    mode: String,
    shards_before: usize,
    shards_after: usize,
    /// Shard-map epoch after the cutover (seed maps start at 1).
    epoch_after: u64,
    /// Records indexed before the split started.
    records_seeded: u64,
    /// Records whose insert was acknowledged while the migration ran.
    racing_inserts: u64,
    /// Records the background copier moved to the target shard.
    migrated: u64,
    /// `Reshard` ack to `MigrationStatus` reporting idle: copy + cutover.
    copy_secs: f64,
    migrated_per_sec: f64,
    /// Slowest single racing insert — an upper bound on the write stall
    /// the cutover's exclusive window imposed.
    max_insert_stall_ms: f64,
    /// The operational heartbeat the stall gate is stated against.
    heartbeat_ms: u64,
    /// Expected minus found record count after the cutover. Zero means
    /// no acknowledged write was lost and none was duplicated.
    lost: i64,
}

/// Live split under write load: seed a 2-shard server, start a split of
/// shard 0, and keep a writer inserting (and measuring per-insert
/// latency) until the migration reports idle. Audits record conservation
/// and, under `--smoke`, gates on zero lost/duplicated acks and a max
/// insert stall under `2 x heartbeat_ms`.
fn run_reshard(opts: &Opts) -> ReshardRow {
    // The operational heartbeat the runbook assumes (the protocol v8
    // lease cadence): a cutover that stalls writes for two of these
    // would read as a dead primary to an auto-failover follower.
    let heartbeat_ms: u64 = 500;
    let server = Server::spawn(
        bench_pipeline(opts.seed ^ 2, 2),
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_capacity: 256,
            ..ServerConfig::default()
        },
    )
    .expect("spawn reshard server");
    let addr = server.local_addr();
    let mut admin = Client::connect(addr).expect("connect admin");
    let corpus: Vec<Record> = (0..opts.records).map(|i| record(i, i)).collect();
    for chunk in corpus.chunks(1_000) {
        admin.insert(chunk).expect("seed insert");
    }
    let before = admin.shard_map().expect("shard map");

    let t0 = Instant::now();
    let (kind, _, _, _) = admin
        .reshard(ReshardOp::Split { source: 0 })
        .expect("start split");
    assert_eq!(kind, "split");
    // Racing writer: twins of corpus records under fresh ids, so the
    // presence audit below can probe them back out by source.
    let mut writer = Client::connect(addr).expect("connect writer");
    let mut racing: Vec<u64> = Vec::new();
    let mut max_stall_ms = 0f64;
    let mut next_id = 10_000_000u64;
    loop {
        let batch: Vec<Record> = (0..16)
            .map(|j| {
                let id = next_id + j;
                record(id, id % opts.records.max(1))
            })
            .collect();
        next_id += 16;
        let t = Instant::now();
        let (accepted, _) = writer.insert(&batch).expect("racing insert");
        max_stall_ms = max_stall_ms.max(t.elapsed().as_secs_f64() * 1e3);
        assert_eq!(accepted, batch.len(), "insert rejected mid-migration");
        racing.extend(batch.iter().map(|r| r.id));
        if !admin.migration_status().expect("migration status").active {
            break;
        }
    }
    let copy_secs = t0.elapsed().as_secs_f64();

    let after = admin.shard_map().expect("shard map");
    let expected = opts.records + racing.len() as u64;
    let found: u64 = after.records.iter().sum();
    let lost = expected as i64 - found as i64;
    let m = admin.metrics().expect("metrics");
    let gauge = |name: &str| {
        m.gauges
            .iter()
            .find(|g| g.name == name)
            .map(|g| g.value)
            .unwrap_or(i64::MIN)
    };
    let migrated = gauge("rl_reshard_migrated_records").max(0) as u64;
    if opts.smoke {
        assert_eq!(
            lost, 0,
            "acks lost or duplicated across cutover: expected {expected}, found {found} \
             (per shard: {:?})",
            after.records
        );
        assert_eq!(after.epoch, before.epoch + 1, "cutover must bump the epoch");
        assert_eq!(after.num_shards, before.num_shards + 1);
        let bound_ms = 2.0 * heartbeat_ms as f64;
        assert!(
            max_stall_ms < bound_ms,
            "cutover stalled a write for {max_stall_ms:.1} ms, bound is {bound_ms:.0} ms \
             (2x the {heartbeat_ms} ms heartbeat)"
        );
        assert_eq!(gauge("rl_reshard_state"), 0, "migration still marked live");
        assert_eq!(gauge("rl_reshard_lag_ops"), 0, "lag gauge did not drain");
        assert!(migrated > 0, "copier moved nothing on a populated split");
        // Presence audit on a sample of the racing acks: each must probe
        // back out through the post-cutover map.
        for &id in racing.iter().take(8) {
            let probe = record(90_000_000 + id, id % opts.records.max(1));
            let (pairs, _) = admin.probe(std::slice::from_ref(&probe)).expect("probe");
            assert!(
                pairs.iter().any(|&(a, _)| a == id),
                "racing ack {id} unreachable after cutover"
            );
        }
    }
    admin.shutdown().expect("shutdown");
    server.wait();

    ReshardRow {
        mode: "reshard-split".into(),
        shards_before: before.num_shards,
        shards_after: after.num_shards,
        epoch_after: after.epoch,
        records_seeded: opts.records,
        racing_inserts: racing.len() as u64,
        migrated,
        copy_secs,
        migrated_per_sec: migrated as f64 / copy_secs.max(1e-9),
        max_insert_stall_ms: max_stall_ms,
        heartbeat_ms,
        lost,
    }
}

/// Smoke-mode assertion: the observability layer saw the bench traffic.
/// Panics (failing the CI step) when the `Metrics` reply is missing the
/// expected request counts or latency samples.
fn smoke_check_metrics(client: &mut Client, probes: u64) {
    let m = client.metrics().expect("metrics request");
    let probed = m
        .counter_value("rl_requests_total", Some("probe"))
        .expect("probe counter registered");
    assert!(
        probed >= probes,
        "metrics lost probes: counted {probed}, sent {probes}"
    );
    let indexed = m
        .counter_value("rl_requests_total", Some("index"))
        .expect("index counter registered");
    assert!(indexed > 0, "no index requests counted");
    let exec = m
        .histogram_data("rl_request_exec_seconds", Some("probe"))
        .expect("probe exec histogram registered");
    assert_eq!(exec.data.count, probed, "exec samples != probe count");
    let wait = m
        .histogram_data("rl_request_queue_wait_seconds", Some("probe"))
        .expect("probe queue-wait histogram registered");
    assert_eq!(wait.data.count, probed, "queue-wait samples != probe count");
    println!(
        "smoke: metrics ok — {probed} probes, exec p50 {}ns / p99 {}ns",
        exec.data.quantile(0.50),
        exec.data.quantile(0.99),
    );
}

/// A well-spread synthetic record: distinct source indices share few
/// bigrams, so probe cost reflects real candidate filtering.
fn record(id: u64, source: u64) -> Record {
    Record::new(id, [synth_name(9, source), synth_name(9 ^ 0xF00, source)])
}

fn synth_name(salt: u64, i: u64) -> String {
    let mut x = (i + 1)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(salt.wrapping_mul(0xA24B_AED4_963E_E407));
    (0..6)
        .map(|_| {
            let c = (b'A' + (x % 26) as u8) as char;
            x /= 26;
            c
        })
        .collect()
}
