//! Covering vs random-sampling blocking, head-to-head at matched `L`.
//!
//! ```text
//! covering_bench [--records N] [--theta T] [--seed S] [--out DIR] [--smoke]
//! ```
//!
//! Generates an NCVR-style data-set pair, embeds both sides, and computes
//! the exact set of cross pairs at record-level Hamming distance ≤ θ — the
//! population both backends promise to co-block. Each backend then indexes
//! A and probes B with the *same number of blocking groups* `L = 2^{θ+1} − 1`
//! (the covering construction's group count), so the comparison isolates
//! the key-generation strategy:
//!
//! - **covering**: recall must be exactly 1.0 (zero false negatives by the
//!   GF(2) covering argument);
//! - **random**: recall follows the probabilistic `1 − δ`-style bound that
//!   `K` and the matched `L` imply — typically below 1.
//!
//! Results land in `<out>/results/BENCH_covering.json`. With `--smoke` the
//! run shrinks to a CI-sized data set and **exits nonzero if covering
//! recall < 1.0**, turning the paper guarantee into a regression gate.

use cbv_hb::blocking::BlockingPlan;
use cbv_hb::schema::EmbeddedRecord;
use cbv_hb::{AttributeSpec, RecordSchema};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rl_bench::report::{write_json, Table};
use rl_datagen::{DatasetPair, NcvrSource, PairConfig, PerturbationScheme, RecordSource};
use serde::Serialize;
use std::collections::HashMap;
use std::path::PathBuf;
use std::time::Instant;
use textdist::Alphabet;

#[derive(Debug, Clone, Serialize)]
struct Row {
    backend: String,
    theta: u32,
    l: usize,
    key_bits: usize,
    within_theta_pairs: u64,
    co_blocked: u64,
    recall: f64,
    candidate_pairs: u64,
    index_secs: f64,
    probe_secs: f64,
    probes_per_sec: f64,
}

#[derive(Debug, Clone)]
struct Opts {
    records: usize,
    theta: u32,
    seed: u64,
    out: PathBuf,
    smoke: bool,
}

fn main() {
    let mut opts = Opts {
        records: 4_000,
        theta: 4,
        seed: 42,
        out: PathBuf::from("."),
        smoke: false,
    };
    let mut records_given = false;
    let rest: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < rest.len() {
        let need = |i: usize| {
            rest.get(i + 1)
                .unwrap_or_else(|| panic!("missing value for {}", rest[i]))
        };
        match rest[i].as_str() {
            "--records" => {
                opts.records = need(i).parse().expect("--records N");
                records_given = true;
                i += 2;
            }
            "--theta" => {
                opts.theta = need(i).parse().expect("--theta T");
                i += 2;
            }
            "--seed" => {
                opts.seed = need(i).parse().expect("--seed S");
                i += 2;
            }
            "--out" => {
                opts.out = PathBuf::from(need(i));
                i += 2;
            }
            "--smoke" => {
                opts.smoke = true;
                i += 1;
            }
            other => panic!("unknown flag {other}"),
        }
    }
    if opts.smoke && !records_given {
        opts.records = 300;
    }

    let mut rng = StdRng::seed_from_u64(opts.seed);
    let pair = DatasetPair::generate(
        &NcvrSource,
        PairConfig::new(opts.records, PerturbationScheme::Light),
        &mut rng,
    );
    // Modest fixed-size c-vectors keep the record-level vector at 4 × 48
    // bits: large enough that covering groups have realistic width, small
    // enough that light perturbations stay within a workable θ.
    let specs: Vec<AttributeSpec> = NcvrSource
        .attribute_names()
        .iter()
        .map(|name| AttributeSpec::new(*name, 2, 48, false, 30))
        .collect();
    let schema = RecordSchema::build(Alphabet::linkage(), specs, &mut rng);
    let enc_a = schema.embed_all(&pair.a).expect("embed A");
    let enc_b = schema.embed_all(&pair.b).expect("embed B");

    // The exact within-θ cross pairs — the recall denominator both
    // backends are judged against. Brute force keeps it exact.
    let mut within: HashMap<u64, Vec<u64>> = HashMap::new();
    let mut within_count = 0u64;
    for a in &enc_a {
        for b in &enc_b {
            if a.total_distance(b) <= opts.theta {
                within.entry(b.id).or_default().push(a.id);
                within_count += 1;
            }
        }
    }
    eprintln!(
        "{} + {} records, {} cross pairs within θ = {}",
        enc_a.len(),
        enc_b.len(),
        within_count,
        opts.theta
    );

    let l_cov = (1usize << (opts.theta + 1)) - 1;
    let mut covering_rng = StdRng::seed_from_u64(opts.seed ^ 0xC0FE);
    let covering = BlockingPlan::covering_record_level(&schema, opts.theta, &mut covering_rng)
        .expect("covering plan");
    let mut random_rng = StdRng::seed_from_u64(opts.seed ^ 0xC0FE);
    let random = BlockingPlan::record_level_with_l(&schema, opts.theta, 30, l_cov, &mut random_rng)
        .expect("random plan");

    let rows = vec![
        run_one(
            "covering",
            covering,
            &opts,
            &enc_a,
            &enc_b,
            &within,
            within_count,
        ),
        run_one(
            "random",
            random,
            &opts,
            &enc_a,
            &enc_b,
            &within,
            within_count,
        ),
    ];

    let mut table = Table::new(
        "Covering vs random blocking (matched L)",
        [
            "backend",
            "L",
            "key bits",
            "within-θ pairs",
            "recall",
            "candidate pairs",
            "probes/sec",
        ],
    );
    for r in &rows {
        table.row([
            r.backend.clone(),
            r.l.to_string(),
            r.key_bits.to_string(),
            r.within_theta_pairs.to_string(),
            format!("{:.4}", r.recall),
            r.candidate_pairs.to_string(),
            format!("{:.0}", r.probes_per_sec),
        ]);
    }
    table.print();
    write_json(&opts.out, "BENCH_covering", &rows);

    if opts.smoke {
        let covering_recall = rows
            .iter()
            .find(|r| r.backend == "covering")
            .map(|r| r.recall)
            .unwrap_or(0.0);
        if covering_recall < 1.0 {
            eprintln!(
                "SMOKE FAILURE: covering recall {covering_recall} < 1.0 — the \
                 zero-false-negative guarantee is broken"
            );
            std::process::exit(1);
        }
        eprintln!("smoke ok: covering recall = 1.0");
    }
}

fn run_one(
    backend: &str,
    mut plan: BlockingPlan,
    opts: &Opts,
    enc_a: &[EmbeddedRecord],
    enc_b: &[EmbeddedRecord],
    within: &HashMap<u64, Vec<u64>>,
    within_count: u64,
) -> Row {
    let stats_before = plan.stats();
    let s0 = &stats_before[0];
    let (l, key_bits) = (s0.l, s0.key_bits);

    let t0 = Instant::now();
    for rec in enc_a {
        plan.insert(rec);
    }
    let index_secs = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let mut candidate_pairs = 0u64;
    let mut co_blocked = 0u64;
    for rec in enc_b {
        let cands = plan.candidates(rec);
        candidate_pairs += cands.len() as u64;
        if let Some(as_) = within.get(&rec.id) {
            co_blocked += as_.iter().filter(|a| cands.contains(a)).count() as u64;
        }
    }
    let probe_secs = t1.elapsed().as_secs_f64();
    let recall = if within_count == 0 {
        1.0
    } else {
        co_blocked as f64 / within_count as f64
    };

    Row {
        backend: backend.to_string(),
        theta: opts.theta,
        l,
        key_bits,
        within_theta_pairs: within_count,
        co_blocked,
        recall,
        candidate_pairs,
        index_secs,
        probe_secs,
        probes_per_sec: enc_b.len() as f64 / probe_secs.max(1e-9),
    }
}
