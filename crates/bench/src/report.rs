//! Markdown and JSON report emission for the experiment harness.

use serde::Serialize;
use std::fmt::Write as _;
use std::path::Path;

/// A simple markdown table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with a title and column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(title: &str, headers: I) -> Self {
        Self {
            title: title.to_string(),
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Renders as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "\n### {}\n", self.title);
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for r in &self.rows {
            let _ = writeln!(out, "| {} |", r.join(" | "));
        }
        out
    }

    /// Prints the markdown to stdout.
    pub fn print(&self) {
        print!("{}", self.to_markdown());
    }
}

/// Writes a serializable result to `results/<name>.json` under `root`.
///
/// # Panics
/// Panics on I/O failure — the harness treats unwritable results as fatal.
pub fn write_json<T: Serialize>(root: &Path, name: &str, value: &T) {
    let dir = root.join("results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialize result");
    std::fs::write(&path, json).expect("write result file");
    eprintln!("wrote {}", path.display());
}

/// Formats a fraction with three decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats seconds with three decimals.
pub fn secs(x: f64) -> String {
    format!("{x:.3}s")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_shape() {
        let mut t = Table::new("Demo", ["a", "b"]);
        t.row(["1", "2"]);
        let md = t.to_markdown();
        assert!(md.contains("### Demo"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
        assert!(md.contains("|---|---|"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = Table::new("x", ["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn json_roundtrip() {
        let dir = std::env::temp_dir().join("rl_bench_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        write_json(&dir, "probe", &vec![1, 2, 3]);
        let content = std::fs::read_to_string(dir.join("results/probe.json")).unwrap();
        assert!(content.contains('1'));
    }
}
