//! Experiment harness reproducing every table and figure of the paper's
//! evaluation (Section 6).
//!
//! The `experiments` binary exposes one subcommand per table/figure; this
//! library holds the shared machinery: running a `Linker` over a
//! `DatasetPair`, scoring it with the paper's PC/PQ/RR measures, averaging
//! over trials, and emitting markdown + JSON reports.

pub mod report;
pub mod runner;

pub use report::{write_json, Table};
pub use runner::{average, run_linker, MethodResult, TrialRunner};
