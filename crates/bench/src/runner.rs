//! Running linkers over generated data-set pairs and scoring them.

use cbv_hb::metrics::{evaluate, LinkageQuality};
use rl_baselines::{LinkOutcome, Linker};
use rl_datagen::DatasetPair;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// One method's scored result on one data-set pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MethodResult {
    /// Method name.
    pub name: String,
    /// Quality measures against the pair's ground truth.
    pub quality: LinkageQuality,
    /// Embedding time, seconds.
    pub embed_secs: f64,
    /// Blocking time, seconds.
    pub block_secs: f64,
    /// Matching time, seconds.
    pub match_secs: f64,
    /// Total running time, seconds.
    pub total_secs: f64,
}

fn secs(nanos: u128) -> f64 {
    nanos as f64 / 1e9
}

/// Scores a raw [`LinkOutcome`] against ground truth.
pub fn score(
    name: &str,
    outcome: &LinkOutcome,
    ground_truth: &HashSet<(u64, u64)>,
    cross_size: u128,
) -> MethodResult {
    let quality = evaluate(
        &outcome.matches,
        ground_truth,
        outcome.candidates,
        cross_size,
    );
    MethodResult {
        name: name.to_string(),
        quality,
        embed_secs: secs(outcome.embed_nanos),
        block_secs: secs(outcome.block_nanos),
        match_secs: secs(outcome.match_nanos),
        total_secs: secs(outcome.total_nanos()),
    }
}

/// Runs a linker over a pair and scores it.
pub fn run_linker<L: Linker>(linker: &mut L, pair: &DatasetPair) -> MethodResult {
    let outcome = linker.link(&pair.a, &pair.b);
    score(
        linker.name(),
        &outcome,
        &pair.ground_truth,
        pair.cross_size(),
    )
}

/// Averages several trials of the same method.
pub fn average(results: &[MethodResult]) -> MethodResult {
    assert!(!results.is_empty(), "need at least one trial");
    let n = results.len() as f64;
    let mut pc = 0.0;
    let mut pq = 0.0;
    let mut rr = 0.0;
    let mut found = 0u64;
    let mut truth = 0u64;
    let mut cand = 0u64;
    let mut ident = 0u64;
    let (mut e, mut bl, mut m, mut t) = (0.0, 0.0, 0.0, 0.0);
    for r in results {
        pc += r.quality.pc;
        pq += r.quality.pq;
        rr += r.quality.rr;
        found += r.quality.true_matches_found;
        truth += r.quality.ground_truth_size;
        cand += r.quality.candidates;
        ident += r.quality.identified_unique;
        e += r.embed_secs;
        bl += r.block_secs;
        m += r.match_secs;
        t += r.total_secs;
    }
    MethodResult {
        name: results[0].name.clone(),
        quality: LinkageQuality {
            pc: pc / n,
            pq: pq / n,
            rr: rr / n,
            true_matches_found: found / results.len() as u64,
            ground_truth_size: truth / results.len() as u64,
            candidates: cand / results.len() as u64,
            identified_unique: ident / results.len() as u64,
        },
        embed_secs: e / n,
        block_secs: bl / n,
        match_secs: m / n,
        total_secs: t / n,
    }
}

/// Convenience: run `trials` seeded repetitions of a linker-factory over a
/// pair-factory and average.
pub struct TrialRunner {
    /// Number of repetitions (the paper averages 50; defaults here are
    /// smaller for laptop-scale runs).
    pub trials: u64,
    /// Base seed; trial `i` uses `base_seed + i`.
    pub base_seed: u64,
}

impl TrialRunner {
    /// Creates a runner.
    pub fn new(trials: u64, base_seed: u64) -> Self {
        assert!(trials > 0, "need at least one trial");
        Self { trials, base_seed }
    }

    /// Runs and averages. `make` receives the trial seed and returns the
    /// `(linker, pair)` for that trial.
    pub fn run<L, F>(&self, mut make: F) -> MethodResult
    where
        L: Linker,
        F: FnMut(u64) -> (L, DatasetPair),
    {
        let results: Vec<MethodResult> = (0..self.trials)
            .map(|i| {
                let (mut linker, pair) = make(self.base_seed + i);
                run_linker(&mut linker, &pair)
            })
            .collect();
        average(&results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbv_hb::metrics::LinkageQuality;

    fn result(name: &str, pc: f64, total: f64) -> MethodResult {
        MethodResult {
            name: name.into(),
            quality: LinkageQuality {
                pc,
                pq: 0.5,
                rr: 0.9,
                true_matches_found: 10,
                ground_truth_size: 20,
                candidates: 40,
                identified_unique: 12,
            },
            embed_secs: 0.1,
            block_secs: 0.2,
            match_secs: 0.3,
            total_secs: total,
        }
    }

    #[test]
    fn average_of_two() {
        let avg = average(&[result("x", 0.9, 1.0), result("x", 0.7, 3.0)]);
        assert!((avg.quality.pc - 0.8).abs() < 1e-12);
        assert!((avg.total_secs - 2.0).abs() < 1e-12);
        assert_eq!(avg.name, "x");
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn average_of_none_panics() {
        let _ = average(&[]);
    }
}
