//! Per-method embedding throughput — the microbenchmark behind Figure 8(b)
//! (time to convert data sets into each method's representation).

use cbv_hb::{AttributeSpec, Record, RecordSchema};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rl_baselines::bloom::BloomEncoder;
use rl_baselines::stringmap::StringMap;
use rl_datagen::{NcvrSource, RecordSource};
use std::hint::black_box;
use textdist::{Alphabet, QGramSet};

fn sample_records(n: usize, seed: u64) -> Vec<Record> {
    let mut rng = StdRng::seed_from_u64(seed);
    NcvrSource.sample_many(n, &mut rng)
}

fn bench_cvector_embedding(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let schema = RecordSchema::build(
        Alphabet::linkage(),
        vec![
            AttributeSpec::new("FirstName", 2, 15, false, 5),
            AttributeSpec::new("LastName", 2, 15, false, 5),
            AttributeSpec::new("Address", 2, 68, false, 10),
            AttributeSpec::new("Town", 2, 22, false, 10),
        ],
        &mut rng,
    );
    let records = sample_records(1_000, 2);
    c.bench_function("embed_cvector_record_x1000", |b| {
        b.iter(|| {
            for r in &records {
                black_box(schema.embed(black_box(r)).unwrap());
            }
        })
    });
}

fn bench_bloom_embedding(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let encoders: Vec<BloomEncoder> = (0..4)
        .map(|_| BloomEncoder::random(Alphabet::linkage(), 2, 500, 15, &mut rng))
        .collect();
    let records = sample_records(1_000, 4);
    c.bench_function("embed_bloom_record_x1000", |b| {
        b.iter(|| {
            for r in &records {
                for (e, f) in encoders.iter().zip(&r.fields) {
                    black_box(e.encode(black_box(f)));
                }
            }
        })
    });
}

fn bench_harra_embedding(c: &mut Criterion) {
    let alphabet = Alphabet::linkage();
    let records = sample_records(1_000, 5);
    c.bench_function("embed_harra_record_set_x1000", |b| {
        b.iter(|| {
            for r in &records {
                let mut all: Vec<u64> = Vec::new();
                for f in &r.fields {
                    all.extend_from_slice(
                        QGramSet::build_unpadded(black_box(f), 2, &alphabet).indexes(),
                    );
                }
                all.sort_unstable();
                all.dedup();
                black_box(all);
            }
        })
    });
}

fn bench_stringmap_embedding(c: &mut Criterion) {
    // StringMap embedding of a single value (the fit is amortized).
    let mut rng = StdRng::seed_from_u64(6);
    let records = sample_records(300, 7);
    let names: Vec<&str> = records.iter().map(|r| r.field(1)).collect();
    let map = StringMap::fit(&names, 20, 2, &mut rng);
    c.bench_function("embed_stringmap_value", |b| {
        b.iter(|| black_box(map.embed(black_box("WINTERBOTTOM"))))
    });
    // And the fit itself at a modest sample size — the expensive part.
    c.bench_function("fit_stringmap_300values_d20", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(8);
            black_box(StringMap::fit(black_box(&names), 20, 2, &mut rng))
        })
    });
}

criterion_group!(
    benches,
    bench_cvector_embedding,
    bench_bloom_embedding,
    bench_harra_embedding,
    bench_stringmap_embedding
);
criterion_main!(benches);
