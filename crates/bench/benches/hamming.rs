//! Distance-kernel benchmarks: the "Hamming distance can be computed very
//! fast" claim (Section 1) that underpins the compact-embedding design.
//!
//! Covers the paper's three vector regimes: the 120-bit NCVR record-level
//! c-vector, the 267-bit DBLP one, and the 2000-bit BfH Bloom-filter
//! record, plus the edit distance they replace.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rl_bitvec::{naive_hamming, BitVec};
use std::hint::black_box;
use textdist::{levenshtein, levenshtein_within};

fn random_bitvec(len: usize, density: f64, rng: &mut StdRng) -> BitVec {
    let mut v = BitVec::zeros(len);
    for i in 0..len {
        if rng.random::<f64>() < density {
            v.set(i);
        }
    }
    v
}

fn bench_hamming(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("hamming_distance");
    for bits in [120usize, 267, 2000] {
        let a = random_bitvec(bits, 0.3, &mut rng);
        let b = random_bitvec(bits, 0.3, &mut rng);
        group.bench_with_input(
            BenchmarkId::new("packed_popcount", bits),
            &bits,
            |bench, _| bench.iter(|| black_box(&a).hamming(black_box(&b))),
        );
    }
    group.finish();
}

fn bench_edit_distance(c: &mut Criterion) {
    let mut group = c.benchmark_group("edit_distance");
    let pairs = [
        ("JONES", "JONAS", "name"),
        (
            "EFFICIENT RECORD LINKAGE USING A COMPACT HAMMING SPACE",
            "EFFICIENT RECORD LINKAGE USING A COMPACT HAMMINF SPACE",
            "title",
        ),
    ];
    for (a, b, label) in pairs {
        group.bench_function(BenchmarkId::new("levenshtein", label), |bench| {
            bench.iter(|| levenshtein(black_box(a), black_box(b)))
        });
        group.bench_function(BenchmarkId::new("levenshtein_within_2", label), |bench| {
            bench.iter(|| levenshtein_within(black_box(a), black_box(b), 2))
        });
    }
    group.finish();
}

/// The distance-computation gap the embedding buys: one 120-bit popcount
/// distance versus one edit distance on the original strings.
fn bench_embedding_payoff(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let a = random_bitvec(120, 0.3, &mut rng);
    let b = random_bitvec(120, 0.3, &mut rng);
    let mut group = c.benchmark_group("embedding_payoff");
    group.bench_function("cvector_120bit_distance", |bench| {
        bench.iter(|| black_box(&a).hamming(black_box(&b)))
    });
    group.bench_function("record_edit_distance_4_fields", |bench| {
        bench.iter(|| {
            levenshtein(black_box("JOHN"), black_box("JOHM"))
                + levenshtein(black_box("SMITH"), black_box("SMITH"))
                + levenshtein(black_box("12 OAK STREET"), black_box("12 OAK STREET"))
                + levenshtein(black_box("DURHAM"), black_box("DURHAM"))
        })
    });
    group.finish();
}

/// Reference kernel (per-bit loop) for the popcount ablation.
fn bench_naive_reference(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let a = random_bitvec(120, 0.3, &mut rng);
    let b = random_bitvec(120, 0.3, &mut rng);
    c.bench_function("naive_hamming_120bit", |bench| {
        bench.iter(|| naive_hamming(black_box(&a), black_box(&b)))
    });
}

criterion_group!(
    benches,
    bench_hamming,
    bench_edit_distance,
    bench_embedding_payoff,
    bench_naive_reference
);
criterion_main!(benches);
