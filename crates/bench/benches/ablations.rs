//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * `dedup_*` — Algorithm 2's unique-id collection on vs off (repeated
//!   distance computations across redundant tables).
//! * `popcount_*` — packed-word XOR+popcount vs a per-bit loop.
//! * `sparsity_*` — blocking over compact c-vectors vs the full `|S|^q`
//!   q-gram vectors whose sparsity over-populates buckets (Section 5.2's
//!   motivation).

use cbv_hb::blocking::BlockingPlan;
use cbv_hb::matcher::{match_structure_literal, Classifier, MatchStats, RecordStore};
use cbv_hb::qvector::QGramVectorEmbedder;
use cbv_hb::{AttributeSpec, RecordSchema, Rule};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rl_bitvec::{naive_hamming, BitVec};
use rl_datagen::{DatasetPair, NcvrSource, PairConfig, PerturbationScheme};
use rl_lsh::{BitSampler, BlockingTable};
use std::hint::black_box;
use textdist::Alphabet;

fn schema(rng: &mut StdRng) -> RecordSchema {
    RecordSchema::build(
        Alphabet::linkage(),
        vec![
            AttributeSpec::new("FirstName", 2, 15, false, 5),
            AttributeSpec::new("LastName", 2, 15, false, 5),
            AttributeSpec::new("Address", 2, 68, false, 10),
            AttributeSpec::new("Town", 2, 22, false, 10),
        ],
        rng,
    )
}

fn pair(n: usize, seed: u64) -> DatasetPair {
    let mut rng = StdRng::seed_from_u64(seed);
    DatasetPair::generate(
        &NcvrSource,
        PairConfig::new(n, PerturbationScheme::Light),
        &mut rng,
    )
}

/// Algorithm 2 with and without the unique-id collection.
fn bench_dedup(c: &mut Criterion) {
    let p = pair(2_000, 1);
    let mut rng = StdRng::seed_from_u64(2);
    let s = schema(&mut rng);
    let rule = Rule::and((0..4).map(|i| Rule::pred(i, 4)));
    let mut plan = BlockingPlan::compile(&s, &rule, 0.01, &mut rng).unwrap();
    let mut store = RecordStore::new();
    for r in &p.a {
        let e = s.embed(r).unwrap();
        plan.insert(&e);
        store.insert(e);
    }
    let probes: Vec<_> = p.b.iter().take(200).map(|r| s.embed(r).unwrap()).collect();
    let classifier = Classifier::Rule(rule);
    let structure = &plan.structures()[0];
    let mut group = c.benchmark_group("algorithm2_dedup");
    group.bench_function("with_unique_collection", |b| {
        b.iter(|| {
            let mut stats = MatchStats::default();
            for probe in &probes {
                black_box(match_structure_literal(
                    structure,
                    &store,
                    probe,
                    &classifier,
                    true,
                    &mut stats,
                ));
            }
            stats
        })
    });
    group.bench_function("without_unique_collection", |b| {
        b.iter(|| {
            let mut stats = MatchStats::default();
            for probe in &probes {
                black_box(match_structure_literal(
                    structure,
                    &store,
                    probe,
                    &classifier,
                    false,
                    &mut stats,
                ));
            }
            stats
        })
    });
    group.finish();
}

/// Packed popcount kernel vs per-bit reference at the paper's sizes.
fn bench_popcount(c: &mut Criterion) {
    let a = BitVec::from_positions(120, (0..40).map(|i| i * 3));
    let b = BitVec::from_positions(120, (0..40).map(|i| i * 3 + 1));
    let mut group = c.benchmark_group("popcount_kernel");
    group.bench_function("packed", |bench| {
        bench.iter(|| black_box(&a).hamming(black_box(&b)))
    });
    group.bench_function("naive_per_bit", |bench| {
        bench.iter(|| naive_hamming(black_box(&a), black_box(&b)))
    });
    group.finish();
}

/// Sparsity ablation (Section 5.2): bit-sampling LSH over the full q-gram
/// vector space concentrates keys on all-zero samples, over-populating a
/// few buckets; compact c-vectors spread them. We measure the probe cost
/// that over-population causes.
fn bench_sparsity(c: &mut Criterion) {
    let p = pair(2_000, 3);
    let alphabet = Alphabet::linkage();
    let k = 10usize;
    let mut group = c.benchmark_group("sparsity");
    group.sample_size(10);

    // Full q-gram vectors for the last-name attribute.
    let full = QGramVectorEmbedder::new(alphabet.clone(), 2, false);
    let mut rng = StdRng::seed_from_u64(4);
    let sampler_full = BitSampler::random(full.size(), k, &mut rng).unwrap();
    let mut table_full = BlockingTable::new();
    let full_a: Vec<BitVec> = p.a.iter().map(|r| full.embed(r.field(1))).collect();
    for (i, v) in full_a.iter().enumerate() {
        table_full.insert(sampler_full.key(v), i as u64);
    }
    let full_b: Vec<BitVec> =
        p.b.iter()
            .take(200)
            .map(|r| full.embed(r.field(1)))
            .collect();
    group.bench_function("probe_full_qgram_vector", |bench| {
        bench.iter(|| {
            let mut touched = 0usize;
            for v in &full_b {
                touched += table_full.get(sampler_full.key(v)).len();
            }
            black_box(touched)
        })
    });

    // Compact c-vectors for the same attribute.
    let mut rng = StdRng::seed_from_u64(5);
    let compact = cbv_hb::CVectorEmbedder::random(alphabet, 2, 15, false, &mut rng);
    let sampler_compact = BitSampler::random(15, k, &mut rng).unwrap();
    let mut table_compact = BlockingTable::new();
    let compact_a: Vec<BitVec> = p.a.iter().map(|r| compact.embed(r.field(1))).collect();
    for (i, v) in compact_a.iter().enumerate() {
        table_compact.insert(sampler_compact.key(v), i as u64);
    }
    let compact_b: Vec<BitVec> =
        p.b.iter()
            .take(200)
            .map(|r| compact.embed(r.field(1)))
            .collect();
    group.bench_function("probe_compact_cvector", |bench| {
        bench.iter(|| {
            let mut touched = 0usize;
            for v in &compact_b {
                touched += table_compact.get(sampler_compact.key(v)).len();
            }
            black_box(touched)
        })
    });
    group.finish();

    // Print the structural diagnostic once (bucket over-population).
    eprintln!(
        "sparsity diagnostic: full-vector table {} buckets (max {}), compact table {} buckets (max {})",
        table_full.num_buckets(),
        table_full.max_bucket(),
        table_compact.num_buckets(),
        table_compact.max_bucket(),
    );
}

criterion_group!(benches, bench_dedup, bench_popcount, bench_sparsity);
criterion_main!(benches);
