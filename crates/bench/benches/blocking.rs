//! Blocking-mechanism benchmarks: indexing and probing the HB structures,
//! the K trade-off behind Figure 8(a), and rule compilation.

use cbv_hb::blocking::BlockingPlan;
use cbv_hb::pipeline::BlockingMode;
use cbv_hb::{AttributeSpec, LinkageConfig, LinkagePipeline, RecordSchema, Rule};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rl_datagen::{DatasetPair, NcvrSource, PairConfig, PerturbationScheme};
use std::hint::black_box;
use textdist::Alphabet;

fn schema(rng: &mut StdRng) -> RecordSchema {
    RecordSchema::build(
        Alphabet::linkage(),
        vec![
            AttributeSpec::new("FirstName", 2, 15, false, 5),
            AttributeSpec::new("LastName", 2, 15, false, 5),
            AttributeSpec::new("Address", 2, 68, false, 10),
            AttributeSpec::new("Town", 2, 22, false, 10),
        ],
        rng,
    )
}

fn pair(n: usize, seed: u64) -> DatasetPair {
    let mut rng = StdRng::seed_from_u64(seed);
    DatasetPair::generate(
        &NcvrSource,
        PairConfig::new(n, PerturbationScheme::Light),
        &mut rng,
    )
}

/// Index + probe cost as K varies (the Figure 8(a) trade-off: larger K →
/// more selective buckets but more tables L).
fn bench_k_tradeoff(c: &mut Criterion) {
    let p = pair(2_000, 1);
    let mut group = c.benchmark_group("hb_link_vs_k");
    group.sample_size(10);
    for k in [20u32, 30, 40] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(2);
                let s = schema(&mut rng);
                let rule = Rule::and((0..4).map(|i| Rule::pred(i, 4)));
                let config = LinkageConfig {
                    delta: 0.1,
                    mode: BlockingMode::RecordLevel { theta: 4, k },
                    rule,
                    block: Default::default(),
                };
                let mut pipe = LinkagePipeline::new(s, config, &mut rng).unwrap();
                pipe.index(&p.a).unwrap();
                black_box(pipe.link(&p.b).unwrap())
            })
        });
    }
    group.finish();
}

/// Rule → blocking-plan compilation cost for the paper's three rules.
fn bench_rule_compilation(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let s = schema(&mut rng);
    let rules = [
        (
            "C1",
            Rule::and([Rule::pred(0, 4), Rule::pred(1, 4), Rule::pred(2, 8)]),
        ),
        (
            "C2",
            Rule::or([
                Rule::and([Rule::pred(0, 4), Rule::pred(1, 4)]),
                Rule::pred(2, 8),
            ]),
        ),
        (
            "C3",
            Rule::and([Rule::pred(0, 4), Rule::not(Rule::pred(1, 4))]),
        ),
    ];
    let mut group = c.benchmark_group("rule_compile");
    for (name, rule) in rules {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(4);
                black_box(BlockingPlan::compile(&s, black_box(&rule), 0.1, &mut rng).unwrap())
            })
        });
    }
    group.finish();
}

/// Probe-side candidate generation once the index is built.
fn bench_candidates(c: &mut Criterion) {
    let p = pair(5_000, 5);
    let mut rng = StdRng::seed_from_u64(6);
    let s = schema(&mut rng);
    let rule = Rule::and([Rule::pred(0, 4), Rule::pred(1, 4), Rule::pred(2, 8)]);
    let mut plan = BlockingPlan::compile(&s, &rule, 0.1, &mut rng).unwrap();
    let embedded_a: Vec<_> = p.a.iter().map(|r| s.embed(r).unwrap()).collect();
    for e in &embedded_a {
        plan.insert(e);
    }
    let probes: Vec<_> = p.b.iter().take(100).map(|r| s.embed(r).unwrap()).collect();
    c.bench_function("candidates_100probes_5000indexed", |b| {
        b.iter(|| {
            for probe in &probes {
                black_box(plan.candidates(black_box(probe)));
            }
        })
    });
}

criterion_group!(
    benches,
    bench_k_tradeoff,
    bench_rule_compilation,
    bench_candidates
);
criterion_main!(benches);
