//! # rl-obs — observability primitives for the linkage service
//!
//! A dependency-free metrics layer: lock-free [`Counter`] / [`Gauge`]
//! atomics, a mergeable log-linear latency [`Histogram`], a named
//! [`Registry`], and a Prometheus text-format encoder
//! ([`encode_prometheus`]).
//!
//! The paper's evaluation (Section 6) is built entirely on measured
//! quality and wall-clock numbers; a production deployment of the same
//! pipeline needs the live equivalents — request counts, latency
//! distributions, queue saturation, and the Section 5.2 bucket-skew
//! pathology — without perturbing the hot path it measures. Every write
//! here is a handful of relaxed atomic operations; no locks are taken on
//! the recording side.
//!
//! ## Histogram scheme
//!
//! Buckets are **log-linear with fixed boundaries**: each power of two is
//! split into four linear sub-buckets (values 0–3 get exact buckets), for
//! 252 buckets covering the full `u64` range. Because the boundaries are
//! a pure function of the value — never adapted to the data — two
//! histograms recorded on different shards (or different processes) merge
//! by adding bucket counts, and the merge is *exact*: it equals the
//! histogram of the concatenated samples. Quantiles are read from the
//! merged counts with an error bounded by the sub-bucket width (≤ 25 % of
//! the value, typically far less).
//!
//! ## Example
//!
//! ```
//! use rl_obs::{Registry, Unit};
//!
//! let registry = Registry::new("rl");
//! let requests = registry.counter("requests_total", "Requests served", &[("type", "probe")]);
//! let latency = registry.histogram(
//!     "request_seconds",
//!     "Request latency",
//!     &[("type", "probe")],
//!     Unit::Seconds,
//! );
//! requests.inc();
//! latency.observe(1_500_000); // nanoseconds
//! let snapshot = registry.snapshot();
//! assert_eq!(snapshot.counters[0].value, 1);
//! let text = rl_obs::encode_prometheus(&snapshot);
//! assert!(text.contains("rl_requests_total{type=\"probe\"} 1"));
//! ```

pub mod histogram;
pub mod prometheus;
pub mod registry;

pub use histogram::{bucket_upper_bound, Counter, Gauge, Histogram, HistogramData, NUM_BUCKETS};
pub use prometheus::encode_prometheus;
pub use registry::{CounterPoint, GaugePoint, HistogramPoint, MetricsSnapshot, Registry, Unit};
