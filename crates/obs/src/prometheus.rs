//! Prometheus text exposition format (version 0.0.4) encoder.
//!
//! Produces the `# HELP` / `# TYPE` / sample-line layout a Prometheus
//! scraper ingests. Histograms registered with [`crate::Unit::Seconds`]
//! are scaled from recorded nanoseconds to seconds (the Prometheus base
//! unit); bucket lines are cumulative over the fixed log-linear
//! boundaries, emitting only boundaries that separate non-empty buckets
//! plus the mandatory `+Inf`.

use crate::histogram::bucket_upper_bound;
use crate::registry::{MetricsSnapshot, Unit};
use std::fmt::Write;

/// Escapes a label value per the exposition format.
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Renders `{k="v",...}` (empty string when there are no labels).
fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Formats a scaled value: integral counts stay integral, seconds get
/// enough digits to be useful at nanosecond resolution.
fn scaled(v: u64, unit: Unit) -> String {
    match unit {
        Unit::Count => v.to_string(),
        Unit::Seconds => format!("{:.9}", v as f64 / 1e9),
    }
}

/// Emits `# HELP` / `# TYPE` once per metric name (the format forbids
/// repeating them when one name spans several label sets).
fn header(out: &mut String, seen: &mut Vec<String>, name: &str, help: &str, kind: &str) {
    if seen.iter().any(|s| s == name) {
        return;
    }
    seen.push(name.to_string());
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Encodes a snapshot in the Prometheus text exposition format.
pub fn encode_prometheus(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut seen: Vec<String> = Vec::new();
    for c in &snapshot.counters {
        header(&mut out, &mut seen, &c.name, &c.help, "counter");
        let _ = writeln!(
            out,
            "{}{} {}",
            c.name,
            label_block(&c.labels, None),
            c.value
        );
    }
    for g in &snapshot.gauges {
        header(&mut out, &mut seen, &g.name, &g.help, "gauge");
        let _ = writeln!(
            out,
            "{}{} {}",
            g.name,
            label_block(&g.labels, None),
            g.value
        );
    }
    for h in &snapshot.histograms {
        header(&mut out, &mut seen, &h.name, &h.help, "histogram");
        let mut cumulative = 0u64;
        for &(i, n) in &h.data.buckets {
            cumulative += n;
            let le = scaled(bucket_upper_bound(i as usize), h.unit);
            let _ = writeln!(
                out,
                "{}_bucket{} {cumulative}",
                h.name,
                label_block(&h.labels, Some(("le", &le)))
            );
        }
        let _ = writeln!(
            out,
            "{}_bucket{} {}",
            h.name,
            label_block(&h.labels, Some(("le", "+Inf"))),
            h.data.count
        );
        let _ = writeln!(
            out,
            "{}_sum{} {}",
            h.name,
            label_block(&h.labels, None),
            scaled(h.data.sum, h.unit)
        );
        let _ = writeln!(
            out,
            "{}_count{} {}",
            h.name,
            label_block(&h.labels, None),
            h.data.count
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    /// A line-level validity check for the exposition format: every line
    /// is a comment or `name{labels} value` with a parseable value.
    pub fn assert_valid_exposition(text: &str) {
        for line in text.lines() {
            if line.starts_with('#') {
                assert!(
                    line.starts_with("# HELP ") || line.starts_with("# TYPE "),
                    "bad comment line: {line}"
                );
                continue;
            }
            let (name_part, value) = line.rsplit_once(' ').expect("sample line needs a value");
            let name = name_part.split('{').next().unwrap();
            assert!(
                !name.is_empty()
                    && name
                        .chars()
                        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "bad metric name in: {line}"
            );
            if name_part.contains('{') {
                assert!(name_part.ends_with('}'), "unclosed label block: {line}");
            }
            assert!(
                value == "+Inf" || value.parse::<f64>().is_ok(),
                "unparseable value in: {line}"
            );
        }
    }

    #[test]
    fn counter_gauge_histogram_exposition() {
        let r = Registry::new("rl");
        let c = r.counter("requests_total", "Requests served", &[("type", "probe")]);
        let c2 = r.counter("requests_total", "Requests served", &[("type", "index")]);
        let g = r.gauge("indexed_records", "Records indexed", &[]);
        let h = r.histogram(
            "request_seconds",
            "Request latency",
            &[("type", "probe")],
            Unit::Seconds,
        );
        c.add(7);
        c2.add(2);
        g.set(1234);
        h.observe(1_000_000); // 1ms
        h.observe(2_000_000);
        let text = encode_prometheus(&r.snapshot());
        assert_valid_exposition(&text);
        assert!(text.contains("# TYPE rl_requests_total counter"));
        // HELP/TYPE emitted once even with two label sets.
        assert_eq!(text.matches("# TYPE rl_requests_total").count(), 1);
        assert!(text.contains("rl_requests_total{type=\"probe\"} 7"));
        assert!(text.contains("rl_requests_total{type=\"index\"} 2"));
        assert!(text.contains("rl_indexed_records 1234"));
        assert!(text.contains("rl_request_seconds_count{type=\"probe\"} 2"));
        assert!(text.contains("le=\"+Inf\"} 2"));
        // Nanoseconds exposed as seconds.
        assert!(text.contains("rl_request_seconds_sum{type=\"probe\"} 0.003000000"));
    }

    #[test]
    fn bucket_lines_are_cumulative_and_bounded() {
        let r = Registry::new("t");
        let h = r.histogram("lat_seconds", "l", &[], Unit::Seconds);
        for v in [10u64, 10, 100, 1_000, 1_000_000] {
            h.observe(v);
        }
        let text = encode_prometheus(&r.snapshot());
        assert_valid_exposition(&text);
        let counts: Vec<u64> = text
            .lines()
            .filter(|l| l.contains("_bucket"))
            .map(|l| l.rsplit_once(' ').unwrap().1.parse().unwrap())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{counts:?}");
        assert_eq!(*counts.last().unwrap(), 5, "+Inf bucket holds the total");
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new("t");
        let c = r.counter("odd_total", "odd", &[("path", "a\"b\\c")]);
        c.inc();
        let text = encode_prometheus(&r.snapshot());
        assert!(text.contains(r#"path="a\"b\\c""#), "{text}");
    }
}
