//! Lock-free recording primitives: [`Counter`], [`Gauge`], and the
//! log-linear [`Histogram`].
//!
//! All writes are relaxed atomic operations — safe to share across shard
//! workers via `Arc` and cheap enough for per-request hot paths. Reads
//! ([`Histogram::snapshot`]) are concurrent with writes and may observe a
//! momentarily torn view (count recorded, sum not yet); the drift is one
//! in-flight sample and irrelevant for monitoring.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Duration;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A value that can move both ways (queue depth, indexed records).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (negative to decrease).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Linear sub-buckets per power of two: 2^SUB_BITS.
const SUB_BITS: u32 = 2;
const SUB: u64 = 1 << SUB_BITS;

/// Total bucket count of the fixed log-linear scheme. Values `0..4` get
/// exact buckets; every power of two `[2^e, 2^{e+1})` for `e ≥ 2` is split
/// into four linear sub-buckets, up to `e = 63`.
pub const NUM_BUCKETS: usize = (SUB + (64 - SUB_BITS as u64) * SUB) as usize;

/// Bucket index for a value — a pure function of the value, identical in
/// every histogram, which is what makes shard-merge exact.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let msb = 63 - u64::from(v.leading_zeros());
    let sub = (v >> (msb - u64::from(SUB_BITS))) & (SUB - 1);
    (SUB + (msb - u64::from(SUB_BITS)) * SUB + sub) as usize
}

/// Inclusive upper bound of bucket `i` (saturating at `u64::MAX`).
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i < SUB as usize {
        return i as u64;
    }
    let j = (i - SUB as usize) as u64;
    let msb = (j / SUB) as u32 + SUB_BITS;
    let sub = j % SUB;
    let upper = (1u128 << msb) + u128::from(sub + 1) * (1u128 << (msb - SUB_BITS));
    u64::try_from(upper - 1).unwrap_or(u64::MAX)
}

/// A lock-free latency histogram over fixed log-linear buckets.
///
/// Values are dimensionless `u64`s; the serving path records nanoseconds
/// and exposes seconds (see [`crate::Unit`]). Recording is a few relaxed
/// atomic adds; histograms with equal (i.e. any) boundaries merge exactly
/// by adding bucket counts.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value.
    pub fn observe(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds (saturating on the absurd).
    pub fn observe_duration(&self, d: Duration) {
        self.observe(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Adds every bucket of `other` into `self` — exact, because the
    /// boundaries are fixed: the result equals a histogram that observed
    /// the concatenation of both sample streams.
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// A serializable copy of the current state (sparse: empty buckets are
    /// omitted).
    pub fn snapshot(&self) -> HistogramData {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((i as u32, n))
            })
            .collect();
        HistogramData {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A point-in-time histogram state: sparse `(bucket index, count)` pairs
/// plus exact count / sum / max. This is what crosses the wire in the
/// `Metrics` reply and what quantiles are read from.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramData {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Largest recorded value (exact, not bucketed).
    pub max: u64,
    /// Non-empty buckets as `(index, count)`, index ascending.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramData {
    /// The `q`-quantile (`0.0 ..= 1.0`) as the upper bound of the bucket
    /// holding that rank, clamped to the exact observed maximum. Returns 0
    /// for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for &(i, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bucket_upper_bound(i as usize).min(self.max);
            }
        }
        self.max
    }

    /// Arithmetic mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Merges another snapshot into this one (same fixed boundaries, so
    /// the merge is exact).
    pub fn merge(&mut self, other: &HistogramData) {
        let mut merged: Vec<(u32, u64)> = Vec::with_capacity(self.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ia, na)), Some(&&(ib, nb))) => {
                    if ia == ib {
                        merged.push((ia, na + nb));
                        a.next();
                        b.next();
                    } else if ia < ib {
                        merged.push((ia, na));
                        a.next();
                    } else {
                        merged.push((ib, nb));
                        b.next();
                    }
                }
                (Some(&&p), None) => {
                    merged.push(p);
                    a.next();
                }
                (None, Some(&&p)) => {
                    merged.push(p);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.buckets = merged;
        self.count += other.count;
        // Wrapping, to agree exactly with the live histogram's atomic adds
        // (relevant only for absurd value magnitudes, not real latencies).
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn bucket_index_is_monotone_and_consistent_with_bounds() {
        let mut prev = 0usize;
        for e in 0..64u32 {
            for off in [0u64, 1, (1u64 << e) / 3] {
                let v = (1u64 << e).saturating_add(off);
                let i = bucket_index(v);
                assert!(i >= prev || v < SUB, "index not monotone at {v}");
                prev = prev.max(i);
                assert!(i < NUM_BUCKETS);
                assert!(
                    v <= bucket_upper_bound(i),
                    "{v} above its bucket bound {}",
                    bucket_upper_bound(i)
                );
                if i > 0 {
                    assert!(v > bucket_upper_bound(i - 1), "{v} below previous bound");
                }
            }
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        assert_eq!(bucket_upper_bound(NUM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn small_values_get_exact_buckets() {
        for v in 0..SUB {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_upper_bound(v as usize), v);
        }
    }

    #[test]
    fn quantiles_track_known_distribution() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.observe(v * 1000); // 1µs .. 1ms in ns
        }
        let d = h.snapshot();
        assert_eq!(d.count, 1000);
        let p50 = d.quantile(0.5);
        let p99 = d.quantile(0.99);
        // Log-linear error is bounded by the sub-bucket width (≤ 25 %).
        assert!((400_000..=650_000).contains(&p50), "p50 = {p50}");
        assert!((950_000..=1_250_000).contains(&p99), "p99 = {p99}");
        assert_eq!(d.quantile(1.0), 1_000_000); // clamped to exact max
        assert_eq!(d.max, 1_000_000);
        assert!((d.mean() - 500_500_f64 * 1000.0 / 1000.0).abs() < 1e-6);
    }

    #[test]
    fn empty_histogram_is_zeroes() {
        let d = Histogram::new().snapshot();
        assert_eq!(d.count, 0);
        assert_eq!(d.quantile(0.5), 0);
        assert_eq!(d.mean(), 0.0);
        assert!(d.buckets.is_empty());
    }

    #[test]
    fn concurrent_observes_lose_nothing() {
        let h = std::sync::Arc::new(Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.observe(t * 1_000_000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let d = h.snapshot();
        assert_eq!(d.count, 40_000);
        assert_eq!(d.buckets.iter().map(|&(_, n)| n).sum::<u64>(), 40_000);
    }

    proptest! {
        /// The merge invariant the sharded serving path relies on: merging
        /// shard-local histograms (live merge and snapshot merge alike)
        /// yields exactly the bucket counts of a histogram that observed
        /// the concatenated sample stream.
        #[test]
        fn merge_equals_concatenation(
            seed in 0u64..200,
            shards in 1usize..6,
            per_shard in 0usize..300,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let reference = Histogram::new();
            let locals: Vec<Histogram> =
                (0..shards).map(|_| Histogram::new()).collect();
            for local in &locals {
                for _ in 0..per_shard {
                    // Span many octaves, like real latencies do.
                    let v = rng.random_range(0u64..u64::MAX) >> rng.random_range(0u32..60);
                    local.observe(v);
                    reference.observe(v);
                }
            }
            // Live merge into a fresh accumulator.
            let live = Histogram::new();
            for local in &locals {
                live.merge(local);
            }
            prop_assert_eq!(live.snapshot(), reference.snapshot());
            // Snapshot merge agrees with the live merge.
            let mut snap = HistogramData::default();
            for local in &locals {
                snap.merge(&local.snapshot());
            }
            prop_assert_eq!(snap, reference.snapshot());
        }
    }

    #[test]
    fn merge_is_exact_not_approximate() {
        // A targeted version of the property: values chosen to straddle
        // bucket boundaries on different shards.
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [0, 1, 3, 4, 5, 7, 8, 1023, 1024, u64::MAX] {
            a.observe(v);
        }
        for v in [2, 6, 1024, 1025, u64::MAX - 1] {
            b.observe(v);
        }
        let all = Histogram::new();
        for v in [
            0,
            1,
            3,
            4,
            5,
            7,
            8,
            1023,
            1024,
            u64::MAX,
            2,
            6,
            1024,
            1025,
            u64::MAX - 1,
        ] {
            all.observe(v);
        }
        a.merge(&b);
        assert_eq!(a.snapshot(), all.snapshot());
    }
}
