//! The metrics registry: named, labelled metric handles plus serializable
//! point-in-time snapshots.
//!
//! Registration happens once at startup and hands back `Arc` handles; the
//! hot path touches only those handles (lock-free atomics). The registry's
//! own lock is taken solely by `register`/`snapshot`, never by recording.

use crate::histogram::{Counter, Gauge, Histogram, HistogramData};
use serde::{Deserialize, Serialize};
use std::sync::{Arc, RwLock};

/// What a metric's `u64` values mean, so the Prometheus encoder can scale
/// them to base units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Unit {
    /// Dimensionless counts; exposed verbatim.
    Count,
    /// Durations recorded in **nanoseconds**, exposed in **seconds**
    /// (Prometheus base unit). Name such metrics `*_seconds`.
    Seconds,
}

#[derive(Debug, Clone)]
struct Desc {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    unit: Unit,
}

fn desc(name: &str, help: &str, labels: &[(&str, &str)], unit: Unit) -> Desc {
    Desc {
        name: name.to_string(),
        help: help.to_string(),
        labels: labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect(),
        unit,
    }
}

#[derive(Default)]
struct Inner {
    counters: Vec<(Desc, Arc<Counter>)>,
    gauges: Vec<(Desc, Arc<Gauge>)>,
    histograms: Vec<(Desc, Arc<Histogram>)>,
}

/// A named collection of metrics with one shared name prefix.
pub struct Registry {
    prefix: String,
    inner: RwLock<Inner>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("prefix", &self.prefix)
            .finish()
    }
}

impl Registry {
    /// An empty registry; `prefix` (e.g. `"rl"`) is prepended to every
    /// metric name as `<prefix>_<name>`.
    pub fn new(prefix: &str) -> Self {
        Self {
            prefix: prefix.to_string(),
            inner: RwLock::new(Inner::default()),
        }
    }

    /// Registers (or re-registers under a new label set) a counter.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let handle = Arc::new(Counter::new());
        let mut inner = self.inner.write().expect("registry poisoned");
        inner
            .counters
            .push((desc(name, help, labels, Unit::Count), Arc::clone(&handle)));
        handle
    }

    /// Registers a gauge.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let handle = Arc::new(Gauge::new());
        let mut inner = self.inner.write().expect("registry poisoned");
        inner
            .gauges
            .push((desc(name, help, labels, Unit::Count), Arc::clone(&handle)));
        handle
    }

    /// Registers a histogram; `unit` controls Prometheus scaling.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        unit: Unit,
    ) -> Arc<Histogram> {
        let handle = Arc::new(Histogram::new());
        let mut inner = self.inner.write().expect("registry poisoned");
        inner
            .histograms
            .push((desc(name, help, labels, unit), Arc::clone(&handle)));
        handle
    }

    /// A serializable point-in-time view of every registered metric, names
    /// fully prefixed. This is the payload of the server's `Metrics` reply.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.read().expect("registry poisoned");
        let full = |d: &Desc| format!("{}_{}", self.prefix, d.name);
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(d, c)| CounterPoint {
                    name: full(d),
                    help: d.help.clone(),
                    labels: d.labels.clone(),
                    value: c.get(),
                })
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(d, g)| GaugePoint {
                    name: full(d),
                    help: d.help.clone(),
                    labels: d.labels.clone(),
                    value: g.get(),
                })
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(d, h)| HistogramPoint {
                    name: full(d),
                    help: d.help.clone(),
                    labels: d.labels.clone(),
                    unit: d.unit,
                    data: h.snapshot(),
                })
                .collect(),
        }
    }
}

/// One counter sample.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterPoint {
    /// Fully prefixed metric name.
    pub name: String,
    /// Help text.
    pub help: String,
    /// Label pairs, registration order.
    pub labels: Vec<(String, String)>,
    /// Current value.
    pub value: u64,
}

/// One gauge sample.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GaugePoint {
    /// Fully prefixed metric name.
    pub name: String,
    /// Help text.
    pub help: String,
    /// Label pairs, registration order.
    pub labels: Vec<(String, String)>,
    /// Current value.
    pub value: i64,
}

/// One histogram sample.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramPoint {
    /// Fully prefixed metric name.
    pub name: String,
    /// Help text.
    pub help: String,
    /// Label pairs, registration order.
    pub labels: Vec<(String, String)>,
    /// Value unit (drives Prometheus scaling).
    pub unit: Unit,
    /// Bucket counts and aggregates.
    pub data: HistogramData,
}

/// Everything a `Metrics` request returns: the full registry, one point
/// per metric × label set. Serializable over the NDJSON protocol.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter samples.
    pub counters: Vec<CounterPoint>,
    /// Gauge samples.
    pub gauges: Vec<GaugePoint>,
    /// Histogram samples.
    pub histograms: Vec<HistogramPoint>,
}

impl MetricsSnapshot {
    /// The first counter with this fully prefixed name and label value
    /// (any key), if registered.
    pub fn counter_value(&self, name: &str, label_value: Option<&str>) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| {
                c.name == name && label_value.is_none_or(|v| c.labels.iter().any(|(_, lv)| lv == v))
            })
            .map(|c| c.value)
    }

    /// The first histogram with this fully prefixed name and label value
    /// (any key), if registered.
    pub fn histogram_data(&self, name: &str, label_value: Option<&str>) -> Option<&HistogramPoint> {
        self.histograms.iter().find(|h| {
            h.name == name && label_value.is_none_or(|v| h.labels.iter().any(|(_, lv)| lv == v))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_snapshot_reflects_recordings() {
        let r = Registry::new("rl");
        let c = r.counter("requests_total", "requests", &[("type", "probe")]);
        let g = r.gauge("indexed_records", "indexed", &[]);
        let h = r.histogram(
            "request_seconds",
            "latency",
            &[("type", "probe")],
            Unit::Seconds,
        );
        c.add(3);
        g.set(42);
        h.observe(1_000);
        h.observe(2_000);
        let s = r.snapshot();
        assert_eq!(s.counter_value("rl_requests_total", Some("probe")), Some(3));
        assert_eq!(s.counter_value("rl_requests_total", Some("index")), None);
        assert_eq!(s.gauges[0].value, 42);
        let hp = s
            .histogram_data("rl_request_seconds", Some("probe"))
            .unwrap();
        assert_eq!(hp.data.count, 2);
        assert_eq!(hp.unit, Unit::Seconds);
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let r = Registry::new("rl");
        let c = r.counter("requests_total", "requests", &[("type", "stats")]);
        let h = r.histogram("exec_seconds", "exec", &[("type", "stats")], Unit::Seconds);
        c.inc();
        h.observe(123_456);
        let s = r.snapshot();
        let json = serde_json::to_string(&s).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
