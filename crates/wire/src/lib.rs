//! # rl-wire — length-prefixed, CRC-checked binary framing
//!
//! The shared framing layer under protocol v7, WAL v2 segments, and the
//! replication stream. One frame on the wire is:
//!
//! ```text
//! offset  size  field
//! 0       2     magic  "RW"  (0x52 0x57)
//! 2       1     wire format version (currently 1)
//! 3       1     frame type tag (meaning assigned by the layer above)
//! 4       4     payload length, u32 little-endian
//! 8       4     CRC-32 (IEEE) of header bytes 2..8 + payload, u32 LE
//! 12      len   payload bytes
//! ```
//!
//! Design rules:
//!
//! - **The header is self-describing.** Magic + version reject foreign or
//!   future streams before any length is trusted; a max-frame guard
//!   rejects absurd lengths before any allocation.
//! - **Corruption is detected, never misparsed.** The CRC covers the full
//!   payload; a bit flip yields [`WireError::Corrupt`], a stream that ends
//!   mid-frame yields [`WireError::Truncated`].
//! - **No allocation per frame on the hot path.** [`FrameWriter`] batches
//!   encoded frames into one owned buffer flushed with a single write;
//!   [`FrameReader`] reads payloads into a reused internal buffer and
//!   lends them out as `&[u8]` (zero-copy for the caller). Both are
//!   resumable across `WouldBlock`/timeout errors, so they work over
//!   nonblocking sockets and read-timeout loops alike.
//! - [`peek_frame`] decodes from an in-memory buffer without consuming,
//!   for readiness-driven reactors that accumulate bytes themselves.

use std::fmt;
use std::io::{self, Read, Write};

/// First two bytes of every frame.
pub const MAGIC: [u8; 2] = *b"RW";
/// Current wire format version (header byte 2).
pub const WIRE_VERSION: u8 = 1;
/// Bytes before the payload: magic + version + tag + len + crc.
pub const HEADER_LEN: usize = 12;
/// Default maximum payload length (256 MiB) — matches the WAL's frame
/// guard; anything larger is treated as corruption, not a request.
pub const DEFAULT_MAX_FRAME: u32 = 256 * 1024 * 1024;

/// Table-driven IEEE CRC-32 (polynomial 0xEDB88320), the same checksum
/// the v1 JSON WAL frames used — moved here so every framed byte stream
/// in the workspace shares one implementation.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(bytes);
    crc.finish()
}

/// Incremental CRC-32 (IEEE), for checksums spanning disjoint buffers.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh state.
    pub fn new() -> Self {
        Crc32 { state: !0u32 }
    }

    /// Feeds bytes into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            let idx = ((self.state ^ u32::from(b)) & 0xFF) as usize;
            self.state = (self.state >> 8) ^ CRC_TABLE[idx];
        }
    }

    /// Finalizes (the state itself is untouched, so this can be read
    /// mid-stream).
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

/// The frame checksum: covers header bytes 2..8 (version, tag, length)
/// *and* the payload, so a bit flip anywhere but the magic is caught by
/// CRC rather than accepted as a different-but-valid frame.
fn frame_crc(version: u8, tag: u8, len: u32, payload: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(&[version, tag]);
    crc.update(&len.to_le_bytes());
    crc.update(payload);
    crc.finish()
}

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// Why a byte stream failed to parse as frames.
#[derive(Debug)]
pub enum WireError {
    /// An I/O error from the underlying stream. `WouldBlock` / `TimedOut`
    /// here are resumable: the reader keeps its partial state and the
    /// next call continues where it left off.
    Io(io::Error),
    /// The first two bytes were not `"RW"` — not a frame stream.
    BadMagic([u8; 2]),
    /// A frame from a newer (or corrupt) wire format.
    BadVersion(u8),
    /// Declared payload length exceeds the configured maximum.
    TooLarge { len: u32, max: u32 },
    /// Payload bytes did not match the header CRC.
    Corrupt { expected: u32, found: u32 },
    /// The stream ended mid-frame (peer closed between header and
    /// payload, or inside the header).
    Truncated,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o: {e}"),
            WireError::BadMagic(m) => {
                write!(f, "bad frame magic {:02x}{:02x} (want \"RW\")", m[0], m[1])
            }
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::TooLarge { len, max } => {
                write!(f, "frame payload {len} bytes exceeds max {max}")
            }
            WireError::Corrupt { expected, found } => {
                write!(
                    f,
                    "frame crc mismatch: header {expected:#010x}, payload {found:#010x}"
                )
            }
            WireError::Truncated => write!(f, "stream ended mid-frame"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

impl WireError {
    /// True when the error is a resumable read timeout / would-block, not
    /// a real failure.
    pub fn is_would_block(&self) -> bool {
        matches!(
            self,
            WireError::Io(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
        )
    }
}

/// An owned frame: type tag + payload. The codec unit for tests and for
/// call sites that buffer whole frames anyway; the streaming paths use
/// [`FrameWriter`]/[`FrameReader`] to avoid the per-frame allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Frame type tag — opaque to this layer.
    pub tag: u8,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

impl Frame {
    /// Builds a frame.
    pub fn new(tag: u8, payload: Vec<u8>) -> Self {
        Frame { tag, payload }
    }

    /// Total encoded size (header + payload).
    pub fn encoded_len(&self) -> usize {
        HEADER_LEN + self.payload.len()
    }

    /// Appends the encoded frame to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        encode_frame_into(self.tag, &self.payload, out);
    }

    /// Encodes into a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        self.encode_into(&mut out);
        out
    }

    /// Decodes exactly one frame from `bytes`; trailing bytes are an
    /// error (use [`peek_frame`] to parse out of a longer buffer).
    ///
    /// # Errors
    /// Any [`WireError`] the header or CRC check produces;
    /// [`WireError::Truncated`] when `bytes` is shorter than the declared
    /// frame or has trailing garbage.
    pub fn decode(bytes: &[u8]) -> Result<Frame, WireError> {
        match peek_frame(bytes, DEFAULT_MAX_FRAME)? {
            Some((tag, payload, consumed)) if consumed == bytes.len() => {
                Ok(Frame::new(tag, payload.to_vec()))
            }
            _ => Err(WireError::Truncated),
        }
    }
}

/// Appends one encoded frame (header + payload) to `out`.
pub fn encode_frame_into(tag: u8, payload: &[u8], out: &mut Vec<u8>) {
    debug_assert!(payload.len() <= DEFAULT_MAX_FRAME as usize);
    out.reserve(HEADER_LEN + payload.len());
    let len = payload.len() as u32;
    out.extend_from_slice(&MAGIC);
    out.push(WIRE_VERSION);
    out.push(tag);
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&frame_crc(WIRE_VERSION, tag, len, payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// A frame peeked from a buffer: `(tag, payload, consumed)`.
pub type Peeked<'a> = (u8, &'a [u8], usize);

/// Tries to decode one frame from the front of `buf` **without consuming
/// it**. Returns `Ok(Some((tag, payload, consumed)))` when a complete,
/// CRC-valid frame is present (`consumed` = header + payload bytes),
/// `Ok(None)` when more bytes are needed, and an error when the buffer
/// head can never become a valid frame.
///
/// # Errors
/// [`WireError::BadMagic`] / [`WireError::BadVersion`] /
/// [`WireError::TooLarge`] on a hopeless header,
/// [`WireError::Corrupt`] on a CRC mismatch.
pub fn peek_frame(buf: &[u8], max_frame: u32) -> Result<Option<Peeked<'_>>, WireError> {
    if buf.len() < HEADER_LEN {
        // Reject a wrong magic as soon as the first bytes show it, so a
        // JSON line accidentally sent to a binary stream fails fast.
        let n = buf.len().min(2);
        if buf[..n] != MAGIC[..n] {
            return Err(WireError::BadMagic([
                buf.first().copied().unwrap_or(0),
                buf.get(1).copied().unwrap_or(0),
            ]));
        }
        return Ok(None);
    }
    if buf[0..2] != MAGIC {
        return Err(WireError::BadMagic([buf[0], buf[1]]));
    }
    if buf[2] != WIRE_VERSION {
        return Err(WireError::BadVersion(buf[2]));
    }
    let tag = buf[3];
    let len = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]);
    if len > max_frame {
        return Err(WireError::TooLarge {
            len,
            max: max_frame,
        });
    }
    let expected = u32::from_le_bytes([buf[8], buf[9], buf[10], buf[11]]);
    let total = HEADER_LEN + len as usize;
    if buf.len() < total {
        return Ok(None);
    }
    let payload = &buf[HEADER_LEN..total];
    let found = frame_crc(buf[2], tag, len, payload);
    if found != expected {
        return Err(WireError::Corrupt { expected, found });
    }
    Ok(Some((tag, payload, total)))
}

/// Validates a frame whose header and payload sit in separate buffers
/// (the shape file-based readers produce) and returns the type tag.
///
/// # Errors
/// The same contract as [`peek_frame`]: magic/version errors on a
/// hopeless header, [`WireError::Corrupt`] when the CRC (or the declared
/// length vs. the payload actually supplied) does not match.
pub fn verify_frame(header: &[u8; HEADER_LEN], payload: &[u8]) -> Result<u8, WireError> {
    if header[0..2] != MAGIC {
        return Err(WireError::BadMagic([header[0], header[1]]));
    }
    if header[2] != WIRE_VERSION {
        return Err(WireError::BadVersion(header[2]));
    }
    let tag = header[3];
    let len = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    let expected = u32::from_le_bytes([header[8], header[9], header[10], header[11]]);
    let found = frame_crc(header[2], tag, len, payload);
    if len as usize != payload.len() || found != expected {
        return Err(WireError::Corrupt { expected, found });
    }
    Ok(tag)
}

/// Buffered frame writer: frames accumulate in one owned buffer and go
/// out in a single `write_all` on [`FrameWriter::flush`], so a pipelined
/// batch of requests costs one syscall, not one per frame.
#[derive(Debug)]
pub struct FrameWriter<W: Write> {
    inner: W,
    buf: Vec<u8>,
}

impl<W: Write> FrameWriter<W> {
    /// Wraps a stream.
    pub fn new(inner: W) -> Self {
        FrameWriter {
            inner,
            buf: Vec::with_capacity(4096),
        }
    }

    /// Encodes one frame into the output buffer (no I/O yet).
    pub fn write_frame(&mut self, tag: u8, payload: &[u8]) {
        encode_frame_into(tag, payload, &mut self.buf);
    }

    /// Bytes buffered and not yet flushed.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Writes all buffered frames and flushes the underlying stream.
    ///
    /// # Errors
    /// Propagates the underlying write error; the buffer is preserved so
    /// a resumable error (timeout) can be retried. On success the buffer
    /// is emptied but keeps its capacity.
    pub fn flush(&mut self) -> io::Result<()> {
        if !self.buf.is_empty() {
            self.inner.write_all(&self.buf)?;
            self.buf.clear();
        }
        self.inner.flush()
    }

    /// The wrapped stream.
    pub fn get_mut(&mut self) -> &mut W {
        &mut self.inner
    }

    /// Unwraps, discarding any unflushed bytes.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

/// Incremental frame-read state, independent of the stream: header and
/// payload fill across calls, so a read timeout mid-frame loses nothing.
#[derive(Debug)]
struct ReadState {
    hdr: [u8; HEADER_LEN],
    hdr_filled: usize,
    payload: Vec<u8>,
    payload_filled: usize,
    /// Some(len) once the header has been validated.
    expect: Option<usize>,
    max_frame: u32,
}

impl ReadState {
    fn new(max_frame: u32) -> Self {
        ReadState {
            hdr: [0; HEADER_LEN],
            hdr_filled: 0,
            payload: Vec::new(),
            payload_filled: 0,
            expect: None,
            max_frame,
        }
    }

    /// Validates the completed header, recording the expected length.
    fn commit_header(&mut self) -> Result<(), WireError> {
        if self.hdr[0..2] != MAGIC {
            return Err(WireError::BadMagic([self.hdr[0], self.hdr[1]]));
        }
        if self.hdr[2] != WIRE_VERSION {
            return Err(WireError::BadVersion(self.hdr[2]));
        }
        let len = u32::from_le_bytes([self.hdr[4], self.hdr[5], self.hdr[6], self.hdr[7]]);
        if len > self.max_frame {
            return Err(WireError::TooLarge {
                len,
                max: self.max_frame,
            });
        }
        let len = len as usize;
        if self.payload.len() < len {
            self.payload.resize(len, 0);
        }
        self.payload_filled = 0;
        self.expect = Some(len);
        Ok(())
    }

    /// Verifies the CRC of a completed payload and resets for the next
    /// frame. Returns (tag, len).
    fn commit_payload(&mut self) -> Result<(u8, usize), WireError> {
        let len = self
            .expect
            .take()
            .expect("payload committed without header");
        let expected = u32::from_le_bytes([self.hdr[8], self.hdr[9], self.hdr[10], self.hdr[11]]);
        let found = frame_crc(self.hdr[2], self.hdr[3], len as u32, &self.payload[..len]);
        if found != expected {
            return Err(WireError::Corrupt { expected, found });
        }
        let tag = self.hdr[3];
        self.hdr_filled = 0;
        Ok((tag, len))
    }
}

/// Buffered, resumable frame reader. Payload bytes land in an internal
/// reused buffer and are returned as a borrow — no allocation per frame
/// once the buffer has grown to the working set's frame size.
#[derive(Debug)]
pub struct FrameReader<R: Read> {
    inner: R,
    state: ReadState,
}

impl<R: Read> FrameReader<R> {
    /// Wraps a stream with the default max-frame guard.
    pub fn new(inner: R) -> Self {
        Self::with_max_frame(inner, DEFAULT_MAX_FRAME)
    }

    /// Wraps a stream with an explicit max payload length.
    pub fn with_max_frame(inner: R, max_frame: u32) -> Self {
        FrameReader {
            inner,
            state: ReadState::new(max_frame),
        }
    }

    /// Reads the next frame. Returns `Ok(None)` on a clean EOF at a
    /// frame boundary.
    ///
    /// A `WouldBlock`/`TimedOut` I/O error is resumable: partial header
    /// or payload progress is kept and the next call continues filling.
    ///
    /// # Errors
    /// [`WireError::Truncated`] when the stream ends mid-frame, plus the
    /// header/CRC errors from [`peek_frame`]'s contract.
    pub fn read_frame(&mut self) -> Result<Option<(u8, &[u8])>, WireError> {
        while self.state.expect.is_none() {
            if self.state.hdr_filled == HEADER_LEN {
                self.state.commit_header()?;
                break;
            }
            let filled = self.state.hdr_filled;
            let n = self.inner.read(&mut self.state.hdr[filled..])?;
            if n == 0 {
                if filled == 0 {
                    return Ok(None);
                }
                return Err(WireError::Truncated);
            }
            self.state.hdr_filled += n;
        }
        let len = self.state.expect.expect("header committed");
        while self.state.payload_filled < len {
            let filled = self.state.payload_filled;
            let n = self.inner.read(&mut self.state.payload[filled..len])?;
            if n == 0 {
                return Err(WireError::Truncated);
            }
            self.state.payload_filled += n;
        }
        let (tag, len) = self.state.commit_payload()?;
        Ok(Some((tag, &self.state.payload[..len])))
    }

    /// The wrapped stream.
    pub fn get_mut(&mut self) -> &mut R {
        &mut self.inner
    }

    /// Unwraps, discarding any partially read frame.
    pub fn into_inner(self) -> R {
        self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn crc32_known_vectors() {
        // Same vectors the WAL pinned before the implementation moved here.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"hello"), 0x3610_A686);
    }

    #[test]
    fn frame_roundtrip() {
        let f = Frame::new(7, b"payload bytes".to_vec());
        let bytes = f.encode();
        assert_eq!(bytes.len(), f.encoded_len());
        assert_eq!(Frame::decode(&bytes).unwrap(), f);
    }

    #[test]
    fn empty_payload_roundtrip() {
        let f = Frame::new(0, Vec::new());
        assert_eq!(Frame::decode(&f.encode()).unwrap(), f);
    }

    #[test]
    fn peek_needs_more_bytes() {
        let bytes = Frame::new(1, vec![9; 100]).encode();
        for cut in [0, 1, 4, HEADER_LEN, HEADER_LEN + 50] {
            assert!(
                matches!(peek_frame(&bytes[..cut], 1024), Ok(None)),
                "cut {cut}"
            );
        }
        let (tag, payload, consumed) = peek_frame(&bytes, 1024).unwrap().unwrap();
        assert_eq!((tag, payload.len(), consumed), (1, 100, bytes.len()));
    }

    #[test]
    fn peek_rejects_bad_magic_early() {
        assert!(matches!(
            peek_frame(b"{", 1024),
            Err(WireError::BadMagic(_))
        ));
        assert!(matches!(
            peek_frame(b"XXlonger than a header....", 1024),
            Err(WireError::BadMagic(_))
        ));
        // A correct first byte alone is not yet decidable.
        assert!(matches!(peek_frame(b"R", 1024), Ok(None)));
    }

    #[test]
    fn peek_rejects_bad_version_and_oversize() {
        let mut bytes = Frame::new(1, vec![1, 2, 3]).encode();
        bytes[2] = 9;
        assert!(matches!(
            peek_frame(&bytes, 1024),
            Err(WireError::BadVersion(9))
        ));
        let mut bytes = Frame::new(1, vec![1, 2, 3]).encode();
        bytes[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            peek_frame(&bytes, 1024),
            Err(WireError::TooLarge { .. })
        ));
    }

    #[test]
    fn bit_flip_is_corrupt() {
        let bytes = Frame::new(3, b"abcdef".to_vec()).encode();
        for i in HEADER_LEN..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[i] ^= 0x10;
            assert!(
                matches!(peek_frame(&flipped, 1024), Err(WireError::Corrupt { .. })),
                "flip at {i}"
            );
        }
    }

    #[test]
    fn reader_streams_multiple_frames_and_reports_clean_eof() {
        let mut bytes = Vec::new();
        for i in 0..5u8 {
            encode_frame_into(i, &vec![i; i as usize * 10], &mut bytes);
        }
        let mut r = FrameReader::new(Cursor::new(bytes));
        for i in 0..5u8 {
            let (tag, payload) = r.read_frame().unwrap().unwrap();
            assert_eq!(tag, i);
            assert_eq!(payload, &vec![i; i as usize * 10][..]);
        }
        assert!(r.read_frame().unwrap().is_none());
        assert!(r.read_frame().unwrap().is_none(), "EOF is sticky");
    }

    #[test]
    fn reader_truncated_mid_frame() {
        let bytes = Frame::new(2, vec![7; 64]).encode();
        for cut in [1, HEADER_LEN - 1, HEADER_LEN, HEADER_LEN + 32] {
            let mut r = FrameReader::new(Cursor::new(bytes[..cut].to_vec()));
            assert!(
                matches!(r.read_frame(), Err(WireError::Truncated)),
                "cut {cut}"
            );
        }
    }

    /// A reader that yields `WouldBlock` between every byte — the shape
    /// of a socket with a read timeout under a slow peer.
    struct Trickle {
        bytes: Vec<u8>,
        pos: usize,
        ready: bool,
    }

    impl Read for Trickle {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.pos == self.bytes.len() {
                return Ok(0);
            }
            if !self.ready {
                self.ready = true;
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "trickle"));
            }
            self.ready = false;
            buf[0] = self.bytes[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    #[test]
    fn reader_resumes_across_would_block() {
        let mut bytes = Vec::new();
        encode_frame_into(1, b"first", &mut bytes);
        encode_frame_into(2, b"second frame", &mut bytes);
        let mut r = FrameReader::new(Trickle {
            bytes,
            pos: 0,
            ready: false,
        });
        let mut got = Vec::new();
        loop {
            match r.read_frame() {
                Ok(Some((tag, payload))) => got.push((tag, payload.to_vec())),
                Ok(None) => break,
                Err(e) if e.is_would_block() => continue,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert_eq!(
            got,
            vec![(1, b"first".to_vec()), (2, b"second frame".to_vec())]
        );
    }

    #[test]
    fn writer_batches_frames_into_one_buffer() {
        let mut w = FrameWriter::new(Vec::new());
        w.write_frame(1, b"aa");
        w.write_frame(2, b"bb");
        assert_eq!(w.pending(), 2 * (HEADER_LEN + 2));
        w.flush().unwrap();
        assert_eq!(w.pending(), 0);
        let bytes = w.into_inner();
        let (tag, payload, used) = peek_frame(&bytes, 1024).unwrap().unwrap();
        assert_eq!((tag, payload), (1, &b"aa"[..]));
        let (tag, payload, _) = peek_frame(&bytes[used..], 1024).unwrap().unwrap();
        assert_eq!((tag, payload), (2, &b"bb"[..]));
    }
}
