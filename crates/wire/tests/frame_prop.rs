//! Property tests for the frame codec (satellite of the wire PR):
//! encode→decode roundtrips for arbitrary tag/payload, and a truncated
//! or bit-flipped frame is always *rejected* — by CRC, magic, version,
//! or length check — never silently misparsed into a different frame.

use proptest::prelude::*;
use rl_wire::{peek_frame, Frame, FrameReader, WireError, DEFAULT_MAX_FRAME};
use std::io::Cursor;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn encode_decode_roundtrips(
        tag in 0u8..=255,
        payload in proptest::collection::vec(0u8..=255, 0..512),
    ) {
        let frame = Frame::new(tag, payload);
        let bytes = frame.encode();
        prop_assert_eq!(bytes.len(), frame.encoded_len());

        // Whole-buffer decode.
        let decoded = Frame::decode(&bytes).unwrap();
        prop_assert_eq!(&decoded, &frame);

        // Streaming decode.
        let mut reader = FrameReader::new(Cursor::new(bytes.clone()));
        let (got_tag, got_payload) = reader.read_frame().unwrap().unwrap();
        prop_assert_eq!(got_tag, frame.tag);
        prop_assert_eq!(got_payload, &frame.payload[..]);
        prop_assert!(reader.read_frame().unwrap().is_none());

        // Peek decode out of a longer buffer.
        let mut buf = bytes.clone();
        buf.extend_from_slice(b"trailing");
        let (t, p, consumed) = peek_frame(&buf, DEFAULT_MAX_FRAME).unwrap().unwrap();
        prop_assert_eq!(t, frame.tag);
        prop_assert_eq!(p, &frame.payload[..]);
        prop_assert_eq!(consumed, bytes.len());
    }

    #[test]
    fn truncation_is_never_misparsed(
        payload in proptest::collection::vec(0u8..=255, 1..256),
        cut_seed in 0u64..u64::MAX,
    ) {
        let bytes = Frame::new(9, payload).encode();
        // Strictly shorter than the full frame.
        let cut = 1 + (cut_seed % (bytes.len() as u64 - 1)) as usize;
        let head = &bytes[..cut];

        // peek: either "need more bytes" — correct for a prefix — or a
        // hard header error; never a successful parse.
        match peek_frame(head, DEFAULT_MAX_FRAME) {
            Ok(None) => {}
            Ok(Some(_)) => prop_assert!(false, "parsed a truncated frame at cut {}", cut),
            Err(_) => prop_assert!(false, "a true prefix must be 'incomplete', not an error"),
        }

        // A stream that *ends* there reports Truncated.
        let mut reader = FrameReader::new(Cursor::new(head.to_vec()));
        prop_assert!(matches!(reader.read_frame(), Err(WireError::Truncated)));
    }

    #[test]
    fn bit_flips_are_rejected(
        payload in proptest::collection::vec(0u8..=255, 0..256),
        pos_seed in 0u64..u64::MAX,
        bit in 0u8..8,
    ) {
        let frame = Frame::new(4, payload);
        let mut bytes = frame.encode();
        let pos = (pos_seed % bytes.len() as u64) as usize;
        bytes[pos] ^= 1 << bit;
        if bytes == frame.encode() {
            return; // the xor was a no-op (can't happen, but be safe)
        }
        match peek_frame(&bytes, DEFAULT_MAX_FRAME) {
            // Header damage: magic/version/length/CRC field no longer
            // match, surfacing as a typed error or as "need more bytes"
            // (a length flipped *upward* makes the frame look unfinished
            // — still not a misparse).
            Err(_) | Ok(None) => {}
            // The CRC covers version, tag, length, and payload; the magic
            // has its own check — so no single-bit flip anywhere in the
            // frame can yield a successful parse.
            Ok(Some(_)) => prop_assert!(false, "1-bit flip at {} passed CRC", pos),
        }
    }
}
