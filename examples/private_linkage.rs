//! Privacy-preserving linkage (the paper's §7 direction): custodians Alice
//! and Bob link their patient lists through Charlie, who never sees a
//! string — only 120-bit keyed c-vectors.
//!
//! ```text
//! cargo run --release --example private_linkage
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use record_linkage::datagen::{NcvrSource, PerturbationScheme, RecordSource};
use record_linkage::pprl::keyed::KeyedAttribute;
use record_linkage::pprl::{DataCustodian, EncodedDataset, KeyedEmbedder, LinkageUnit, SecretKey};
use record_linkage::prelude::*;

fn main() {
    // --- Setup: the custodians agree on a secret key and embedding
    //     parameters out of band; Charlie gets neither the key nor strings.
    let key = SecretKey::from_words([0x5EC2E7, 0x1234, 0x5678, 0x9ABC]);
    let attrs = vec![
        KeyedAttribute {
            m: 15,
            q: 2,
            padded: false,
        },
        KeyedAttribute {
            m: 15,
            q: 2,
            padded: false,
        },
        KeyedAttribute {
            m: 68,
            q: 2,
            padded: false,
        },
        KeyedAttribute {
            m: 22,
            q: 2,
            padded: false,
        },
    ];
    let shared_seed = 2016u64;
    let embedder = |key: SecretKey| {
        let mut rng = StdRng::seed_from_u64(shared_seed);
        KeyedEmbedder::new(key, Alphabet::linkage(), attrs.clone(), &mut rng)
    };
    let alice = DataCustodian::new("alice", embedder(key.clone()));
    let bob = DataCustodian::new("bob", embedder(key.clone()));

    // --- Data: Bob holds dirty copies of half of Alice's records.
    let mut rng = StdRng::seed_from_u64(7);
    let pair = DatasetPair::generate(
        &NcvrSource,
        PairConfig::new(2_000, PerturbationScheme::Light),
        &mut rng,
    );

    // --- Protocol: encode locally, ship bytes, link at Charlie.
    let msg_a = alice.encode(&pair.a).to_bytes();
    let msg_b = bob.encode(&pair.b).to_bytes();
    println!(
        "wire sizes: alice {} KiB, bob {} KiB (no strings on the wire)",
        msg_a.len() / 1024,
        msg_b.len() / 1024
    );
    let enc_a = EncodedDataset::from_bytes(&msg_a).expect("valid message");
    let enc_b = EncodedDataset::from_bytes(&msg_b).expect("valid message");

    let charlie = LinkageUnit::with_thetas(vec![4, 4, 8, 4]);
    let (matches, stats) = charlie.link(&enc_a, &enc_b, &mut rng).expect("link");

    let found = matches
        .iter()
        .filter(|p| pair.ground_truth.contains(p))
        .count();
    println!("candidates compared : {}", stats.candidates);
    println!("pairs identified    : {}", matches.len());
    println!(
        "recall              : {:.3}",
        found as f64 / pair.ground_truth.len() as f64
    );
    assert!(found as f64 / pair.ground_truth.len() as f64 > 0.9);

    // --- What the key buys: Charlie's best dictionary attack fails.
    let sample = NcvrSource.sample_many(300, &mut rng);
    let values: Vec<&str> = sample.iter().map(|r| r.field(1)).collect();
    let victim = embedder(key);
    let charlie_guess = embedder(SecretKey::from_words([0, 0, 0, 0]));
    let (attack, _) = record_linkage::pprl::risk::attack_attribute(
        &values,
        1,
        &victim,
        |v| charlie_guess.embed_value(1, v),
        record_linkage::datagen::corpus::LAST_NAMES,
    );
    println!(
        "dictionary attack without key: {:.1}% of names re-identified",
        100.0 * attack.accuracy
    );
    assert!(attack.accuracy < 0.1);
}
