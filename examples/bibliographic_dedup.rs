//! Bibliographic integration: link citation records from three DBLP-like
//! sources (multi-party linkage, §5.3: "our method is capable of handling
//! an arbitrary number of data sets").
//!
//! Titles carry most of the signal; author names are short and noisy, so
//! the classification rule combines a strict title predicate with looser
//! name predicates through a compound rule.
//!
//! ```text
//! cargo run --release --example bibliographic_dedup
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use record_linkage::cbv_hb::AttributeSpec;
use record_linkage::datagen::{DblpSource, PerturbationScheme, RecordSource};
use record_linkage::prelude::*;

fn main() {
    let mut rng = StdRng::seed_from_u64(1234);
    let source = DblpSource;

    // Base corpus of publications.
    let n = 2_000usize;
    let canonical = source.sample_many(n, &mut rng);

    // Three libraries hold overlapping, independently dirtied copies.
    let scheme = PerturbationScheme::Light;
    let mut libraries: Vec<Vec<Record>> = vec![Vec::new(), Vec::new(), Vec::new()];
    for (i, rec) in canonical.iter().enumerate() {
        for (li, lib) in libraries.iter_mut().enumerate() {
            // Each library holds ~2/3 of the corpus.
            if (i + li) % 3 != 0 {
                let copy = if li == 0 {
                    rec.clone()
                } else {
                    scheme.apply(rec, rec.id, &mut rng).record
                };
                lib.push(copy);
            }
        }
    }

    // Schema sized for DBLP statistics (Table 3): 14 + 19 + 226 + 8 bits.
    let schema = RecordSchema::build(
        Alphabet::linkage(),
        vec![
            AttributeSpec::sized_for("FirstName", 2, 4.8, 1.0, 1.0 / 3.0, false, 5),
            AttributeSpec::sized_for("LastName", 2, 6.2, 1.0, 1.0 / 3.0, false, 5),
            AttributeSpec::sized_for("Title", 2, 64.8, 1.0, 1.0 / 3.0, false, 12),
            AttributeSpec::sized_for("Year", 2, 3.0, 1.0, 1.0 / 3.0, false, 5),
        ],
        &mut rng,
    );
    println!("record-level c-vector: {} bits", schema.total_size());

    // Compound rule: (title close AND year close) OR (both author names
    // close AND title close-ish) — the C1 shape from §5.4.
    let rule = Rule::or([
        Rule::and([Rule::pred(2, 8), Rule::pred(3, 4)]),
        Rule::and([Rule::pred(0, 4), Rule::pred(1, 4), Rule::pred(2, 12)]),
    ]);

    let sets: Vec<&[Record]> = libraries.iter().map(Vec::as_slice).collect();
    let matches =
        LinkagePipeline::link_many(schema, LinkageConfig::rule_aware(rule), &sets, &mut rng)
            .expect("valid configuration");

    // Score against ground truth: records with the same canonical id.
    let mut truth = 0usize;
    for (li, lib_a) in libraries.iter().enumerate() {
        for lib_b in libraries.iter().skip(li + 1) {
            let ids_a: std::collections::HashSet<u64> = lib_a.iter().map(|r| r.id).collect();
            truth += lib_b.iter().filter(|r| ids_a.contains(&r.id)).count();
        }
    }
    let correct = matches
        .iter()
        .filter(|(sa, ia, sb, ib)| sa != sb && ia == ib)
        .count();
    println!("libraries        : {}", libraries.len());
    println!("cross-set truth  : {truth}");
    println!("identified pairs : {}", matches.len());
    println!("correct pairs    : {correct}");
    let recall = correct as f64 / truth as f64;
    let precision = correct as f64 / matches.len().max(1) as f64;
    println!("recall {recall:.3}  precision {precision:.3}");
    assert!(
        recall > 0.9,
        "multi-party linkage should find most duplicates"
    );
}
