//! Parameter tuning with the analytical toolkit: size the embedding from
//! data (Theorem 1), pick K with the cost model of the paper's reference
//! [16], inspect the recall S-curve, and profile the populated blocking
//! structures.
//!
//! ```text
//! cargo run --release --example parameter_tuning
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use record_linkage::cbv_hb::analysis::analyze;
use record_linkage::cbv_hb::profiler::profile_plan;
use record_linkage::cbv_hb::AttributeSpec;
use record_linkage::datagen::{NcvrSource, RecordSource};
use record_linkage::lsh::params::{
    base_success_probability, estimate_p_dissimilar, optimal_l, recall_curve, KCostModel,
};
use record_linkage::prelude::*;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let records = NcvrSource.sample_many(5_000, &mut rng);

    // 1. Fit c-vector sizes from the data (Theorem 1, ρ = 1, r = 1/3).
    let ks = [5u32, 5, 10, 10];
    let specs: Vec<AttributeSpec> = (0..4)
        .map(|f| {
            AttributeSpec::fitted(
                NcvrSource.attribute_names()[f],
                2,
                records.iter().map(|r| r.field(f)),
                1.0,
                1.0 / 3.0,
                false,
                ks[f],
            )
        })
        .collect();
    for s in &specs {
        println!("{:<12} m_opt = {:>3} bits", s.name, s.m);
    }
    let schema = RecordSchema::build(Alphabet::linkage(), specs, &mut rng);
    let m_bar = schema.total_size();
    println!("record-level: {m_bar} bits\n");

    // 2. Estimate the dissimilar-pair collision probability and pick K.
    use rand::RngExt;
    let embedded: Vec<_> = records
        .iter()
        .take(400)
        .map(|r| schema.embed(r).unwrap())
        .collect();
    let mut dists = Vec::new();
    for _ in 0..2_000 {
        let (i, j) = (
            rng.random_range(0..embedded.len()),
            rng.random_range(0..embedded.len()),
        );
        if i != j {
            dists.push(embedded[i].total_distance(&embedded[j]));
        }
    }
    let p_dis = estimate_p_dissimilar(&dists, m_bar);
    let theta = 4u32;
    let model = KCostModel {
        n: records.len(),
        m: m_bar,
        theta,
        delta: 0.1,
        p_dissimilar: p_dis,
        verify_cost: 1.0,
    };
    let k_star = model.optimal_k(5..=45);
    let p = base_success_probability(theta, m_bar);
    let l = optimal_l(p.powi(k_star as i32), 0.1);
    println!("p_dissimilar ≈ {p_dis:.3}; cost-optimal K* = {k_star}, L = {l}\n");

    // 3. The recall S-curve this configuration buys.
    println!("recall vs distance (K = {k_star}, L = {l}):");
    for point in recall_curve(m_bar, k_star, l, 16).iter().step_by(2) {
        let bar: String = "#".repeat((point.recall * 40.0) as usize);
        println!("  u = {:>2}  {:>6.3}  {bar}", point.distance, point.recall);
    }

    // 4. Build, index, and profile the plan.
    let rule = Rule::and((0..4).map(|i| Rule::pred(i, theta)));
    let mut pipeline = LinkagePipeline::new(
        schema,
        LinkageConfig::record_level(rule, theta, k_star),
        &mut rng,
    )
    .expect("valid configuration");
    pipeline.index(&records).unwrap();
    println!("\nanalytical plan report:");
    let report = analyze(pipeline.plan());
    for s in &report.structures {
        println!(
            "  {:<44} L = {:<3} recall bound {:.3}",
            s.label, s.l, s.recall_bound
        );
    }
    println!("\nmeasured bucket profile:");
    for p in profile_plan(pipeline.plan()) {
        println!(
            "  buckets {:>6}  mean {:>6.1}  max {:>5}  skew {:>6.1}  E[cand/probe] {:>8.1}",
            p.buckets, p.mean_bucket, p.max_bucket, p.skew, p.expected_candidates_per_probe
        );
    }
}
