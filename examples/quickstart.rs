//! Quickstart: link two small data sets end-to-end with cBV-HB.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use record_linkage::cbv_hb::AttributeSpec;
use record_linkage::prelude::*;

fn main() {
    let mut rng = StdRng::seed_from_u64(2016);

    // 1. Define the schema: per-attribute c-vector sizes follow Theorem 1
    //    from the expected bigram counts (Table 3 statistics).
    let schema = RecordSchema::build(
        Alphabet::linkage(),
        vec![
            AttributeSpec::sized_for("FirstName", 2, 5.1, 1.0, 1.0 / 3.0, false, 5),
            AttributeSpec::sized_for("LastName", 2, 5.0, 1.0, 1.0 / 3.0, false, 5),
            AttributeSpec::sized_for("Address", 2, 20.0, 1.0, 1.0 / 3.0, false, 10),
            AttributeSpec::sized_for("Town", 2, 7.2, 1.0, 1.0 / 3.0, false, 10),
        ],
        &mut rng,
    );
    println!(
        "record-level c-vector: {} bits across {} attributes",
        schema.total_size(),
        schema.num_attributes()
    );

    // 2. A classification rule: names must be close, address a bit looser.
    let rule = Rule::and([Rule::pred(0, 4), Rule::pred(1, 4), Rule::pred(2, 8)]);

    // 3. Build the rule-aware pipeline (attribute-level LSH blocking).
    let mut pipeline = LinkagePipeline::new(schema, LinkageConfig::rule_aware(rule), &mut rng)
        .expect("valid configuration");

    // 4. Index data set A.
    let a = vec![
        Record::new(1, ["JOHN", "SMITH", "12 OAK STREET", "DURHAM"]),
        Record::new(2, ["MARY", "JONES", "4 ELM AVENUE", "RALEIGH"]),
        Record::new(3, ["PETER", "WRIGHT", "77 PINE ROAD", "CARY"]),
    ];
    pipeline.index(&a).expect("well-formed records");

    // 5. Probe data set B — dirty copies and strangers.
    let b = vec![
        Record::new(10, ["JON", "SMITH", "12 OAK STREET", "DURHAM"]), // deletion
        Record::new(11, ["MARY", "JONAS", "4 ELM AVENU", "RALEIGH"]), // two errors
        Record::new(12, ["AGNES", "WINTERBOTTOM", "900 CEDAR COURT", "BOONE"]),
    ];
    let result = pipeline.link(&b).expect("well-formed records");

    println!("candidates compared: {}", result.stats.candidates);
    for (ia, ib) in &result.matches {
        let ra = a.iter().find(|r| r.id == *ia).unwrap();
        let rb = b.iter().find(|r| r.id == *ib).unwrap();
        println!("match: A#{ia} {:?} <-> B#{ib} {:?}", ra.fields, rb.fields);
    }
    assert_eq!(result.matches.len(), 2, "both dirty copies are found");
}
