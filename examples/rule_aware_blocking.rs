//! Rule-aware blocking in action (§5.4): the same classification rule,
//! compiled three ways, and what the blocking plan looks like for each of
//! the paper's rule shapes C1, C2, C3.
//!
//! ```text
//! cargo run --release --example rule_aware_blocking
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use record_linkage::cbv_hb::blocking::BlockingPlan;
use record_linkage::cbv_hb::AttributeSpec;
use record_linkage::prelude::*;

fn main() {
    let mut rng = StdRng::seed_from_u64(5);
    let schema = RecordSchema::build(
        Alphabet::linkage(),
        vec![
            AttributeSpec::sized_for("FirstName", 2, 5.1, 1.0, 1.0 / 3.0, false, 5),
            AttributeSpec::sized_for("LastName", 2, 5.0, 1.0, 1.0 / 3.0, false, 5),
            AttributeSpec::sized_for("Address", 2, 20.0, 1.0, 1.0 / 3.0, false, 10),
            AttributeSpec::sized_for("Town", 2, 7.2, 1.0, 1.0 / 3.0, false, 10),
        ],
        &mut rng,
    );

    let rules: Vec<(&str, Rule)> = vec![
        (
            "C1 = (u0<=4) AND (u1<=4) AND (u2<=8)",
            Rule::and([Rule::pred(0, 4), Rule::pred(1, 4), Rule::pred(2, 8)]),
        ),
        (
            "C2 = [(u0<=4) AND (u1<=4)] OR (u2<=8)",
            Rule::or([
                Rule::and([Rule::pred(0, 4), Rule::pred(1, 4)]),
                Rule::pred(2, 8),
            ]),
        ),
        (
            "C3 = (u0<=4) AND NOT(u1<=4)",
            Rule::and([Rule::pred(0, 4), Rule::not(Rule::pred(1, 4))]),
        ),
    ];

    for (label, rule) in &rules {
        let plan =
            BlockingPlan::compile(&schema, rule, 0.1, &mut rng).expect("paper rules compile");
        println!("\n{label}");
        for s in plan.structures() {
            println!(
                "  structure {:<40} L = {:>3}  p_collide/table = {:.4}",
                s.label(),
                s.l(),
                s.p_collide()
            );
        }
        println!("  total hash tables: {}", plan.total_tables());
    }

    // Demonstrate the C3 semantics end-to-end: find people whose first
    // name matches but whose last name clearly does not (e.g. married-name
    // tracing).
    println!("\nC3 end-to-end: first name close, last name NOT close");
    let rule = rules[2].1.clone();
    let mut pipeline =
        LinkagePipeline::new(schema, LinkageConfig::rule_aware(rule), &mut rng).expect("valid");
    pipeline
        .index(&[
            Record::new(1, ["MARTHA", "JONES", "1 OAK ST", "CARY"]),
            Record::new(2, ["MARTHA", "SMITH", "2 ELM ST", "APEX"]),
        ])
        .unwrap();
    let result = pipeline
        .link(&[Record::new(10, ["MARTHA", "SMITH", "9 PINE RD", "BOONE"])])
        .unwrap();
    // Record 2 shares the last name → excluded by the NOT during *blocking*;
    // record 1 is the C3 match.
    println!("matches: {:?}", result.matches);
    assert_eq!(result.matches, vec![(1, 10)]);
}
