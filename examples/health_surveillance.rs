//! Health-surveillance streaming scenario (the paper's §1 motivation):
//! a surveillance system continuously integrates patient records arriving
//! from hospitals and pharmacy stores and must flag, in near real time,
//! records that refer to the same person.
//!
//! The 120-bit record embeddings make per-arrival matching a handful of
//! hash probes plus a few popcount distance computations.
//!
//! ```text
//! cargo run --release --example health_surveillance
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use record_linkage::cbv_hb::stream::StreamMatcher;
use record_linkage::cbv_hb::AttributeSpec;
use record_linkage::datagen::{NcvrSource, PerturbationScheme, RecordSource};
use record_linkage::prelude::*;
use std::time::Instant;

fn main() {
    let mut rng = StdRng::seed_from_u64(99);

    // Patients are described by name and address attributes.
    let schema = RecordSchema::build(
        Alphabet::linkage(),
        vec![
            AttributeSpec::sized_for("FirstName", 2, 5.1, 1.0, 1.0 / 3.0, false, 5),
            AttributeSpec::sized_for("LastName", 2, 5.0, 1.0, 1.0 / 3.0, false, 5),
            AttributeSpec::sized_for("Address", 2, 20.0, 1.0, 1.0 / 3.0, false, 10),
            AttributeSpec::sized_for("Town", 2, 7.2, 1.0, 1.0 / 3.0, false, 10),
        ],
        &mut rng,
    );
    let rule = Rule::and([Rule::pred(0, 4), Rule::pred(1, 4), Rule::pred(2, 8)]);
    let mut matcher = StreamMatcher::new(schema, LinkageConfig::rule_aware(rule), &mut rng)
        .expect("valid configuration");

    // Simulate an interleaved event stream: hospital admissions produce
    // clean records; pharmacy sales later produce dirty copies of half of
    // them (typos at the counter).
    let source = NcvrSource;
    let n = 5_000usize;
    let hospital = source.sample_many(n, &mut rng);
    let scheme = PerturbationScheme::Light;
    let mut stream: Vec<(&'static str, Record)> = Vec::new();
    for (i, rec) in hospital.iter().enumerate() {
        stream.push(("hospital", rec.clone()));
        if i % 2 == 0 {
            let dirty = scheme.apply(rec, (n + i) as u64, &mut rng).record;
            stream.push(("pharmacy", dirty));
        }
    }

    let t0 = Instant::now();
    let mut alerts = 0usize;
    for (origin, rec) in &stream {
        let hits = matcher.observe(rec).expect("well-formed record");
        if !hits.is_empty() && *origin == "pharmacy" {
            alerts += 1;
        }
    }
    let elapsed = t0.elapsed();
    let per_event = elapsed.as_micros() as f64 / stream.len() as f64;

    println!("events processed : {}", stream.len());
    println!("alerts raised    : {alerts}");
    println!("elapsed          : {elapsed:?} ({per_event:.1} µs/event)");
    println!(
        "distance computations per event: {:.2}",
        matcher.stats().distance_computations as f64 / stream.len() as f64
    );
    let expected = stream.iter().filter(|(o, _)| *o == "pharmacy").count();
    let recall = alerts as f64 / expected as f64;
    println!("stream recall    : {recall:.3}");
    assert!(
        recall > 0.9,
        "stream matching should catch most dirty copies"
    );
}
